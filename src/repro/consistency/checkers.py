"""Consistency checkers over recorded histories.

Four checks are provided, matching the guarantees of the protocols in this
repository:

* :func:`check_external_consistency` — external consistency in its standard
  formal reading (strict serializability): the DSG extended with the
  real-time *precedence* order (Ti completed before Tj began) must be
  acyclic.  SSS and the 2PC-baseline must pass it; Walter (PSI) fails it
  under adversarial interleavings.
* :func:`check_update_completion_order` — the paper's Statement 1: the
  update-only sub-history must additionally respect the order in which
  clients received their responses (up to the observability tolerance — two
  responses closer together than one network latency cannot be ordered by
  any external observer).
* :func:`check_serializability` — DSG acyclicity with dependency edges only.
* :func:`check_snapshot_reads` — every read observed a committed version and
  the versions observed by one transaction form a consistent cut (the
  "consistent view" part of Statements 2 and 3).
* :func:`check_committed_reads` — only the committed-writer half of
  :func:`check_snapshot_reads`: no read may observe an uncommitted or
  unknown (torn) write.  This is the durability floor every protocol must
  hold under crashes, including Walter, whose PSI contract permits the
  cross-site cuts the full snapshot check rejects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.ids import TransactionId
from repro.consistency.dsg import build_dsg, find_cycle, install_order
from repro.consistency.history import CommittedTransaction, HistoryRecorder


@dataclass
class CheckResult:
    """Outcome of one consistency check."""

    ok: bool
    name: str
    violations: List[str] = field(default_factory=list)
    checked_transactions: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        detail = f" ({len(self.violations)} violations)" if self.violations else ""
        return f"[{status}] {self.name}: " f"{self.checked_transactions} transactions{detail}"


def _transactions(history) -> Sequence[CommittedTransaction]:
    if isinstance(history, HistoryRecorder):
        return history.committed
    return list(history)


def _render_cycle(cycle) -> str:
    parts = []
    for source, _target, kind in cycle:
        label = source if not isinstance(source, tuple) else "~rt~"
        parts.append(f"{label}({kind})")
    return " -> ".join(str(part) for part in parts)


def _cycle_check(
    transactions: Sequence[CommittedTransaction],
    name: str,
    realtime: str,
    completion_tolerance_us: float = 25.0,
) -> CheckResult:
    graph = build_dsg(
        transactions,
        realtime=realtime,
        completion_tolerance_us=completion_tolerance_us,
    )
    cycle = find_cycle(graph)
    violations = [] if cycle is None else [f"cycle: {_render_cycle(cycle)}"]
    return CheckResult(
        ok=cycle is None,
        name=name,
        violations=violations,
        checked_transactions=len(transactions),
    )


# ----------------------------------------------------------------------
# DSG based checks
# ----------------------------------------------------------------------
def check_external_consistency(history) -> CheckResult:
    """Strict-serializability reading of external consistency."""
    return _cycle_check(_transactions(history), "external-consistency", realtime="precedence")


def check_serializability(history) -> CheckResult:
    """DSG acyclicity with dependency edges only."""
    return _cycle_check(_transactions(history), "serializability", realtime="none")


def check_update_completion_order(history, tolerance_us: float = 25.0) -> CheckResult:
    """Statement 1: the update-only sub-history respects client response order."""
    updates = [txn for txn in _transactions(history) if txn.is_update]
    return _cycle_check(
        updates,
        "update-completion-order",
        realtime="completion",
        completion_tolerance_us=tolerance_us,
    )


# ----------------------------------------------------------------------
# Snapshot / read-value checks
# ----------------------------------------------------------------------
def check_snapshot_reads(history) -> CheckResult:
    """Reads observe committed versions and form per-transaction consistent cuts."""
    transactions = _transactions(history)
    by_id: Dict[TransactionId, CommittedTransaction] = {
        txn.txn_id: txn for txn in transactions
    }
    violations: List[str] = []

    version_order = {
        key: [txn.txn_id for txn in writers]
        for key, writers in install_order(transactions).items()
    }

    def writer_position(key: object, writer: Optional[TransactionId]) -> int:
        if writer is None:
            return -1
        order = version_order.get(key, [])
        try:
            return order.index(writer)
        except ValueError:
            return -2  # writer unknown / uncommitted

    for txn in transactions:
        observed: List[Tuple[object, int]] = []
        for read in txn.reads:
            if read.writer is not None and read.writer not in by_id:
                violations.append(
                    f"{txn.txn_id} read {read.key!r} from uncommitted/unknown "
                    f"writer {read.writer}"
                )
                continue
            observed.append((read.key, writer_position(read.key, read.writer)))

        # Consistent-cut property: if the transaction observed key A at the
        # version produced by writer W, it must not have observed, for any
        # other key B that W also wrote, a version older than W's.
        for key_a, pos_a in observed:
            if pos_a < 0:
                continue
            writer_a = version_order[key_a][pos_a]
            writer_a_txn = by_id[writer_a]
            for key_b, pos_b in observed:
                if key_a == key_b:
                    continue
                if key_b in writer_a_txn.writes:
                    required_pos = version_order[key_b].index(writer_a)
                    if pos_b < required_pos:
                        violations.append(
                            f"{txn.txn_id} observed {key_a!r} from {writer_a} "
                            f"but an older version of {key_b!r} that {writer_a} "
                            "already overwrote"
                        )

    return CheckResult(
        ok=not violations,
        name="snapshot-reads",
        violations=violations,
        checked_transactions=len(transactions),
    )


def check_committed_reads(history) -> CheckResult:
    """Every read observed a committed (never torn or lost) write.

    The dirty-read half of :func:`check_snapshot_reads`, separated out as
    the crash-durability floor: a crash that loses a write some client
    already read, or tears a multi-key commit so only part of it is ever
    recorded, surfaces here as a read from an unknown writer.  Unlike the
    consistent-cut half this holds for *every* protocol in the repository,
    PSI included.
    """
    transactions = _transactions(history)
    committed = {txn.txn_id for txn in transactions}
    violations: List[str] = []
    for txn in transactions:
        for read in txn.reads:
            if read.writer is not None and read.writer not in committed:
                violations.append(
                    f"{txn.txn_id} read {read.key!r} from uncommitted/unknown "
                    f"writer {read.writer}"
                )
    return CheckResult(
        ok=not violations,
        name="committed-reads",
        violations=violations,
        checked_transactions=len(transactions),
    )


def run_all_checks(history) -> List[CheckResult]:
    """Run every checker; convenience for examples and reports."""
    return [
        check_external_consistency(history),
        check_serializability(history),
        check_update_completion_order(history),
        check_snapshot_reads(history),
    ]
