"""Direct Serialization Graph construction.

Given a recorded history, the DSG has one vertex per committed transaction
and the classic Adya dependency edges:

* ``wr`` (read-depends): Tj read a version written by Ti;
* ``ww`` (write-depends): Tj installed the version of a key immediately
  following Ti's version in the key's version order;
* ``rw`` (anti-depends): Tj installed the version of a key immediately
  following the one Ti read.

Version order
-------------
The per-key version order is recovered from the protocol-provided
``write_version_hints`` (SSS: the transaction version number ``xactVN``,
which is exactly the order the commit queues install versions in; the
2PC-baseline: the participant's post-apply version counters; ROCOCO: the
execution-order position).  When a protocol does not provide hints the
order falls back to external-commit time.  Beware that the fallback is
*not* generally correct even for lock-based protocols: two conflicting
writers are strictly serialized at the key's replica, but the one applied
second can answer its client first when its decide round spans fewer (or
faster) participants, so protocols should supply hints.

Real-time order
---------------
External consistency additionally requires the serialization not to
contradict the order in which transactions complete relative to clients.  Two
notions are supported:

* **Precedence** (the standard strict-serializability real-time order, used
  by :func:`repro.consistency.checkers.check_external_consistency`): Ti must
  precede Tj whenever Ti's client response happened before Tj *began*.  This
  is encoded without quadratically many edges by threading all begin and
  completion events on a single time-ordered chain of auxiliary nodes: a
  dependency path that travels backwards along the chain closes a cycle.
* **Completion order** (the stricter reading of the paper's informal
  definition, applied to the update-only sub-history of Statement 1 by
  :func:`repro.consistency.checkers.check_update_completion_order`): Ti must
  precede Tj whenever Ti's response precedes Tj's response by more than an
  observability tolerance (no external observer can order two responses that
  are closer together than the minimum client-to-client message latency).

A history is accepted iff the resulting directed graph is acyclic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.common.ids import TransactionId
from repro.consistency.history import CommittedTransaction


@dataclass(frozen=True)
class DependencyEdge:
    """One dependency edge of the DSG, annotated with its kind and key."""

    source: TransactionId
    target: TransactionId
    kind: str  # "wr", "ww", "rw"
    key: Optional[object] = None


# ----------------------------------------------------------------------
# Version order
# ----------------------------------------------------------------------
def install_order(
    transactions: Sequence[CommittedTransaction],
) -> Dict[object, List[CommittedTransaction]]:
    """Per-key version installation order (see module docstring)."""
    writers: Dict[object, List[CommittedTransaction]] = defaultdict(list)
    for txn in transactions:
        if not txn.is_update:
            continue
        for key in txn.writes:
            writers[key].append(txn)
    for key, txns in writers.items():
        if all(txn.version_hint(key) is not None for txn in txns):
            txns.sort(key=lambda txn: (txn.version_hint(key), txn.external_commit_time))
        else:
            txns.sort(key=lambda txn: txn.external_commit_time)
    return writers


# ----------------------------------------------------------------------
# Dependency edges
# ----------------------------------------------------------------------
def build_dependency_edges(
    transactions: Sequence[CommittedTransaction],
) -> List[DependencyEdge]:
    """Compute the wr / ww / rw edge list for ``transactions``."""
    edges: List[DependencyEdge] = []
    by_id = {txn.txn_id: txn for txn in transactions}
    writers_per_key = install_order(transactions)

    position: Dict[Tuple[object, TransactionId], int] = {}
    for key, writers in writers_per_key.items():
        for index, txn in enumerate(writers):
            position[(key, txn.txn_id)] = index

    # ww edges: consecutive writers of the same key.
    for key, writers in writers_per_key.items():
        for earlier, later in zip(writers, writers[1:]):
            edges.append(DependencyEdge(earlier.txn_id, later.txn_id, "ww", key))

    # wr and rw edges from each read observation.
    for txn in transactions:
        for read in txn.reads:
            writers = writers_per_key.get(read.key, [])
            if read.writer is not None and read.writer in by_id:
                if read.writer != txn.txn_id:
                    edges.append(DependencyEdge(read.writer, txn.txn_id, "wr", read.key))
                observed_position = position.get((read.key, read.writer))
            elif read.writer is None:
                # Initial (preloaded) version: every writer overwrites it.
                observed_position = -1
            else:
                # Version written by a transaction outside the committed
                # history: a decided-commit whose coordinator crashed before
                # answering its client (the install is durable and reading
                # it is legal — the writer imposes no real-time order).  No
                # anti-dependency is derivable from the committed writers'
                # install order; treating it like the preloaded version
                # would fabricate an rw edge to the key's *first* writer.
                observed_position = None
            if observed_position is not None and writers:
                next_position = observed_position + 1
                if next_position < len(writers):
                    overwriter = writers[next_position]
                    if overwriter.txn_id != txn.txn_id:
                        edges.append(DependencyEdge(txn.txn_id, overwriter.txn_id, "rw", read.key))
    return edges


# Backwards-compatible alias used by earlier revisions of the test suite.
build_edges = build_dependency_edges


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
def _add_precedence_chain(
    graph: nx.MultiDiGraph, transactions: Sequence[CommittedTransaction]
) -> None:
    """Encode the real-time precedence order with O(n) auxiliary nodes.

    Events (transaction begins and completions) are sorted by time; at equal
    timestamps begins sort before completions so that a completion never
    precedes a begin at the same instant (overlap means no constraint).  Each
    completion points into the chain, the chain points into each begin, and
    consecutive chain nodes are linked — so the graph contains a path from
    Ti's completion to Tj's begin iff Ti completed strictly before Tj began.
    """
    BEGIN, COMPLETE = 0, 1
    events = []
    for txn in transactions:
        events.append((txn.begin_time, BEGIN, txn.txn_id))
        events.append((txn.external_commit_time, COMPLETE, txn.txn_id))
    events.sort(key=lambda event: (event[0], event[1]))

    previous_chain_node = None
    for index, (_time, kind, txn_id) in enumerate(events):
        chain_node = ("rt", index)
        graph.add_node(chain_node, auxiliary=True)
        if previous_chain_node is not None:
            graph.add_edge(previous_chain_node, chain_node, kind="rt")
        if kind == COMPLETE:
            graph.add_edge(txn_id, chain_node, kind="rt")
        else:
            graph.add_edge(chain_node, txn_id, kind="rt")
        previous_chain_node = chain_node


def _related(a: CommittedTransaction, b: CommittedTransaction) -> bool:
    a_keys = set(a.writes) | {read.key for read in a.reads}
    b_keys = set(b.writes) | {read.key for read in b.reads}
    return not a_keys.isdisjoint(b_keys)


def _add_completion_order_edges(
    graph: nx.MultiDiGraph,
    transactions: Sequence[CommittedTransaction],
    tolerance_us: float,
) -> None:
    """Pairwise completion-order edges between related transactions."""
    ordered = sorted(transactions, key=lambda txn: txn.external_commit_time)
    for i, earlier in enumerate(ordered):
        for later in ordered[i + 1 :]:
            gap = later.external_commit_time - earlier.external_commit_time
            if gap <= tolerance_us:
                continue
            if _related(earlier, later):
                graph.add_edge(earlier.txn_id, later.txn_id, kind="co")


def build_dsg(
    transactions: Sequence[CommittedTransaction],
    realtime: str = "precedence",
    completion_tolerance_us: float = 25.0,
) -> nx.MultiDiGraph:
    """Build the DSG as a :class:`networkx.MultiDiGraph`.

    Parameters
    ----------
    transactions:
        Committed transactions of the history.
    realtime:
        ``"precedence"`` adds the strict-serializability real-time order,
        ``"completion"`` adds the stricter completion-order edges (with the
        observability tolerance), ``"none"`` adds only dependency edges
        (plain conflict serializability).
    completion_tolerance_us:
        Minimum response-time gap (in simulated microseconds) for a
        completion-order edge; only used when ``realtime == "completion"``.
    """
    graph = nx.MultiDiGraph()
    for txn in transactions:
        graph.add_node(txn.txn_id, is_update=txn.is_update)
    for edge in build_dependency_edges(transactions):
        graph.add_edge(edge.source, edge.target, kind=edge.kind, key=edge.key)
    if realtime == "precedence":
        _add_precedence_chain(graph, transactions)
    elif realtime == "completion":
        _add_completion_order_edges(graph, transactions, completion_tolerance_us)
    elif realtime != "none":
        raise ValueError(f"unknown realtime mode {realtime!r}")
    return graph


def find_cycle(graph: nx.MultiDiGraph) -> Optional[List[Tuple[object, object, str]]]:
    """Return one cycle as ``(source, target, kind)`` triples, or ``None``.

    Auxiliary real-time chain nodes may appear in the reported cycle; they are
    kept (labelled ``rt``) because they tell the reader that the cycle closes
    through the real-time order rather than through a data dependency.
    """
    try:
        cycle = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    result = []
    for edge in cycle:
        source, target = edge[0], edge[1]
        key = edge[2] if len(edge) > 3 else 0
        data = graph.get_edge_data(source, target)
        kind = data[key].get("kind", "?") if data and key in data else "?"
        result.append((source, target, kind))
    return result
