"""Recording of executed transaction histories.

The recorder receives every committed (and aborted) transaction from the
protocol nodes and normalizes the information the consistency checkers need:

* which version each read observed — identified by the writer transaction
  that produced it (``None`` for the preloaded initial version);
* which keys the transaction wrote;
* when the transaction externally committed (the instant its client was
  informed), which defines the *completion order* that external consistency
  must not contradict.

Aborted transactions are retained only for statistics; they never appear in
the serialization graph (an aborted transaction's writes are never visible in
any of the protocols implemented here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover - avoid a circular import at runtime
    from repro.core.metadata import TransactionMeta


@dataclass(frozen=True)
class ReadObservation:
    """One read: the key and the identity of the version observed."""

    key: object
    writer: Optional[TransactionId]
    version_local_value: int = 0
    """The version's vector-clock entry at the serving node (diagnostics)."""


@dataclass(frozen=True)
class CommittedTransaction:
    """Normalized record of one committed transaction."""

    txn_id: TransactionId
    coordinator: int
    is_update: bool
    reads: Tuple[ReadObservation, ...]
    writes: Tuple[object, ...]
    begin_time: float
    external_commit_time: float
    write_version_hints: Tuple[Tuple[object, float], ...] = ()
    """Per written key, a protocol-provided value sorting this transaction's
    version against other writers of the same key (installation order)."""

    @property
    def is_read_only(self) -> bool:
        return not self.is_update

    def version_hint(self, key: object):
        for hint_key, hint in self.write_version_hints:
            if hint_key == key:
                return hint
        return None


@dataclass
class AbortedTransaction:
    """Record of an aborted transaction (statistics only)."""

    txn_id: TransactionId
    coordinator: int
    is_update: bool
    reason: Optional[str]
    abort_time: float


def committed_from_meta(meta: "TransactionMeta") -> CommittedTransaction:
    """Normalize a committed :class:`TransactionMeta` into the checker record.

    Shared by the post-hoc :class:`HistoryRecorder` and the windowed
    :class:`~repro.consistency.window.WindowedHistoryRecorder`, so both
    paths see byte-identical transaction records.
    """
    reads = tuple(
        ReadObservation(
            key=record.key,
            writer=record.writer,
            version_local_value=record.version_vc[record.served_by]
            if record.served_by < record.version_vc.size
            else 0,
        )
        for record in meta.read_set.values()
    )
    return CommittedTransaction(
        txn_id=meta.txn_id,
        coordinator=meta.coordinator,
        is_update=meta.is_update,
        reads=reads,
        writes=tuple(meta.write_set),
        begin_time=meta.begin_time,
        external_commit_time=meta.external_commit_time
        if meta.external_commit_time is not None
        else meta.begin_time,
        write_version_hints=tuple(meta.version_hints.items()),
    )


def aborted_from_meta(meta: "TransactionMeta") -> AbortedTransaction:
    """Normalize an aborted :class:`TransactionMeta` (statistics only)."""
    return AbortedTransaction(
        txn_id=meta.txn_id,
        coordinator=meta.coordinator,
        is_update=meta.is_update,
        reason=meta.abort_reason,
        abort_time=meta.abort_time if meta.abort_time is not None else 0.0,
    )


@dataclass
class HistoryRecorder:
    """Collects the history of one experiment or test run."""

    committed: List[CommittedTransaction] = field(default_factory=list)
    aborted: List[AbortedTransaction] = field(default_factory=list)
    enabled: bool = True

    # ------------------------------------------------------------------
    def record_commit(self, meta: "TransactionMeta") -> None:
        """Record the external commit of ``meta``."""
        if not self.enabled:
            return
        self.committed.append(committed_from_meta(meta))

    def record_abort(self, meta: "TransactionMeta") -> None:
        if not self.enabled:
            return
        self.aborted.append(aborted_from_meta(meta))

    # ------------------------------------------------------------------
    @property
    def committed_updates(self) -> List[CommittedTransaction]:
        return [txn for txn in self.committed if txn.is_update]

    @property
    def committed_read_only(self) -> List[CommittedTransaction]:
        return [txn for txn in self.committed if txn.is_read_only]

    def abort_rate(self) -> float:
        """Aborts over attempts (committed + aborted)."""
        attempts = len(self.committed) + len(self.aborted)
        if attempts == 0:
            return 0.0
        return len(self.aborted) / attempts

    def by_id(self) -> Dict[TransactionId, CommittedTransaction]:
        return {txn.txn_id: txn for txn in self.committed}

    def completion_order(self) -> List[CommittedTransaction]:
        """Committed transactions sorted by client-visible completion time."""
        return sorted(self.committed, key=lambda txn: txn.external_commit_time)

    def clear(self) -> None:
        self.committed.clear()
        self.aborted.clear()
