"""Windowed (online) consistency checking.

The post-hoc checkers in :mod:`repro.consistency.checkers` need the entire
history in memory — O(n) in committed transactions, which is exactly what a
"heavy traffic" run cannot afford.  This module checks the same properties
**as the run progresses** and discards transactions once they can no longer
participate in a new violation:

* Committed transactions arrive in external-commit order (the recorder is
  fed at the instant each client is answered, so the *commit frontier* —
  the latest external-commit time seen — is nondecreasing).  No future
  record can ever land behind the frontier.
* A new transaction's dependency and real-time edges only reach a bounded
  distance into the past: its begin time is at most the maximum transaction
  lifetime ago (the prepare timeout plus the read-only restart wait), and
  the versions it observed are at most the protocols' staleness bound old.
  ``retention_us`` over-approximates that *ambiguous zone*; its default is
  derived from the cluster's :class:`~repro.common.config.TimeoutConfig`.
* Time is cut into fixed ``epoch_us`` epochs.  Epoch *E* **closes** when
  the frontier passes ``end(E) + retention_us``: at that point every
  transaction that could share a violation with E's transactions has been
  observed.  Closing runs the ordinary post-hoc checkers over the retained
  window and then prunes transactions older than ``end(E)``, remembering
  per key only the *identities* of pruned writers that an in-sync retained
  reader could still observe: every id newer than ``end(E) - retention_us``
  plus the single youngest id at or below that cutoff (the latest version
  as of the oldest instant such a reader's snapshot can reflect).  Older
  ids are shadowed by a younger write and expire into a fixed-size
  deterministic Bloom filter (:class:`_IdBloom`) — a crash-frozen replica
  under lazy replication can legally serve a version of unbounded age, so
  "was this id ever a committed writer?" must stay answerable forever, in
  O(1) space.

Verdicts are **sticky** (a violation found at any close stays reported) and
the retained window is bounded by ``retention_us + epoch_us`` worth of
transactions — memory no longer grows with run length.

Relation to the post-hoc oracle
-------------------------------
The post-hoc checkers remain the golden oracle;
``tests/unit/test_windowed_consistency.py`` asserts verdict equivalence on
every sweep shape the repo runs.  Equivalence holds under the bounded-window
assumption above: any violation whose transactions span at most
``retention_us`` of commit time is fully contained in the retained window at
some close (when its last transaction commits, nothing younger than
``frontier - retention_us`` has been pruned), so the oracle's cycle is found
verbatim.  A violation spanning *more* than the retention bound would be
missed — that is the assumption, not a bug, and the checker makes it
observable: reads that reach past the window are counted
(``stale_window_reads`` for reads of a pruned-but-remembered version, which
are legal bounded-staleness reads, and the snapshot checker's
unknown-writer violation for writers that were *never* committed — a
crashed coordinator's zombie read stays a violation because its writer was
never recorded, hence never pruned).

Reads of a pruned writer are rewritten to the *initial-version* observation
(``writer=None``) before checking: every pruned writer of a key precedes
every retained writer in the key's version order (pruning is by commit
time), so the rewrite preserves the anti-dependency edge target and the
consistent-cut verdict while letting the full transaction record go.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.ids import TransactionId
from repro.consistency.checkers import (
    CheckResult,
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
    check_update_completion_order,
)
from repro.consistency.history import CommittedTransaction, committed_from_meta

#: Check names the windowed checker knows, in run_all_checks order.
ALL_CHECKS: Tuple[str, ...] = (
    "external-consistency",
    "serializability",
    "update-completion-order",
    "snapshot-reads",
)


def default_retention_us(timeouts) -> float:
    """Ambiguous-zone bound derived from a :class:`TimeoutConfig`.

    A transaction's edges reach back at most one full lifetime: the prepare
    timeout bounds how long an update can stay in flight, the read-only
    restart wait bounds snapshot retries, and one external-done wait covers
    the answer-to-record slack.  Doubling the done-wait adds headroom for
    the staleness of served snapshots.
    """
    return (
        timeouts.prepare_timeout_us
        + timeouts.readonly_restart_wait_us
        + 2.0 * timeouts.external_done_wait_us
    )


class _IdBloom:
    """Deterministic fixed-size Bloom filter over transaction ids.

    Second memory tier for pruned-writer identities: a replica frozen by a
    crash can serve a version arbitrarily older than any time-based horizon
    (Walter's lazy propagation under a crash plan does exactly this), so the
    checker needs "was this id ever a committed writer?" membership for ids
    long since expired from the exact per-key maps — in O(1) space.  Hashing
    uses :func:`hashlib.blake2b` over the id's string form, so membership is
    identical across processes and ``PYTHONHASHSEED`` values.

    False positives only: a never-committed (zombie) writer that collides is
    misclassified as a legal bounded-staleness read.  At the default sizing
    (1 MiB, 4 probes) the rate stays under ~1% up to roughly 800k inserted
    ids; the post-hoc oracle is unaffected either way.
    """

    def __init__(self, bits: int = 1 << 23, hashes: int = 4):
        if bits % 8 or bits <= 0:
            raise ValueError("bits must be a positive multiple of 8")
        self.bits = bits
        self.hashes = hashes
        self._bytes = bytearray(bits // 8)
        self.added = 0

    def _positions(self, txn_id: TransactionId) -> Iterator[int]:
        digest = hashlib.blake2b(
            str(txn_id).encode("ascii"), digest_size=4 * self.hashes
        ).digest()
        for index in range(self.hashes):
            chunk = digest[4 * index : 4 * index + 4]
            yield int.from_bytes(chunk, "little") % self.bits

    def add(self, txn_id: TransactionId) -> None:
        self.added += 1
        for pos in self._positions(txn_id):
            self._bytes[pos >> 3] |= 1 << (pos & 7)

    def __contains__(self, txn_id: TransactionId) -> bool:
        return all(
            self._bytes[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(txn_id)
        )


class WindowedConsistencyChecker:
    """Epoch-windowed online consistency checking (see module docstring)."""

    def __init__(
        self,
        epoch_us: float = 5_000.0,
        retention_us: float = 60_000.0,
        checks: Sequence[str] = ALL_CHECKS,
        completion_tolerance_us: float = 25.0,
        max_violations: int = 25,
    ):
        if epoch_us <= 0 or retention_us <= 0:
            raise ValueError("epoch_us and retention_us must be positive")
        unknown = set(checks) - set(ALL_CHECKS)
        if unknown:
            raise ValueError(f"unknown checks {sorted(unknown)}; expected from {ALL_CHECKS}")
        self.epoch_us = float(epoch_us)
        self.retention_us = float(retention_us)
        self.checks = tuple(checks)
        self.completion_tolerance_us = completion_tolerance_us
        self.max_violations = max_violations
        self._check_fns: Dict[str, Callable] = {
            "external-consistency": check_external_consistency,
            "serializability": check_serializability,
            "update-completion-order": lambda window: check_update_completion_order(
                window, tolerance_us=self.completion_tolerance_us
            ),
            "snapshot-reads": check_snapshot_reads,
        }
        self._retained: Deque[CommittedTransaction] = deque()
        self._epoch_end = self.epoch_us
        # Identities of pruned writers, per key, in commit order (insertion
        # order of the inner dict).  A retained reader observes the latest
        # version of a key as of some instant no older than
        # ``threshold - retention_us``, so per key we must remember every
        # pruned writer newer than that cutoff *plus* the single youngest one
        # at or below it — older ids can never be referenced again and are
        # expired via the FIFO queue below (one entry per pruned write,
        # amortised O(1)).  Memory is bounded by touched keys plus the write
        # rate over one retention span, not by run length.
        self._pruned_writers: Dict[object, Dict[TransactionId, float]] = {}
        self._pruned_expiry: Deque[Tuple[float, object]] = deque()
        # Tier two: ids expired from the exact maps above live on in a
        # fixed-size Bloom filter, because a crash-frozen replica can serve
        # a version of unbounded age (see _IdBloom).
        self._expired_ids = _IdBloom()
        self._violations: Dict[str, List[str]] = {name: [] for name in self.checks}
        self._seen_violations: Dict[str, set] = {name: set() for name in self.checks}
        # Observability counters (surfaced by stats()/bench JSON).
        self.observed = 0
        self.epochs_closed = 0
        self.pruned = 0
        self.max_retained = 0
        self.stale_window_reads = 0

    # ------------------------------------------------------------------
    def observe(self, txn: CommittedTransaction) -> None:
        """Feed one committed transaction (external-commit order)."""
        self._retained.append(txn)
        self.observed += 1
        if len(self._retained) > self.max_retained:
            self.max_retained = len(self._retained)
        frontier = txn.external_commit_time
        while frontier >= self._epoch_end + self.retention_us:
            self._close_epoch()

    def _close_epoch(self) -> None:
        """Check the retained window, then discard the closing epoch."""
        self._run_checks()
        threshold = self._epoch_end
        retained = self._retained
        while retained and retained[0].external_commit_time < threshold:
            txn = retained.popleft()
            self.pruned += 1
            commit = txn.external_commit_time
            for key in txn.writes:
                self._pruned_writers.setdefault(key, {})[txn.txn_id] = commit
                self._pruned_expiry.append((commit, key))
        # A queue entry (c, key) marks that once the cutoff passes c, every
        # pruned writer of ``key`` older than c is shadowed by the write at c
        # and can be forgotten.
        cutoff = threshold - self.retention_us
        expiry = self._pruned_expiry
        while expiry and expiry[0][0] <= cutoff:
            commit, key = expiry.popleft()
            ids = self._pruned_writers[key]
            while len(ids) > 1:
                oldest = next(iter(ids))
                if ids[oldest] < commit:
                    del ids[oldest]
                    self._expired_ids.add(oldest)
                else:
                    break
        self._epoch_end += self.epoch_us
        self.epochs_closed += 1

    # ------------------------------------------------------------------
    def _window_transactions(self) -> List[CommittedTransaction]:
        """Retained window with pruned-writer reads rewritten (see module doc)."""
        window: List[CommittedTransaction] = []
        for txn in self._retained:
            stale = [
                read
                for read in txn.reads
                if read.writer is not None
                and (
                    read.writer in self._pruned_writers.get(read.key, ())
                    or read.writer in self._expired_ids
                )
            ]
            if not stale:
                window.append(txn)
                continue
            self.stale_window_reads += len(stale)
            stale_set = set(id(read) for read in stale)
            window.append(
                replace(
                    txn,
                    reads=tuple(
                        replace(read, writer=None) if id(read) in stale_set else read
                        for read in txn.reads
                    ),
                )
            )
        return window

    def _run_checks(self) -> Dict[str, CheckResult]:
        window = self._window_transactions()
        results: Dict[str, CheckResult] = {}
        for name in self.checks:
            result = self._check_fns[name](window)
            results[name] = result
            seen = self._seen_violations[name]
            sticky = self._violations[name]
            for violation in result.violations:
                if violation in seen:
                    continue
                seen.add(violation)
                if len(sticky) < self.max_violations:
                    sticky.append(violation)
        return results

    # ------------------------------------------------------------------
    def results(self) -> Dict[str, CheckResult]:
        """Current verdicts: one more pass over the open window, then the
        sticky violations accumulated across every closed epoch.

        Call at (or after) the end of a run; histories shorter than the
        retention bound are never pruned, so the verdicts are *identical*
        to the post-hoc oracle by construction.
        """
        self._run_checks()
        return {
            name: CheckResult(
                ok=not self._violations[name],
                name=name,
                violations=list(self._violations[name]),
                checked_transactions=self.observed,
            )
            for name in self.checks
        }

    def stats(self) -> Dict[str, float]:
        """Bounded-memory observability counters (for the bench JSON)."""
        return {
            "observed": float(self.observed),
            "retained_now": float(len(self._retained)),
            "max_retained": float(self.max_retained),
            "pruned": float(self.pruned),
            "epochs_closed": float(self.epochs_closed),
            "stale_window_reads": float(self.stale_window_reads),
            "pruned_ids_live": float(
                sum(len(ids) for ids in self._pruned_writers.values())
            ),
            "pruned_ids_filtered": float(self._expired_ids.added),
        }


@dataclass
class WindowedHistoryRecorder:
    """Drop-in history recorder that checks online instead of retaining.

    Exposes the same ``record_commit`` / ``record_abort`` surface the
    protocol nodes call on :class:`~repro.consistency.history.HistoryRecorder`,
    but feeds every commit straight into a
    :class:`WindowedConsistencyChecker` and keeps only counters — memory is
    bounded by the checker's retained window, not by run length.
    """

    checker: WindowedConsistencyChecker = field(default_factory=WindowedConsistencyChecker)
    enabled: bool = True
    committed_count: int = 0
    aborted_count: int = 0

    def record_commit(self, meta) -> None:
        if not self.enabled:
            return
        self.committed_count += 1
        self.checker.observe(committed_from_meta(meta))

    def record_abort(self, meta) -> None:
        if not self.enabled:
            return
        self.aborted_count += 1
        # Only the count is kept: aborted transactions never appear in the
        # serialization graph (see HistoryRecorder's module doc).

    # ------------------------------------------------------------------
    def abort_rate(self) -> float:
        attempts = self.committed_count + self.aborted_count
        if attempts == 0:
            return 0.0
        return self.aborted_count / attempts

    def results(self) -> Dict[str, CheckResult]:
        return self.checker.results()

    def check_external_consistency(self) -> CheckResult:
        results = self.results()
        if "external-consistency" not in results:
            raise ValueError(
                "external-consistency is not among this recorder's checks "
                f"({self.checker.checks})"
            )
        return results["external-consistency"]


__all__ = [
    "ALL_CHECKS",
    "WindowedConsistencyChecker",
    "WindowedHistoryRecorder",
    "default_retention_us",
]
