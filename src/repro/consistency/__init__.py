"""History recording and consistency checking.

The paper argues correctness (Section IV) by showing that the Direct
Serialization Graph (DSG) of every executed history — extended with edges for
the order in which transactions return to their clients — is acyclic.  This
package makes that argument mechanically checkable on the histories produced
by the simulated clusters:

* :class:`~repro.consistency.history.HistoryRecorder` — collects committed
  and aborted transactions with their read/write sets, version identities and
  external-commit timestamps.
* :mod:`repro.consistency.dsg` — builds the DSG (wr / ww / rw dependency
  edges plus completion-order edges) with :mod:`networkx`.
* :mod:`repro.consistency.checkers` — external consistency, serializability
  and snapshot-isolation style checks used by tests, property tests and the
  ``consistency_audit`` example.
* :mod:`repro.consistency.window` — the windowed/online variant: the same
  checks run epoch by epoch as the run progresses, with closed epochs
  discarded so memory stays bounded (the post-hoc checkers above remain
  the golden oracle).
"""

from repro.consistency.checkers import (
    CheckResult,
    check_committed_reads,
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
)
from repro.consistency.dsg import DependencyEdge, build_dsg
from repro.consistency.history import CommittedTransaction, HistoryRecorder
from repro.consistency.window import (
    WindowedConsistencyChecker,
    WindowedHistoryRecorder,
    default_retention_us,
)

__all__ = [
    "CheckResult",
    "CommittedTransaction",
    "DependencyEdge",
    "HistoryRecorder",
    "WindowedConsistencyChecker",
    "WindowedHistoryRecorder",
    "build_dsg",
    "check_committed_reads",
    "check_external_consistency",
    "check_serializability",
    "check_snapshot_reads",
    "default_retention_us",
]
