"""History recording and consistency checking.

The paper argues correctness (Section IV) by showing that the Direct
Serialization Graph (DSG) of every executed history — extended with edges for
the order in which transactions return to their clients — is acyclic.  This
package makes that argument mechanically checkable on the histories produced
by the simulated clusters:

* :class:`~repro.consistency.history.HistoryRecorder` — collects committed
  and aborted transactions with their read/write sets, version identities and
  external-commit timestamps.
* :mod:`repro.consistency.dsg` — builds the DSG (wr / ww / rw dependency
  edges plus completion-order edges) with :mod:`networkx`.
* :mod:`repro.consistency.checkers` — external consistency, serializability
  and snapshot-isolation style checks used by tests, property tests and the
  ``consistency_audit`` example.
"""

from repro.consistency.checkers import (
    CheckResult,
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
)
from repro.consistency.dsg import DependencyEdge, build_dsg
from repro.consistency.history import CommittedTransaction, HistoryRecorder

__all__ = [
    "CheckResult",
    "CommittedTransaction",
    "DependencyEdge",
    "HistoryRecorder",
    "build_dsg",
    "check_external_consistency",
    "check_serializability",
    "check_snapshot_reads",
]
