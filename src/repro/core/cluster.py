"""The public SSS cluster facade.

:class:`SSSCluster` is the SSS instantiation of the shared
:class:`~repro.protocols.cluster.ProtocolCluster` facade: the simulation
engine, the network, one :class:`~repro.core.node.SSSNode` per node, the key
placement, an optional history recorder and the fault plane, exposing
``session`` / ``spawn`` / ``run`` / ``check_consistency``.  The baselines
instantiate the very same facade, which lets the harness treat every
protocol uniformly through :data:`repro.protocols.REGISTRY`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.config import ClusterConfig
from repro.core.node import SSSNode
from repro.protocols.cluster import ProtocolCluster
from repro.protocols.registry import register


class SSSCluster(ProtocolCluster):
    """A simulated SSS key-value store deployment."""

    node_class = SSSNode
    protocol_name = "sss"

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        keys: Optional[Sequence[object]] = None,
        record_history: bool = True,
        strict_visibility: bool = False,
        initial_value=0,
        **kwargs,
    ):
        super().__init__(
            config=config,
            keys=keys,
            record_history=record_history,
            initial_value=initial_value,
            strict_visibility=strict_visibility,
            **kwargs,
        )

    def node(self, node_id: int) -> SSSNode:
        return self.nodes[node_id]


register("sss", SSSCluster)
