"""The public cluster facade.

:class:`SSSCluster` assembles a complete simulated SSS deployment — the
simulation engine, the network, one :class:`~repro.core.node.SSSNode` per
node, the key placement and an optional history recorder — and exposes the
operations example programs and the benchmark harness need:

* ``session(node)`` — obtain a client session co-located with a node;
* ``spawn(process)`` — run a client process inside the simulation;
* ``run(until)`` — advance simulated time;
* ``check_consistency()`` — run the external-consistency checker over the
  recorded history.

The same facade shape is reused by the baseline protocols (see
:mod:`repro.baselines`), which lets the harness treat every protocol
uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.consistency.checkers import CheckResult, check_external_consistency
from repro.consistency.history import HistoryRecorder
from repro.core.node import SSSNode
from repro.core.session import Session
from repro.network.transport import Network
from repro.replication.placement import KeyPlacement
from repro.sim.engine import Simulation


class SSSCluster:
    """A simulated SSS key-value store deployment."""

    protocol_name = "sss"

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        keys: Optional[Sequence[object]] = None,
        record_history: bool = True,
        strict_visibility: bool = False,
        initial_value=0,
    ):
        self.config = config or ClusterConfig()
        self.config.validate()
        self.keys: List[object] = (
            list(keys)
            if keys is not None
            else [f"key-{index}" for index in range(self.config.n_keys)]
        )
        self.sim = Simulation(seed=self.config.seed)
        self.network = Network(self.sim, config=self.config.network)
        self.placement = KeyPlacement(
            n_nodes=self.config.n_nodes,
            replication_degree=self.config.replication_degree,
            keys=self.keys,
        )
        self.history: Optional[HistoryRecorder] = (
            HistoryRecorder() if record_history else None
        )
        self.nodes: List[SSSNode] = [
            SSSNode(
                self.sim,
                self.network,
                node_id,
                placement=self.placement,
                config=self.config,
                history=self.history,
                strict_visibility=strict_visibility,
            )
            for node_id in range(self.config.n_nodes)
        ]
        for node in self.nodes:
            node.preload(self.keys, initial_value=initial_value)
        self._session_counter: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Client-facing API
    # ------------------------------------------------------------------
    def session(self, node_id: int = 0) -> Session:
        """Create a client session co-located with ``node_id``."""
        if not 0 <= node_id < self.config.n_nodes:
            raise ConfigurationError(
                f"node_id {node_id} out of range (cluster has "
                f"{self.config.n_nodes} nodes)"
            )
        index = self._session_counter.get(node_id, 0)
        self._session_counter[node_id] = index + 1
        return Session(self.nodes[node_id], client_index=index)

    def spawn(self, generator, name: str = ""):
        """Run a client process (a generator) inside the simulation."""
        return self.sim.process(generator, name=name or "client")

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (to ``until`` microseconds, or to quiescence)."""
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def node(self, node_id: int) -> SSSNode:
        return self.nodes[node_id]

    def check_consistency(self) -> CheckResult:
        """Run the external-consistency check over the recorded history."""
        if self.history is None:
            raise ConfigurationError(
                "history recording is disabled for this cluster"
            )
        return check_external_consistency(self.history)

    def total_counters(self) -> Dict[str, int]:
        """Aggregate protocol counters over every node."""
        totals: Dict[str, int] = {}
        for node in self.nodes:
            for name, value in node.stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SSSCluster nodes={self.config.n_nodes} "
            f"keys={len(self.keys)} rf={self.config.replication_degree}>"
        )
