"""One SSS protocol node.

:class:`SSSNode` is the server side of the protocol: it stores a shard of the
multi-version key space and answers the messages defined in
:mod:`repro.core.messages`:

* ``ReadRequest`` — version selection for read-only and update transactions
  (Algorithm 6), including the ``wait until NLog.mostRecentVC[i] >= T.VC[i]``
  gate, the Visible/Excluded set computation, snapshot-queue insertion and
  the starvation-avoidance back-off.
* ``Prepare`` / ``Decide`` — 2PC participant logic (Algorithm 2): lock
  acquisition, read-set validation, proposed vector clock, commit-queue
  insertion, and the ordered apply of ready transactions at the queue head
  followed by the start of their pre-commit phase (Algorithm 3).
* ``Remove`` — snapshot-queue cleanup when a read-only transaction returns
  to its client, with forwarding along anti-dependency propagation chains.

The client-side execution of transactions (Algorithm 5 reads and the
Algorithm 1 commit) lives in :class:`repro.core.coordinator.CoordinatorMixin`,
which this class inherits: in SSS the coordinator of a transaction is simply
the node its client is co-located with.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.config import ClusterConfig
from repro.common.ids import NodeId, TransactionId
from repro.core.coordinator import CoordinatorMixin
from repro.core.messages import (
    Decide,
    ExternalAck,
    Prepare,
    ReadRequest,
    ReadReturn,
    Remove,
    Vote,
)
from repro.core.metadata import PropagatedEntry
from repro.network.node import NetworkedNode
from repro.replication.placement import KeyPlacement
from repro.storage.commit_queue import CommitQueue
from repro.storage.locks import LockTable
from repro.storage.mvstore import MultiVersionStore
from repro.storage.nlog import NLog, NLogEntry
from repro.storage.snapshot_queue import (
    READ_KIND,
    SQueueEntry,
    WRITE_KIND,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.consistency.history import HistoryRecorder
    from repro.network.transport import Network
    from repro.sim.engine import Simulation


class _PreparedState:
    """Book-keeping for a transaction this node prepared as a 2PC participant."""

    __slots__ = ("read_keys", "write_items", "is_write_replica")

    def __init__(
        self,
        read_keys: Tuple[object, ...],
        write_items: Tuple[Tuple[object, object], ...],
        is_write_replica: bool,
    ):
        self.read_keys = read_keys
        self.write_items = write_items
        self.is_write_replica = is_write_replica


class SSSNode(CoordinatorMixin, NetworkedNode):
    """A node of the SSS key-value store."""

    def __init__(
        self,
        sim: "Simulation",
        network: "Network",
        node_id: NodeId,
        placement: KeyPlacement,
        config: ClusterConfig,
        history: Optional["HistoryRecorder"] = None,
        strict_visibility: bool = False,
    ):
        super().__init__(sim, network, node_id, service=config.service)
        self.placement = placement
        self.config = config
        self.history = history
        self.strict_visibility = strict_visibility
        n_nodes = config.n_nodes

        # Data plane.
        self.store = MultiVersionStore(node_id, sim=sim)
        self.locks = LockTable(sim, name=f"locks@{node_id}")
        self.nlog = NLog(node_id, n_nodes, sim=sim)
        self.commit_queue = CommitQueue(node_id, sim=sim)
        self.node_vc = VectorClock.zeros(n_nodes)

        # Participant-side state for in-flight 2PC rounds.
        self._prepared: Dict[TransactionId, _PreparedState] = {}
        # Decisions that arrived before (or without) a matching Prepare.
        self._decided_early: Dict[TransactionId, Decide] = {}
        # Per-transaction write payloads waiting in the commit queue.
        self._pending_writes: Dict[TransactionId, Tuple[Tuple[object, object], ...]] = {}
        self._pending_propagated: Dict[TransactionId, Tuple[PropagatedEntry, ...]] = {}

        # Remove-forwarding: reader transaction -> nodes we shipped its
        # snapshot-queue entry to (via ReadReturn propagated sets or Decide).
        self._forward_map: Dict[TransactionId, Set[NodeId]] = defaultdict(set)
        # Readers already removed; late propagated insertions are suppressed.
        self._removed_readers: Set[TransactionId] = set()
        # Local index: reader transaction -> keys whose squeue holds it.
        self._reader_keys: Dict[TransactionId, Set[object]] = defaultdict(set)
        # Starvation back-off: per-key consecutive back-off count.
        self._backoff_level: Dict[object, int] = defaultdict(int)

        # Coordinator-side state (owned by CoordinatorMixin helpers).
        self._init_coordinator_state()

        # Metrics counters.
        self.counters = defaultdict(int)

        # Message handlers.
        self.register_handler(ReadRequest, self.on_read_request)
        self.register_handler(Prepare, self.on_prepare)
        self.register_handler(Decide, self.on_decide)
        self.register_handler(ExternalAck, self.on_external_ack)
        self.register_handler(Remove, self.on_remove)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def replicas(self, key: object) -> Tuple[NodeId, ...]:
        return self.placement.replicas(key)

    def is_replica_of(self, key: object) -> bool:
        return self.placement.is_replica(self.node_id, key)

    def preload(self, keys, initial_value=0) -> None:
        """Install version zero of the local replicas of ``keys``."""
        local = [key for key in keys if self.is_replica_of(key)]
        self.store.preload(local, initial_value=initial_value, n_nodes=self.config.n_nodes)

    # ------------------------------------------------------------------
    # ReadRequest handling — Algorithm 6
    # ------------------------------------------------------------------
    def on_read_request(self, message: ReadRequest):
        """Version-selection handler (runs as a simulation process)."""
        key = message.key
        i = self.node_id
        service = self.service

        if message.is_update:
            # Lines 23-27: update transactions read the latest version and
            # collect the key's queued read-only entries for propagation.
            yield self.cpu(service.read_local_us)
            max_vc = self.nlog.most_recent_vc
            squeue = self.store.squeue(key)
            propagated = tuple(
                PropagatedEntry(entry.txn_id, entry.insertion_snapshot)
                for entry in squeue.readers()
            )
            # Remember where those reader entries are shipped so that their
            # Remove can be forwarded along the anti-dependency chain.
            for entry in propagated:
                self.note_propagation(entry.txn_id, message.sender)
            version = self.store.latest(key)
            self.counters["reads_update"] += 1
            self.respond(
                message,
                ReadReturn(
                    txn_id=message.txn_id,
                    key=key,
                    value=version.value,
                    max_vc=max_vc,
                    version_vc=version.vc,
                    writer=version.writer,
                    propagated=propagated,
                ),
            )
            return

        # ---- read-only transactions -------------------------------------
        reader_vc = message.vc
        has_read = list(message.has_read)
        squeue = self.store.squeue(key)

        # Starvation avoidance: back off when the key's writers have been
        # stuck in the snapshot queue for longer than the threshold, giving
        # them a chance to externally commit before we enqueue yet another
        # reader in front of them.
        yield from self._starvation_backoff(key, squeue)

        if not has_read[i]:
            # Line 5: wait until every transaction already inside the
            # reader's visibility bound has internally committed locally.
            target = reader_vc[i]
            if self.nlog.most_recent_vc[i] < target:
                self.counters["read_waits"] += 1
                yield self.sim.condition(
                    lambda: self.nlog.most_recent_vc[i] >= target,
                    self.nlog.signal,
                    name=f"read-wait:{message.txn_id}",
                )
            yield self.cpu(service.read_local_us)

            # Lines 6-9: visible snapshot minus pre-committing writers above
            # the reader's bound.
            excluded_entries = squeue.writers_above(reader_vc[i])
            excluded_vcs = self._excluded_vcs(key, excluded_entries)
            max_vc = self.nlog.visible_max_vc(
                reader_vc, has_read, excluded_vcs, strict=self.strict_visibility
            )
            insertion_snapshot = max_vc[i]
        else:
            # Lines 15-21: this node already served this transaction before;
            # the visibility bound is the transaction's own vector clock.
            yield self.cpu(service.read_local_us)
            max_vc = reader_vc
            insertion_snapshot = max_vc[i]
            excluded_vcs = set()

        # Line 10 / 17: leave a trace of the read in the snapshot queue.
        self._insert_reader(key, message.txn_id, insertion_snapshot)

        # Lines 11-14 / 18-21: walk the version chain newest-to-oldest until a
        # version within the visibility bound (and not excluded) is found.
        version = self._select_version(key, has_read, max_vc, excluded_vcs)
        yield self.cpu(service.version_walk_us * max(1, len(self.store.chain(key))))

        self.counters["reads_read_only"] += 1
        self.respond(
            message,
            ReadReturn(
                txn_id=message.txn_id,
                key=key,
                value=version.value,
                max_vc=max_vc,
                version_vc=version.vc,
                writer=version.writer,
                propagated=(),
            ),
        )

    def _excluded_vcs(self, key: object, excluded_entries) -> Set[VectorClock]:
        """Commit vector clocks of the excluded (pre-committing) writers."""
        excluded: Set[VectorClock] = set()
        if not excluded_entries:
            return excluded
        excluded_ids = {entry.txn_id for entry in excluded_entries}
        for version in self.store.chain(key).newest_to_oldest():
            if version.writer in excluded_ids:
                excluded.add(version.vc)
                excluded_ids.discard(version.writer)
                if not excluded_ids:
                    break
        return excluded

    def _select_version(
        self,
        key: object,
        has_read: List[bool],
        max_vc: VectorClock,
        excluded_vcs: Set[VectorClock],
    ):
        """Newest version within the visibility bound and not excluded."""
        i = self.node_id
        chain = self.store.chain(key)
        for version in chain.newest_to_oldest():
            if version.vc in excluded_vcs and version.vc[i] > max_vc[i]:
                continue
            out_of_bound = False
            for w, flag in enumerate(has_read):
                if flag and version.vc[w] > max_vc[w]:
                    out_of_bound = True
                    break
            if not out_of_bound and version.vc[i] <= max_vc[i]:
                return version
        # The preloaded version zero is visible to everyone; reaching this
        # point means the key was never preloaded on this node.
        raise KeyError(f"node {self.node_id} has no visible version of {key!r}")

    def _insert_reader(self, key: object, txn_id: TransactionId, snapshot: int) -> None:
        if txn_id in self._removed_readers:
            return
        self.store.squeue(key).insert(SQueueEntry(txn_id, snapshot, READ_KIND))
        self._reader_keys[txn_id].add(key)

    def _starvation_backoff(self, key: object, squeue):
        """Exponential back-off of read-only reads on starving keys."""
        timeouts = self.config.timeouts
        age = squeue.oldest_writer_age(self.sim.now)
        if age is not None and age > timeouts.starvation_threshold_us:
            level = min(self._backoff_level[key], 6)
            delay = min(
                timeouts.backoff_initial_us * (2**level), timeouts.backoff_max_us
            )
            self._backoff_level[key] += 1
            self.counters["starvation_backoffs"] += 1
            yield self.sim.timeout(delay)
        else:
            self._backoff_level[key] = 0
        return None

    # ------------------------------------------------------------------
    # Prepare / Decide — Algorithm 2
    # ------------------------------------------------------------------
    def on_prepare(self, message: Prepare):
        """2PC prepare: lock, validate, vote (runs as a process)."""
        txn_id = message.txn_id
        service = self.service
        local_read_versions = tuple(
            (k, vc) for k, vc in message.read_versions if self.is_replica_of(k)
        )
        local_reads = tuple(k for k, _vc in local_read_versions)
        local_writes = tuple(
            (k, v) for k, v in message.write_items if self.is_replica_of(k)
        )
        write_keys = tuple(k for k, _v in local_writes)

        yield self.cpu(service.lock_op_us * max(1, len(local_reads) + len(write_keys)))
        locked = yield from self.locks.acquire_all(
            txn_id,
            exclusive_keys=write_keys,
            shared_keys=local_reads,
            timeout_us=self.config.timeouts.lock_timeout_us,
        )

        outcome = locked
        if locked:
            yield self.cpu(service.validate_key_us * max(1, len(local_reads)))
            outcome = self._validate(local_read_versions)

        if not outcome:
            if locked:
                self.locks.release(txn_id, list(write_keys) + list(local_reads))
            self.counters["prepare_rejects"] += 1
            self.respond(
                message, Vote(txn_id=txn_id, vc=message.vc, success=False)
            )
            return

        is_write_replica = bool(local_writes)
        if is_write_replica:
            # Lines 8-11: propose NodeVC with the local entry incremented and
            # enqueue the transaction as pending.
            self.node_vc = self.node_vc.increment(self.node_id)
            prep_vc = self.node_vc
            self.commit_queue.put(txn_id, prep_vc)
        else:
            prep_vc = self.nlog.most_recent_vc

        self._prepared[txn_id] = _PreparedState(local_reads, local_writes, is_write_replica)
        self._pending_writes[txn_id] = local_writes
        self.counters["prepares"] += 1
        self.respond(message, Vote(txn_id=txn_id, vc=prep_vc, success=True))

        # A decision that raced ahead of this prepare is applied now.
        early = self._decided_early.pop(txn_id, None)
        if early is not None:
            self._apply_decide(early)

    def _validate(self, read_versions) -> bool:
        """Algorithm 1 lines 27-33: reject overwritten read keys.

        The pseudo-code compares the latest version against ``T.VC[i]``; the
        text states the intent — "abort if some read key has been overwritten
        meanwhile" — so the check compares the latest local version against
        the version the transaction actually read (the two coincide when the
        read was served by this replica, and the version-based form also
        rejects stale reads served by a lagging replica).
        """
        i = self.node_id
        for key, read_vc in read_versions:
            chain = self.store.chain(key)
            if len(chain) == 0:
                continue
            if chain.latest.vc[i] > read_vc[i]:
                return False
        return True

    def on_decide(self, message: Decide) -> None:
        """2PC decision (Algorithm 2 lines 16-28)."""
        if message.txn_id not in self._prepared:
            # Prepare still in flight (possible with prioritized queues):
            # stash the decision and apply it right after the vote.
            self._decided_early[message.txn_id] = message
            return
        self._apply_decide(message)

    def _apply_decide(self, message: Decide) -> None:
        txn_id = message.txn_id
        state = self._prepared.get(txn_id)
        if state is None:  # pragma: no cover - defensive
            return
        if message.outcome:
            self.node_vc = self.node_vc.merge(message.commit_vc)
            if state.is_write_replica:
                self._pending_propagated[txn_id] = message.propagated
                self.commit_queue.update(txn_id, message.commit_vc)
            else:
                # Read-only participants are done once the decision arrives.
                self.locks.release(txn_id, state.read_keys)
                del self._prepared[txn_id]
                self._pending_writes.pop(txn_id, None)
        else:
            self.commit_queue.remove(txn_id)
            self.locks.release(
                txn_id, [k for k, _v in state.write_items] + list(state.read_keys)
            )
            del self._prepared[txn_id]
            self._pending_writes.pop(txn_id, None)
            self.counters["participant_aborts"] += 1
        self._drain_commit_queue()

    # ------------------------------------------------------------------
    # Commit-queue head processing + pre-commit (Algorithms 2 l.29-36, 3, 4)
    # ------------------------------------------------------------------
    def _drain_commit_queue(self) -> None:
        """Apply every ready transaction standing at the commit-queue head."""
        while self.commit_queue.head_is_ready():
            entry = self.commit_queue.head()
            self._apply_internal_commit(entry.txn_id, entry.vc)

    def _apply_internal_commit(self, txn_id: TransactionId, commit_vc: VectorClock) -> None:
        state = self._prepared.pop(txn_id, None)
        write_items = self._pending_writes.pop(txn_id, ())
        propagated = self._pending_propagated.pop(txn_id, ())
        write_keys = tuple(k for k, _v in write_items)

        for key, value in write_items:
            self.store.install(key, value, commit_vc, writer=txn_id)
        self.nlog.append(
            NLogEntry(
                txn_id=txn_id,
                vc=commit_vc,
                write_keys=write_keys,
                commit_time=self.sim.now,
            )
        )
        self.commit_queue.remove(txn_id)
        if state is not None:
            self.locks.release(txn_id, list(write_keys) + list(state.read_keys))
        self.counters["internal_commits"] += 1

        # Algorithm 3: enter the pre-commit phase for the local written keys.
        self.sim.process(
            self._pre_commit(txn_id, commit_vc, write_keys, propagated),
            name=f"precommit:{txn_id}@{self.node_id}",
        )

    def _pre_commit(self, txn_id, commit_vc, write_keys, propagated):
        """Algorithms 3 and 4: snapshot-queue insertion, wait, ack."""
        i = self.node_id
        snapshot = commit_vc[i]
        coordinator = txn_id.node

        for key in write_keys:
            squeue = self.store.squeue(key)
            squeue.insert(SQueueEntry(txn_id, snapshot, WRITE_KIND))
            for entry in propagated:
                if entry.txn_id in self._removed_readers:
                    continue
                squeue.insert(
                    SQueueEntry(entry.txn_id, entry.snapshot, READ_KIND)
                )
                self._reader_keys[entry.txn_id].add(key)
            yield self.cpu(self.service.queue_op_us)

        # Algorithm 4: wait, per written key, until no entry with a smaller
        # insertion-snapshot remains in the queue.  The pattern in the
        # pseudo-code (`<T'.id, T'.sid, −>`) covers readers *and* writers, so
        # conflicting update transactions hand their clients the responses in
        # serialization order; the prose emphasises the read-only case because
        # that is the one that can hold a writer for a long time.
        for key in write_keys:
            squeue = self.store.squeue(key)
            if squeue.has_entry_below(snapshot, exclude_txn=txn_id):
                self.counters["precommit_waits"] += 1
                yield self.sim.condition(
                    lambda sq=squeue: not sq.has_entry_below(
                        snapshot, exclude_txn=txn_id
                    ),
                    squeue.signal,
                    name=f"precommit-wait:{txn_id}",
                )
            squeue.remove(txn_id)

        self.counters["external_acks_sent"] += 1
        self.send(coordinator, ExternalAck(txn_id=txn_id, snapshot=snapshot))

    # ------------------------------------------------------------------
    # Remove handling and forwarding
    # ------------------------------------------------------------------
    def on_remove(self, message: Remove) -> None:
        """Delete a returned read-only transaction from local snapshot queues."""
        txn_id = message.txn_id
        self._removed_readers.add(txn_id)
        keys = set(message.keys) if message.keys else set()
        keys |= self._reader_keys.pop(txn_id, set())
        for key in keys:
            if self.store.has_key(key) or key in self.store.squeues():
                self.store.squeue(key).remove(txn_id)
        self.counters["removes_handled"] += 1

        # Forward along the anti-dependency propagation chain: every node we
        # shipped this reader's entry to must clean up as well.
        for destination in self._forward_map.pop(txn_id, set()):
            if destination != self.node_id:
                self.send(destination, Remove(txn_id=txn_id, keys=()))

    def note_propagation(self, reader: TransactionId, destination: NodeId) -> None:
        """Record that ``reader``'s queue entry was shipped to ``destination``."""
        if destination == self.node_id:
            return
        if reader in self._removed_readers:
            # The reader already returned to its client; its entries are being
            # (or have been) cleaned up, so there is nothing to forward later.
            return
        self._forward_map[reader].add(destination)

    # ------------------------------------------------------------------
    # Introspection used by the harness and tests
    # ------------------------------------------------------------------
    def queued_writer_count(self) -> int:
        """Number of update transactions currently held in local squeues."""
        return sum(
            len(squeue.writers()) for squeue in self.store.squeues().values()
        )

    def stats(self) -> Dict[str, int]:
        stats = dict(self.counters)
        stats["nlog_length"] = len(self.nlog)
        stats["commit_queue_length"] = len(self.commit_queue)
        stats["messages_handled"] = self.messages_handled
        stats["lock_timeouts"] = self.locks.timeout_count
        return stats
