"""One SSS protocol node.

:class:`SSSNode` is the server side of the protocol: it stores a shard of the
multi-version key space and answers the messages defined in
:mod:`repro.core.messages`:

* ``ReadRequest`` — version selection for read-only and update transactions
  (Algorithm 6), including the ``wait until NLog.mostRecentVC[i] >= T.VC[i]``
  gate, the Visible/Excluded set computation, snapshot-queue insertion and
  the starvation-avoidance back-off.
* ``Prepare`` / ``Decide`` — 2PC participant logic (Algorithm 2): lock
  acquisition, read-set validation, proposed vector clock, commit-queue
  insertion, and the ordered apply of ready transactions at the queue head
  followed by the start of their pre-commit phase (Algorithm 3).
* ``Remove`` — snapshot-queue cleanup when a read-only transaction returns
  to its client, with forwarding along anti-dependency propagation chains.

The client-side execution of transactions (Algorithm 5 reads and the
Algorithm 1 commit) lives in :class:`repro.core.coordinator.CoordinatorMixin`,
which this class inherits: in SSS the coordinator of a transaction is simply
the node its client is co-located with.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.config import ClusterConfig
from repro.common.errors import NodeCrashedError
from repro.common.ids import NodeId, TransactionId
from repro.core.coordinator import CoordinatorMixin
from repro.core.messages import (
    Decide,
    ExternalAck,
    ExternalDone,
    ExternalStatusQuery,
    ExternalStatusReply,
    Prepare,
    PrecommitQuery,
    ReadRequest,
    ReadReturn,
    ReleaseGate,
    Remove,
    SubscribeExternal,
    Vote,
)
from repro.core.metadata import PropagatedEntry, TransactionPhase
from repro.protocols.runtime import ProtocolRuntime
from repro.replication.placement import KeyPlacement
from repro.storage.commit_queue import CommitQueue, ParticipantRedoLog
from repro.storage.locks import LockTable
from repro.storage.mvstore import MultiVersionStore
from repro.storage.nlog import NLog, NLogEntry
from repro.storage.snapshot_queue import (
    READ_KIND,
    SQueueEntry,
    WRITE_KIND,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.consistency.history import HistoryRecorder
    from repro.network.transport import Network
    from repro.sim.engine import Simulation


class _PreparedState:
    """Book-keeping for a transaction this node prepared as a 2PC participant."""

    __slots__ = ("read_keys", "write_items", "is_write_replica")

    def __init__(
        self,
        read_keys: Tuple[object, ...],
        write_items: Tuple[Tuple[object, object], ...],
        is_write_replica: bool,
    ):
        self.read_keys = read_keys
        self.write_items = write_items
        self.is_write_replica = is_write_replica


class SSSNode(CoordinatorMixin, ProtocolRuntime):
    """A node of the SSS key-value store."""

    def __init__(
        self,
        sim: "Simulation",
        network: "Network",
        node_id: NodeId,
        placement: KeyPlacement,
        config: ClusterConfig,
        history: Optional["HistoryRecorder"] = None,
        strict_visibility: bool = False,
    ):
        super().__init__(sim, network, node_id, placement=placement, config=config, history=history)
        self.strict_visibility = strict_visibility
        n_nodes = config.n_nodes

        # Data plane.
        self.store = MultiVersionStore(node_id, sim=sim)
        self.locks = LockTable(sim, name=f"locks@{node_id}", owner=node_id)
        self.nlog = NLog(node_id, n_nodes, sim=sim)
        self.commit_queue = CommitQueue(node_id, sim=sim)
        # Durable redo log of write-replica votes: survives crashes, closes
        # the voted-then-crashed in-doubt window (see on_restart).
        self.redo_log = ParticipantRedoLog()
        self.node_vc = VectorClock.zeros(n_nodes)

        # Participant-side state for in-flight 2PC rounds.
        self._prepared: Dict[TransactionId, _PreparedState] = {}
        # Decisions that arrived before (or without) a matching Prepare.
        self._decided_early: Dict[TransactionId, Decide] = {}
        # Per-transaction write payloads waiting in the commit queue.
        self._pending_writes: Dict[TransactionId, Tuple[Tuple[object, object], ...]] = {}
        self._pending_propagated: Dict[TransactionId, Tuple[PropagatedEntry, ...]] = {}

        # Remove-forwarding: reader transaction -> nodes we shipped its
        # snapshot-queue entry to (via ReadReturn propagated sets or Decide).
        self._forward_map: Dict[TransactionId, Set[NodeId]] = defaultdict(set)
        # Readers already removed; late propagated insertions are suppressed.
        self._removed_readers: Set[TransactionId] = set()
        # Local index: reader transaction -> keys whose squeue holds it.
        self._reader_keys: Dict[TransactionId, Set[object]] = defaultdict(set)
        # Starvation back-off: per-key consecutive back-off count.
        self._backoff_level: Dict[object, int] = defaultdict(int)
        # Writers whose external commit this node has been notified of,
        # mapped to the coordinator's external-commit timestamp (None for
        # writers that finished without answering a client — abort or crash
        # teardown — which impose no real-time order).  Their versions may
        # be handed to clients without an external-commit dependency wait,
        # and the timestamp feeds the real-time staleness test of read-only
        # reads.  (Preloaded versions have writer None and need no
        # tracking.)  The map grows with the number of committed writers and
        # is deliberately never pruned: "not in the map" *means* pending, so
        # dropping an entry would silently re-gate old versions.  At
        # simulation scale (<=1e6 transactions per run) this is cheap;
        # GC-ing it would need a per-version done-bit instead.
        self._externally_done: Dict[TransactionId, Optional[float]] = {}
        # Largest node-local clock value among locally installed versions
        # whose writer is known externally committed, and the per-writer
        # local values feeding it (consumed on the Done notification).
        self._done_local_watermark: int = -1
        self._applied_local_value: Dict[TransactionId, int] = {}
        # Per still-pending writer, the event local transactions wait on for
        # the writer's ExternalDone notification.
        self._ext_done_events: Dict[TransactionId, object] = {}
        # Targets to notify when a transaction this node coordinates
        # externally commits (fed by SubscribeExternal).
        self._external_watchers: Dict[TransactionId, Set[NodeId]] = defaultdict(set)
        # Answer gates: readers that ambiguously *excluded* a writer this
        # node coordinates while the writer was confirmed in flight.  The
        # writer's client answer waits until every gating reader finishes or
        # restarts — the ordering a snapshot-queue entry would have enforced
        # had the writer not already passed its local pre-commit wait, which
        # is what keeps the exclusion externally consistent.
        self._answer_gates: Dict[TransactionId, Set[TransactionId]] = {}
        self._gates_by_reader: Dict[TransactionId, Set[TransactionId]] = {}
        self._answer_gate_events: Dict[TransactionId, object] = {}
        # Per still-pending writer, the coordinator targets this node already
        # forwarded subscriptions for (so one reader hammering a hot version
        # does not flood the coordinator); pruned when the writer's
        # ExternalDone arrives.
        self._subscriptions_sent: Dict[TransactionId, Set[NodeId]] = defaultdict(set)

        # Coordinator-side state (owned by CoordinatorMixin helpers); the
        # transaction-id generator, the coordinated-transaction map and the
        # metrics counters live in ProtocolRuntime.
        self._init_coordinator_state()

        # Message handlers.
        self.register_handler(ReadRequest, self.on_read_request)
        self.register_handler(Prepare, self.on_prepare)
        self.register_handler(Decide, self.on_decide)
        self.register_handler(ExternalAck, self.on_external_ack)
        self.register_handler(ExternalDone, self.on_external_done)
        self.register_handler(SubscribeExternal, self.on_subscribe_external)
        self.register_handler(PrecommitQuery, self.on_precommit_query)
        self.register_handler(ExternalStatusQuery, self.on_external_status_query)
        self.register_handler(ReleaseGate, self.on_release_gate)
        self.register_handler(Remove, self.on_remove)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def preload(self, keys, initial_value=0) -> None:
        """Install version zero of the local replicas of ``keys``."""
        local = [key for key in keys if self.is_replica_of(key)]
        self.store.preload(local, initial_value=initial_value, n_nodes=self.config.n_nodes)

    # ------------------------------------------------------------------
    # ReadRequest handling — Algorithm 6
    # ------------------------------------------------------------------
    def on_read_request(self, message: ReadRequest):
        """Version-selection handler (runs as a simulation process)."""
        key = message.key
        i = self.node_id
        service = self.service

        if message.is_update:
            # Lines 23-27: update transactions read the latest version and
            # collect the key's queued read-only entries for propagation.
            yield self.cpu(service.read_local_us)
            max_vc = self.nlog.most_recent_vc
            squeue = self.store.squeue(key)
            propagated = tuple(
                PropagatedEntry(entry.txn_id, entry.insertion_snapshot)
                for entry in squeue.readers()
                # Entries scoped to another carrier encode an anti-dependency
                # on that carrier only; they do not travel further.
                if entry.only_for is None
            )
            # Remember where those reader entries are shipped so that their
            # Remove can be forwarded along the anti-dependency chain.
            for entry in propagated:
                self.note_propagation(entry.txn_id, message.sender)
            version = self.store.latest(key)
            self.counters["reads_update"] += 1
            self.respond(
                message,
                ReadReturn(
                    txn_id=message.txn_id,
                    key=key,
                    value=version.value,
                    max_vc=max_vc,
                    version_vc=version.vc,
                    writer=version.writer,
                    propagated=propagated,
                    writer_pending=self._flag_pending_writer(version.writer, message.sender),
                ),
            )
            return

        # ---- read-only transactions -------------------------------------
        reader_vc = message.vc
        has_read = message.has_read
        squeue = self.store.squeue(key)

        # Starvation avoidance: back off when the key's writers have been
        # stuck in the snapshot queue for longer than the threshold, giving
        # them a chance to externally commit before we enqueue yet another
        # reader in front of them.
        yield from self._starvation_backoff(key, squeue, txn_id=message.txn_id)

        # Line 5: wait until every transaction already inside the reader's
        # visibility bound has internally committed locally.  The NLog scalar
        # alone is not enough: ``xactVN`` is copied to every write-replica
        # coordinate, so two distinct installs can carry the same node-local
        # value and the log can reach the bound while an install inside the
        # bound still sits in the commit queue — serving then would let the
        # reader observe the writer at one key and miss it at another.
        target = reader_vc[i]
        if (
            self.nlog.most_recent_vc[i] < target
            or self.commit_queue.has_entry_at_or_below(target)
        ):
            self.counters["read_waits"] += 1
            tracer = self.sim.tracer
            if tracer is not None:
                wait_start = self.sim.now
                blocked_on = sorted(
                    entry.txn_id
                    for entry in self.commit_queue.entries()
                    if entry.txn_id != message.txn_id
                )
            yield self.sim.condition(
                lambda: (
                    self.nlog.most_recent_vc[i] >= target
                    and not self.commit_queue.has_entry_at_or_below(target)
                ),
                [self.nlog.signal, self.commit_queue.signal],
                name=f"read-wait:{message.txn_id}",
            )
            if tracer is not None:
                tracer.span(
                    "wait.commit_queue",
                    wait_start,
                    txn=message.txn_id,
                    node=i,
                    link=blocked_on,
                    args={"key": str(key)},
                )

        if not has_read[i]:
            yield self.cpu(service.read_local_us)

            # A writer above the reader's bound that is not yet known to be
            # externally committed either gets excluded from the snapshot
            # (the reader is serialized before it, and the reader's queue
            # entry delays the writer's client response), or — when the
            # writer's local pre-commit wait has already passed, so an entry
            # could no longer delay it — is briefly waited for until its
            # ExternalDone notification arrives (ambiguous zone).  Without
            # the wait, two readers bridging two independent such writers
            # can each observe one and exclude the other, producing the
            # contradictory serialization orders of the paper's Figure 2;
            # writers still in flight on expiry get their client answer
            # gated behind this reader before they may be excluded.
            gated, refused = yield from self._resolve_ambiguous_writers(
                message, key, reader_vc, has_read
            )
            if refused:
                self.counters["reads_gate_refused"] += 1
                self.respond(
                    message,
                    ReadReturn(
                        txn_id=message.txn_id,
                        key=key,
                        stale=True,
                        gated=tuple(sorted(gated)),
                    ),
                )
                return

            # Lines 6-9: visible snapshot minus pre-committing writers above
            # the reader's bound.
            excluded_vcs = self._excluded_vcs(key, reader_vc, has_read, force_exclude=gated)
            max_vc = self.nlog.visible_max_vc(
                reader_vc, has_read, excluded_vcs, strict=self.strict_visibility
            )
            # Clamp the served bound below the oldest install still queued:
            # the log's cumulative clock can already cover a queued install's
            # node-local value (scalar collisions, see the line-5 wait), and
            # serving such a bound would let the reader later accept that
            # writer's versions elsewhere while having missed them here.
            # The line-5 wait guarantees the floor lies above the reader's
            # own bound, so reads stay non-blocking.
            floor = self.commit_queue.min_pending_local()
            if floor is not None and max_vc[i] >= floor:
                max_vc = max_vc.with_entry(i, floor - 1)
            insertion_snapshot = max_vc[i]
        else:
            # Lines 15-21: this node already served this transaction before;
            # the visibility bound is the transaction's own vector clock.
            yield self.cpu(service.read_local_us)
            # The fixed bound cannot observe anything newly installed, so a
            # writer that installed *and passed its pre-commit wait* between
            # this transaction's reads at this node would be missed with no
            # entry gating its answer — resolve the ambiguous zone here too,
            # and gate every writer confirmed in flight (``gate_all``:
            # observation is not an option under a fixed bound, so the
            # below-watermark preference of the first-read path does not
            # apply).
            gated, refused = yield from self._resolve_ambiguous_writers(
                message, key, reader_vc, has_read, gate_all=True
            )
            if refused:
                self.counters["reads_gate_refused"] += 1
                self.respond(
                    message,
                    ReadReturn(
                        txn_id=message.txn_id,
                        key=key,
                        stale=True,
                        gated=tuple(sorted(gated)),
                    ),
                )
                return
            max_vc = reader_vc
            insertion_snapshot = max_vc[i]
            excluded_vcs = set()

        # Lines 11-14 / 18-21: walk the version chain newest-to-oldest until a
        # version within the visibility bound (and not excluded) is found —
        # refusing the read as *stale* when the bound hides a version whose
        # writer's client was already answered (no serving choice could then
        # keep the exclusion answer-ordered; the coordinator restarts the
        # transaction under a fresh snapshot).
        version, rt_stale = self._select_version(
            key, has_read, max_vc, excluded_vcs, check_stale=True
        )
        if rt_stale:
            yield self.cpu(service.version_walk_us * max(1, len(self.store.chain(key))))
            self.counters["reads_rt_stale"] += 1
            self.respond(
                message,
                ReadReturn(
                    txn_id=message.txn_id,
                    key=key,
                    stale=True,
                    gated=tuple(sorted(gated)),
                ),
            )
            return

        # Line 10 / 17: leave a trace of the read in the snapshot queue —
        # *before* any further yield: the entry is what gates a concurrently
        # pre-committing writer's client answer behind this reader, and a
        # version installed during a yield taken after the bound was fixed
        # but before the entry existed could otherwise answer its client
        # unordered against this read.
        self._insert_reader(key, message.txn_id, insertion_snapshot)
        yield self.cpu(service.version_walk_us * max(1, len(self.store.chain(key))))

        self.counters["reads_read_only"] += 1
        self.respond(
            message,
            ReadReturn(
                txn_id=message.txn_id,
                key=key,
                value=version.value,
                max_vc=max_vc,
                version_vc=version.vc,
                writer=version.writer,
                propagated=(),
                writer_pending=self._flag_pending_writer(version.writer, message.sender),
                gated=tuple(sorted(gated)),
            ),
        )

    def _flag_pending_writer(
        self, writer: Optional[TransactionId], reader_coordinator: NodeId
    ) -> bool:
        """Flag (and subscribe for) a possibly still pre-committing writer.

        Every version installed on this node belongs to a writer that went
        through its pre-commit phase here; the writer's coordinator announces
        the external commit with :class:`ExternalDone`, so "not yet announced"
        is the safe (possibly slightly stale) notion of *pending*.  Preloaded
        versions (``writer is None``) are never pending.  For a pending
        writer, the reader's coordinator is subscribed to the writer's
        external-commit notification right away so that by the time the
        reading transaction commits the notification has usually arrived.
        """
        if writer is None or writer in self._externally_done:
            return False
        targets = self._subscriptions_sent[writer]
        if reader_coordinator not in targets:
            targets.add(reader_coordinator)
            if writer.node == self.node_id:
                self._register_external_watcher(writer, reader_coordinator)
            else:
                self.send(
                    writer.node,
                    SubscribeExternal(txn_id=writer, target=reader_coordinator),
                )
        return True

    def _covered(self, vc: VectorClock, reader_vc: VectorClock, has_read) -> bool:
        """True when the reader's bound admits ``vc`` on every read coordinate.

        A covered writer must *not* be excluded from the reader's snapshot:
        the reader's earlier reads were served under a bound that admits it
        (it may even have observed the writer's version of another key), so
        the reader is serialized after the writer and excluding it here would
        fracture the reader's snapshot — and deadlock the reader's
        external-commit dependency wait against the writer's pre-commit wait.
        """
        if not any(has_read):
            return False
        return all(not flag or vc[index] <= reader_vc[index] for index, flag in enumerate(has_read))

    def _excluded_vcs(
        self, key: object, reader_vc: VectorClock, has_read, force_exclude=frozenset()
    ) -> Set[VectorClock]:
        """Commit clocks of writers the reader must not observe (ExcludedSet).

        A version above the reader's bound whose writer has neither
        externally committed (as far as this node knows) nor is covered by
        the reader's bound is excluded: the reader is serialized before that
        writer, and its snapshot-queue entry (inserted below the writer's
        snapshot) delays the writer's client response while the reader is
        outstanding.  Writers in ``force_exclude`` — ambiguous-zone writers
        whose client answer was just gated behind this reader — are excluded
        unconditionally: observing a gated writer would deadlock the
        observation's dependency wait against the gate.
        """
        i = self.node_id
        bound = reader_vc[i]
        excluded: Set[VectorClock] = set()
        done = self._externally_done
        watermark = self._done_local_watermark
        for version in self.store.chain(key).newest_to_oldest():
            vc = version.vc
            if vc[i] <= bound:
                break
            writer = version.writer
            if writer is None or writer in done:
                continue
            if writer in force_exclude:
                excluded.add(vc)
                continue
            if vc[i] <= watermark:
                # Excluding this writer would cap the reader's bound below an
                # already-done writer's local value; the ambiguous-zone wait
                # handles it instead (see _ambiguous_writers).
                continue
            if not self._covered(vc, reader_vc, has_read):
                excluded.add(vc)
        return excluded

    def _ambiguous_writers(
        self, key: object, reader_vc: VectorClock, has_read
    ) -> List[Tuple[TransactionId, int]]:
        """Writers above the reader's bound in the "ambiguous zone".

        Such a writer is internally committed here, has already passed its
        local pre-commit wait for ``key`` (its snapshot-queue entry is gone,
        so a reader entry could no longer delay its client response), but is
        not yet known to be externally committed.  Excluding it outright
        would serialize the reader before a writer that may answer its
        client first.  Returns ``(writer, local clock value)`` pairs (the
        local value is the writer's ``xactVN`` here, used to decide whether
        exclusion or observation handles it).
        """
        i = self.node_id
        bound = reader_vc[i]
        done = self._externally_done
        watermark = self._done_local_watermark
        squeue = self.store.squeue(key)
        ambiguous: List[Tuple[TransactionId, int]] = []
        for version in self.store.chain(key).newest_to_oldest():
            vc = version.vc
            if vc[i] <= bound:
                break
            writer = version.writer
            if writer is None or writer in done:
                continue
            if self._covered(vc, reader_vc, has_read):
                continue
            if vc[i] > watermark and squeue.has_writer(writer):
                # Still locally gated and above every done writer's local
                # value: plain exclusion is coherent (and the reader's queue
                # entry will delay the writer's client response).
                continue
            ambiguous.append((writer, vc[i]))
        return ambiguous

    def _resolve_ambiguous_writers(
        self,
        message: ReadRequest,
        key: object,
        reader_vc: VectorClock,
        has_read,
        gate_all: bool = False,
    ):
        """Bounded wait, then *definitive* resolution of ambiguous writers.

        The wait is bounded (``external_done_wait_us``) so that circular
        read-versus-pre-commit wait patterns cannot stall the read; in the
        common case the writer's ExternalDone notification arrives within a
        round-trip or two and the wait ends early.

        On expiry the reader no longer excludes blindly.  A notification
        delayed past the bound (fail-free) or swallowed by a crash (fault
        mode) used to make the fallback exclusion serialize the reader
        *before* a writer whose client was already answered — a genuine
        external-consistency violation (the seed-17 regression).  Instead
        the reader asks each ambiguous writer's coordinator for a definitive
        status (:class:`ExternalStatusQuery`): *done* writers stop gating,
        and a writer confirmed still in flight is excluded only after its
        coordinator *gated its client answer* behind this reader — the
        excluded writer then answers after the reader finishes (or
        restarts), exactly the ordering its snapshot-queue entry would have
        enforced, so contradictory serialization decisions at different
        nodes can at worst deadlock (and the dependency-wait breaker then
        restarts a reader) but never commit.  An unreachable coordinator
        (fault mode) keeps the reader waiting — trading liveness (visible
        in the availability metrics), never safety.

        Returns ``(gated, stale)``: the writers gated on the reader's
        behalf (the coordinator must release them when the reader
        finishes), and whether the read must be refused because a gate was
        refused (the reader was already withdrawn elsewhere).
        """
        reader = message.txn_id
        gated_total: Set[TransactionId] = set()
        # Ambiguous writers already handled: gated (they will be excluded)
        # or confirmed in flight below the done-watermark (they will be
        # observed with a dependency wait — gating those too would deadlock
        # the observation wait against the gate).
        resolved: Set[TransactionId] = set()
        deadline = None
        while True:
            ambiguous = self._ambiguous_writers(key, reader_vc, has_read)
            pending = [
                (writer, local)
                for writer, local in ambiguous
                if writer not in resolved
            ]
            if not pending:
                # Every ambiguous writer is done, gated, or observed — and
                # this evaluation is synchronous with the caller's exclusion
                # computation, so no unresolved writer can slip in between.
                if resolved:
                    self.counters["ambiguous_wait_timeouts"] += 1
                return gated_total, False
            if deadline is None:
                deadline = self.sim.now + self.config.timeouts.external_done_wait_us
            remaining = deadline - self.sim.now
            if remaining <= 0:
                watermark = self._done_local_watermark
                gate_writers = {
                    writer
                    for writer, local in pending
                    if gate_all or local > watermark
                }
                confirmed, gated, refused = yield from self._query_external_status(
                    [writer for writer, _local in pending],
                    reader=reader,
                    gate_writers=gate_writers,
                )
                gated_total |= gated
                resolved |= gated
                resolved |= confirmed - gate_writers
                if refused:
                    # A coordinator declined to gate: this reader's Remove
                    # already passed through it (the transaction was
                    # withdrawn elsewhere) — refuse the read.
                    return gated_total, True
                # Loop: writers that became ambiguous during the query
                # round-trip must be resolved too before the exclusion set
                # is computed, or they would be excluded without a gate.
                deadline = None
                continue
            self.counters["ambiguous_waits"] += 1
            tracer = self.sim.tracer
            if tracer is not None:
                wait_start = self.sim.now
                blocked_on = sorted(writer for writer, _local in pending)
            events = [
                self.external_done_event(writer) for writer, _local in pending
            ]
            events.append(self.sim.timeout(remaining))
            yield self.sim.any_of(events)
            if tracer is not None:
                tracer.span(
                    "wait.ambiguous",
                    wait_start,
                    txn=reader,
                    node=self.node_id,
                    link=blocked_on,
                    args={
                        "key": str(key),
                        "outcome": "expired" if self.sim.now >= deadline else "notified",
                    },
                )

    def _query_external_status(self, writers, reader=None, gate_writers=frozenset()):
        """Resolve writers' fates definitively at their coordinators.

        Marks writers reported (or locally known) as done/torn-down in
        ``_externally_done``.  Writers in ``gate_writers`` additionally get
        their client answer gated behind ``reader`` when confirmed in
        flight.  Returns ``(confirmed_pending, gated, refused)``: writers
        confirmed still in flight, the subset successfully gated, and the
        subset whose gate was refused (the reader is already withdrawn at
        that coordinator).  In a fail-free run every query is answered in
        one round; queries to unreachable coordinators (fault mode) are
        re-sent every ``crash_resubscribe_us`` until answered — the
        generator simply does not terminate while every remaining
        coordinator is down.
        """
        confirmed_pending = set()
        gated = set()
        refused = set()
        outstanding: List[TransactionId] = []
        for writer in sorted(writers):
            if writer.node == self.node_id:
                meta = self.coordinated.get(writer)
                if meta is None or meta.phase in (
                    TransactionPhase.EXTERNALLY_COMMITTED,
                    TransactionPhase.ABORTED,
                ):
                    self._mark_externally_done(writer, self._done_time_of(writer))
                else:
                    confirmed_pending.add(writer)
                    if writer in gate_writers:
                        if self._register_answer_gate(writer, reader):
                            gated.add(writer)
                        else:
                            refused.add(writer)
            else:
                outstanding.append(writer)
        retry_us = self.config.timeouts.crash_resubscribe_us
        while outstanding:
            self.counters["external_status_queries"] += 1
            tracer = self.sim.tracer
            round_start = self.sim.now if tracer is not None else 0.0
            probes = [
                (
                    writer,
                    ExternalStatusQuery(
                        txn_id=writer,
                        reader=reader,
                        gate=writer in gate_writers,
                    ),
                )
                for writer in outstanding
            ]
            events = [
                (writer, message, self.request(writer.node, message))
                for writer, message in probes
            ]
            guard = self.sim.timeout(retry_us)
            yield self.sim.any_of([self.sim.all_of([event for _w, _m, event in events]), guard])
            next_round = []
            for writer, message, event in events:
                if event.triggered and event.ok:
                    reply: ExternalStatusReply = event.value
                    if reply.done:
                        self._mark_externally_done(writer, reply.done_time)
                    else:
                        confirmed_pending.add(writer)
                        if writer in gate_writers:
                            if reply.gated:
                                gated.add(writer)
                            else:
                                refused.add(writer)
                else:
                    # Unanswered (coordinator down, or reply still in
                    # flight): retire the stale correlation entry and retry.
                    self._pending_replies.pop(message.msg_id, None)
                    next_round.append(writer)
            if tracer is not None:
                # A round that the resubscribe guard timed out (coordinator
                # down or reply lost) is the stall signature ROADMAP.md calls
                # out: the reader waits out the guard timer instead of being
                # re-driven on the coordinator's restart.
                tracer.span(
                    "wait.ambiguous_guard" if next_round else "wait.external_status",
                    round_start,
                    txn=reader,
                    node=self.node_id,
                    link=sorted(writer for writer, _m, _e in events),
                    args={"outcome": "guard-timeout" if next_round else "answered"},
                )
            outstanding = next_round
        return confirmed_pending, gated, refused

    def on_external_status_query(self, message: ExternalStatusQuery) -> None:
        """Answer a definitive-status probe for a transaction of ours.

        ``done`` serves the reader-path ambiguous-zone and dependency waits.
        The decision fields serve restarted participants resolving in-doubt
        redo records: the recorded decision is *commit* once the vote round
        succeeded (``internal_commit_time`` set — the same convention the
        2PC-baseline recovery uses; the crash teardown flips the phase to
        ABORTED but cannot un-decide a sent decision), *abort* when the
        transaction aborted before a decision (or is unknown: presumed
        abort), and *undecided* otherwise.
        """
        meta = self.coordinated.get(message.txn_id)
        if meta is None:
            self.respond(
                message,
                ExternalStatusReply(txn_id=message.txn_id, done=True, outcome=False),
            )
            return
        done = meta.phase in (
            TransactionPhase.EXTERNALLY_COMMITTED,
            TransactionPhase.ABORTED,
        )
        done_time = self._done_time_of(message.txn_id)
        gated = False
        if message.gate and not done:
            gated = self._register_answer_gate(message.txn_id, message.reader)
        if meta.internal_commit_time is not None:
            outcome = True
            commit_vc = meta.commit_vc
            propagated = self._propagated_for_decide(meta)
        elif meta.phase is TransactionPhase.ABORTED:
            outcome, commit_vc, propagated = False, None, ()
        else:
            outcome, commit_vc, propagated = None, None, ()
        self.respond(
            message,
            ExternalStatusReply(
                txn_id=message.txn_id,
                done=done,
                done_time=done_time,
                gated=gated,
                outcome=outcome,
                commit_vc=commit_vc,
                propagated=propagated,
            ),
        )

    # ------------------------------------------------------------------
    # Answer gates (ordered external-commit resolution)
    # ------------------------------------------------------------------
    def _register_answer_gate(self, writer: TransactionId, reader: Optional[TransactionId]) -> bool:
        """Gate ``writer``'s client answer behind ``reader``.

        Refused (returns False) when the reader's Remove already passed
        through this node — the reader was withdrawn elsewhere and could
        never release the gate.

        Release coverage: fail-free, replies are never dropped, so the
        reader's coordinator always learns the gate (``ReadReturn.gated``)
        and releases it on finish/restart (ReleaseGate), with
        ``_cleanup_losing_replies`` covering replicas that lost the
        fastest-answer race.  In fault mode a gate can be orphaned from the
        coordinator's view (a retried read wave drops the late reply that
        carried it), but fault-mode Removes are *broadcast to every node*,
        and ``on_remove`` releases all of a reader's gates — so every
        reader that finishes, restarts, or is torn down by crash recovery
        still releases, and only a coordinator that never restarts can pin
        a gate (the documented crash-forever liveness trade).
        """
        if reader is None or reader in self._removed_readers:
            return False
        self._answer_gates.setdefault(writer, set()).add(reader)
        self._gates_by_reader.setdefault(reader, set()).add(writer)
        self.counters["answer_gates_registered"] += 1
        return True

    def _release_answer_gates(self, reader: TransactionId, writers=None) -> None:
        """Release ``reader``'s gates (all of them, or just ``writers``)."""
        held = self._gates_by_reader.get(reader)
        if not held:
            return
        targets = sorted(held) if writers is None else sorted(set(writers) & held)
        for writer in targets:
            held.discard(writer)
            gates = self._answer_gates.get(writer)
            if gates is None:
                continue
            gates.discard(reader)
            if not gates:
                del self._answer_gates[writer]
                event = self._answer_gate_events.pop(writer, None)
                if event is not None and not event.triggered:
                    event.succeed()
        if not held:
            self._gates_by_reader.pop(reader, None)

    def on_release_gate(self, message: ReleaseGate) -> None:
        """Release the sender transaction's answer gates on listed writers."""
        self._release_answer_gates(message.txn_id, message.writers)

    def _wait_answer_gates(self, txn_id: TransactionId):
        """Hold a writer's client answer until its answer gates clear.

        Every gating reader finishes or restarts in bounded time (the
        dependency-wait breaker guarantees it), so the wait always
        resolves; registrations can race in while waiting, hence the loop.
        """
        while self._answer_gates.get(txn_id):
            self.counters["answer_gate_waits"] += 1
            event = self.sim.event(name=f"answer-gates:{txn_id}")
            self._answer_gate_events[txn_id] = event
            yield event

    def _resolve_in_doubt(self, txn_id: TransactionId):
        """Restart recovery: learn the fate of a voted-but-undecided record.

        The Decide may have been lost while this node was down (or dropped
        by a partition); without resolution the rebuilt *pending* commit-
        queue entry would block every later install on this node.  The
        coordinator is asked for its recorded decision (re-sent until
        answered — a coordinator that is itself down answers after its own
        restart); a decision still pending at the coordinator resolves
        through the normal Decide, which reaches this node now that it is
        back up.
        """
        reply: ExternalStatusReply = yield from self.reliable_request(
            txn_id.node, lambda: ExternalStatusQuery(txn_id=txn_id)
        )
        record = self.redo_log.find(txn_id)
        if record is None or record.decided or txn_id not in self._prepared:
            return  # resolved by a Decide/PrecommitQuery that raced the reply
        if reply.outcome is None:
            return  # not decided yet: the normal Decide will arrive
        self.counters["in_doubt_resolved"] += 1
        self._apply_decide(
            Decide(
                txn_id=txn_id,
                commit_vc=reply.commit_vc if reply.outcome else record.vc,
                outcome=reply.outcome,
                propagated=reply.propagated,
            )
        )

    def _select_version(
        self,
        key: object,
        has_read: List[bool],
        max_vc: VectorClock,
        excluded_vcs: Set[VectorClock],
        check_stale: bool = False,
    ):
        """Newest version within the visibility bound, plus an rt-staleness flag.

        Returns ``(version, rt_stale)``.  ``rt_stale`` is True when a version
        the bound rejects belongs to a writer whose client was *already
        answered* (a recorded external-commit timestamp, carried by
        ExternalDone).  Missing such a version would serialize the reader
        before a writer that answers first — an exclusion edge with no
        answer-order gate behind it, which is exactly the ingredient that
        lets contradictory serialization decisions at different nodes commit
        (the paper's Figure 2 cycle).  Serializing the reader after the
        writer is impossible under its frozen coordinates, so the reader
        must restart with a fresh snapshot.  Pending (excluded) writers are
        handled by the exclusion/gate machinery, and torn-down writers
        (``done`` without a timestamp) never answered anyone and may be
        missed freely.
        """
        i = self.node_id
        chain = self.store.chain(key)
        rt_stale = False
        done = self._externally_done
        for version in chain.newest_to_oldest():
            vc = version.vc
            excluded = vc in excluded_vcs and vc[i] > max_vc[i]
            out_of_bound = vc[i] > max_vc[i]
            if not out_of_bound:
                for w, flag in enumerate(has_read):
                    if flag and vc[w] > max_vc[w]:
                        out_of_bound = True
                        break
            if not excluded and not out_of_bound:
                return version, rt_stale
            if not excluded and check_stale and version.writer is not None:
                if done.get(version.writer) is not None:
                    rt_stale = True
        # The preloaded version zero is visible to everyone; reaching this
        # point means the key was never preloaded on this node.
        raise KeyError(f"node {self.node_id} has no visible version of {key!r}")

    def _insert_reader(self, key: object, txn_id: TransactionId, snapshot: int) -> None:
        if txn_id in self._removed_readers:
            return
        self.store.squeue(key).insert(SQueueEntry(txn_id, snapshot, READ_KIND))
        self._reader_keys[txn_id].add(key)

    def _starvation_backoff(self, key: object, squeue, txn_id=None):
        """Exponential back-off of read-only reads on starving keys."""
        timeouts = self.config.timeouts
        age = squeue.oldest_writer_age(self.sim.now)
        if age is not None and age > timeouts.starvation_threshold_us:
            level = min(self._backoff_level[key], 6)
            delay = min(timeouts.backoff_initial_us * (2**level), timeouts.backoff_max_us)
            self._backoff_level[key] += 1
            self.counters["starvation_backoffs"] += 1
            tracer = self.sim.tracer
            backoff_start = self.sim.now if tracer is not None else 0.0
            yield self.sim.timeout(delay)
            if tracer is not None:
                tracer.span(
                    "wait.backoff",
                    backoff_start,
                    txn=txn_id,
                    node=self.node_id,
                    link=sorted(
                        {entry.txn_id for entry in squeue.writers() if entry.txn_id != txn_id}
                    ),
                    args={"key": str(key), "level": level},
                )
        else:
            self._backoff_level[key] = 0
        return None

    # ------------------------------------------------------------------
    # Prepare / Decide — Algorithm 2
    # ------------------------------------------------------------------
    def on_prepare(self, message: Prepare):
        """2PC prepare: lock, validate, vote (runs as a process)."""
        txn_id = message.txn_id
        service = self.service
        local_read_versions = tuple(
            (k, vc) for k, vc in message.read_versions if self.is_replica_of(k)
        )
        local_reads = tuple(k for k, _vc in local_read_versions)
        local_writes = tuple((k, v) for k, v in message.write_items if self.is_replica_of(k))
        write_keys = tuple(k for k, _v in local_writes)

        yield self.cpu(service.lock_op_us * max(1, len(local_reads) + len(write_keys)))
        locked = yield from self.locks.acquire_all(
            txn_id,
            exclusive_keys=write_keys,
            shared_keys=local_reads,
            timeout_us=self.config.timeouts.lock_timeout_us,
        )

        outcome = locked
        if locked:
            yield self.cpu(service.validate_key_us * max(1, len(local_reads)))
            outcome = self._validate(local_read_versions)

        if not outcome:
            if locked:
                self.locks.release(txn_id, list(write_keys) + list(local_reads))
            self.counters["prepare_rejects"] += 1
            self.respond(message, Vote(txn_id=txn_id, vc=message.vc, success=False))
            return

        is_write_replica = bool(local_writes)
        if is_write_replica:
            # Lines 8-11: propose NodeVC with the local entry incremented and
            # enqueue the transaction as pending.  The redo record is
            # force-written before the vote leaves the node, so a crash
            # between vote and internal commit can no longer lose the queue
            # entry and the pending writes (the in-doubt stall).
            self.node_vc = self.node_vc.increment(self.node_id)
            prep_vc = self.node_vc
            self.commit_queue.put(txn_id, prep_vc)
            self.redo_log.record_vote(txn_id, prep_vc, local_writes, local_reads)
        else:
            prep_vc = self.nlog.most_recent_vc

        self._prepared[txn_id] = _PreparedState(local_reads, local_writes, is_write_replica)
        self._pending_writes[txn_id] = local_writes
        self.counters["prepares"] += 1
        self.respond(message, Vote(txn_id=txn_id, vc=prep_vc, success=True))

        # A decision that raced ahead of this prepare is applied now.
        early = self._decided_early.pop(txn_id, None)
        if early is not None:
            self._apply_decide(early)

    def _validate(self, read_versions) -> bool:
        """Algorithm 1 lines 27-33: reject overwritten read keys.

        The pseudo-code compares the latest version against ``T.VC[i]``; the
        text states the intent — "abort if some read key has been overwritten
        meanwhile" — so the check compares the latest local version against
        the version the transaction actually read (the two coincide when the
        read was served by this replica, and the version-based form also
        rejects stale reads served by a lagging replica).
        """
        i = self.node_id
        for key, read_vc in read_versions:
            chain = self.store.chain(key)
            if len(chain) == 0:
                continue
            if chain.latest.vc[i] > read_vc[i]:
                return False
        return True

    def on_decide(self, message: Decide) -> None:
        """2PC decision (Algorithm 2 lines 16-28)."""
        if message.txn_id not in self._prepared:
            # Prepare still in flight (possible with prioritized queues):
            # stash the decision and apply it right after the vote.
            self._decided_early[message.txn_id] = message
            return
        self._apply_decide(message)

    def _apply_decide(self, message: Decide) -> None:
        txn_id = message.txn_id
        state = self._prepared.get(txn_id)
        if state is None:  # pragma: no cover - defensive
            return
        if message.outcome:
            self.node_vc = self.node_vc.merge(message.commit_vc)
            if state.is_write_replica:
                self._pending_propagated[txn_id] = message.propagated
                self.redo_log.record_decision(txn_id, message.commit_vc, message.propagated)
                self.commit_queue.update(txn_id, message.commit_vc)
            else:
                # Read-only participants are done once the decision arrives.
                self.locks.release(txn_id, state.read_keys)
                del self._prepared[txn_id]
                self._pending_writes.pop(txn_id, None)
        else:
            self.commit_queue.remove(txn_id)
            self.redo_log.discard(txn_id)
            self.locks.release(txn_id, [k for k, _v in state.write_items] + list(state.read_keys))
            del self._prepared[txn_id]
            self._pending_writes.pop(txn_id, None)
            self.counters["participant_aborts"] += 1
        self._drain_commit_queue()

    # ------------------------------------------------------------------
    # Commit-queue head processing + pre-commit (Algorithms 2 l.29-36, 3, 4)
    # ------------------------------------------------------------------
    def _drain_commit_queue(self) -> None:
        """Apply every ready transaction standing at the commit-queue head."""
        while self.commit_queue.head_is_ready():
            entry = self.commit_queue.head()
            self._apply_internal_commit(entry.txn_id, entry.vc)

    def _apply_internal_commit(self, txn_id: TransactionId, commit_vc: VectorClock) -> None:
        state = self._prepared.pop(txn_id, None)
        write_items = self._pending_writes.pop(txn_id, ())
        propagated = self._pending_propagated.pop(txn_id, ())
        write_keys = tuple(k for k, _v in write_items)

        for key, value in write_items:
            self.store.install(key, value, commit_vc, writer=txn_id)
        if write_items:
            self._applied_local_value[txn_id] = commit_vc[self.node_id]
        self.nlog.append(
            NLogEntry(
                txn_id=txn_id,
                vc=commit_vc,
                write_keys=write_keys,
                commit_time=self.sim.now,
            )
        )
        self.commit_queue.remove(txn_id)
        # From here the NLog entry is the durable truth; retire the redo
        # record (PrecommitQuery replays from the log).
        self.redo_log.discard(txn_id)
        if state is not None:
            self.locks.release(txn_id, list(write_keys) + list(state.read_keys))
        self.counters["internal_commits"] += 1

        # Algorithm 3: enter the pre-commit phase for the local written keys.
        # spawn_process (not sim.process) so the pre-commit dies with the
        # node under the fault plane's crash epoch.
        self.spawn_process(
            self._pre_commit(txn_id, commit_vc, write_keys, propagated),
            name=f"precommit:{txn_id}@{self.node_id}",
        )

    def _pre_commit(self, txn_id, commit_vc, write_keys, propagated):
        """Algorithms 3 and 4: snapshot-queue insertion, wait, ack."""
        i = self.node_id
        snapshot = commit_vc[i]
        coordinator = txn_id.node

        for key in write_keys:
            squeue = self.store.squeue(key)
            squeue.insert(SQueueEntry(txn_id, snapshot, WRITE_KIND))
            for entry in propagated:
                if entry.txn_id in self._removed_readers:
                    continue
                squeue.insert(SQueueEntry(entry.txn_id, entry.snapshot, READ_KIND, only_for=txn_id))
                self._reader_keys[entry.txn_id].add(key)
            yield self.cpu(self.service.queue_op_us)

        # Algorithm 4: wait, per written key, until no entry with a smaller
        # insertion-snapshot remains in the queue.  The pattern in the
        # pseudo-code (`<T'.id, T'.sid, −>`) covers readers *and* writers, so
        # conflicting update transactions hand their clients the responses in
        # serialization order; the prose emphasises the read-only case because
        # that is the one that can hold a writer for a long time.
        for key in write_keys:
            squeue = self.store.squeue(key)
            # Loop, don't trust a fired condition: between the condition
            # firing and this process resuming, a read handler can insert a
            # fresh reader entry below the snapshot — proceeding then would
            # answer the client while a reader serialized before us is still
            # outstanding (an ungated exclusion, i.e. a real external-
            # consistency hole, not just wasted latency).
            while squeue.has_entry_below(snapshot, exclude_txn=txn_id):
                self.counters["precommit_waits"] += 1
                tracer = self.sim.tracer
                if tracer is not None:
                    wait_start = self.sim.now
                    blocked_on = sorted(
                        {
                            entry.txn_id
                            for entry in squeue.entries()
                            if entry.insertion_snapshot < snapshot and entry.txn_id != txn_id
                        }
                    )
                yield self.sim.condition(
                    lambda sq=squeue: not sq.has_entry_below(snapshot, exclude_txn=txn_id),
                    squeue.signal,
                    name=f"precommit-wait:{txn_id}",
                )
                if tracer is not None:
                    tracer.span(
                        "wait.precommit_queue",
                        wait_start,
                        txn=txn_id,
                        node=i,
                        link=blocked_on,
                        args={"key": str(key)},
                    )
            squeue.remove(txn_id)

        self.counters["external_acks_sent"] += 1
        self.send(coordinator, ExternalAck(txn_id=txn_id, snapshot=snapshot))

    def on_precommit_query(self, message: PrecommitQuery) -> None:
        """Fault-plane recovery: replay a pre-commit whose ack was lost.

        If the transaction internally committed here (durable NLog entry),
        its pre-commit is replayed from the log — re-inserting the write
        entries, waiting out any genuinely older snapshot-queue entries and
        re-sending the ExternalAck; every step is idempotent (duplicate
        queue insertions are suppressed, duplicate removes and acks are
        no-ops).

        If the transaction is *not* in the log the Decide itself was lost in
        the crash.  When the node holds a durable redo record of its vote
        (the voted-then-crashed case), the query's ``commit_vc`` acts as the
        decision retransmission: the commit queue entry — rebuilt as
        *pending* by the restart replay — is finalized and drained exactly
        as the original Decide would have, closing SSS's remaining in-doubt
        stall.  With neither log nor redo record the query is ignored (the
        prepare itself never happened here).
        """
        txn_id = message.txn_id
        entry = self.nlog.find(txn_id)
        if entry is not None:
            self.counters["precommit_replays"] += 1
            self.spawn_process(
                self._pre_commit(entry.txn_id, entry.vc, entry.write_keys, ()),
                name=f"precommit-replay:{entry.txn_id}@{self.node_id}",
            )
            return
        if txn_id in self.redo_log and message.commit_vc is not None:
            self.counters["redo_decides"] += 1
            self._apply_decide(
                Decide(
                    txn_id=txn_id,
                    commit_vc=message.commit_vc,
                    outcome=True,
                    propagated=message.propagated,
                )
            )
            return
        self.counters["precommit_query_misses"] += 1

    # ------------------------------------------------------------------
    # External-commit dependency tracking
    # ------------------------------------------------------------------
    def on_external_done(self, message: ExternalDone) -> None:
        """Record that a writer's client has been answered (external commit)."""
        self._mark_externally_done(message.txn_id, message.done_time)

    def _done_time_of(self, txn_id: TransactionId) -> Optional[float]:
        """External-commit timestamp of a transaction this node coordinated.

        ``None`` for transactions that never answered a client (aborts and
        crash teardowns): they impose no real-time order on readers.
        """
        meta = self.coordinated.get(txn_id)
        if meta is None or meta.phase is not TransactionPhase.EXTERNALLY_COMMITTED:
            return None
        return meta.external_commit_time

    def _mark_externally_done(
        self, txn_id: TransactionId, done_time: Optional[float] = None
    ) -> None:
        existing = self._externally_done.get(txn_id)
        if existing is None:
            self._externally_done[txn_id] = done_time
        self._subscriptions_sent.pop(txn_id, None)
        local_value = self._applied_local_value.pop(txn_id, None)
        if local_value is not None and local_value > self._done_local_watermark:
            self._done_local_watermark = local_value
        event = self._ext_done_events.pop(txn_id, None)
        if event is not None and not event.triggered:
            event.succeed()

    def external_done_event(self, txn_id: TransactionId):
        """Event firing when ``txn_id``'s ExternalDone notification arrives."""
        event = self._ext_done_events.get(txn_id)
        if event is None:
            event = self.sim.event(name=f"ext-done:{txn_id}")
            self._ext_done_events[txn_id] = event
        return event

    def on_subscribe_external(self, message: SubscribeExternal) -> None:
        """Register (or immediately serve) an external-commit subscription."""
        self._register_external_watcher(message.txn_id, message.target)

    def _register_external_watcher(self, txn_id: TransactionId, target: NodeId) -> None:
        meta = self.coordinated.get(txn_id)
        if meta is None or meta.phase in (
            TransactionPhase.EXTERNALLY_COMMITTED,
            TransactionPhase.ABORTED,
        ):
            self._send_external_done(txn_id, target)
            return
        self._external_watchers[txn_id].add(target)

    def _send_external_done(self, txn_id: TransactionId, target: NodeId) -> None:
        done_time = self._done_time_of(txn_id)
        if target == self.node_id:
            self._mark_externally_done(txn_id, done_time)
        else:
            self.send(target, ExternalDone(txn_id=txn_id, done_time=done_time))

    def _external_commit_completed(self, txn_id: TransactionId, write_replicas) -> None:
        """Fan out the external-commit announcement of a coordinated writer."""
        done_time = self._done_time_of(txn_id)
        self._mark_externally_done(txn_id, done_time)
        targets = set(write_replicas) | self._external_watchers.pop(txn_id, set())
        targets.discard(self.node_id)
        for target in sorted(targets):
            self.send(target, ExternalDone(txn_id=txn_id, done_time=done_time))

    # ------------------------------------------------------------------
    # Remove handling and forwarding
    # ------------------------------------------------------------------
    def on_remove(self, message: Remove) -> None:
        """Delete a returned read-only transaction from local snapshot queues."""
        txn_id = message.txn_id
        if not message.mark_returned:
            # Narrow cleanup of a lost fastest-answer race: drop only the
            # listed keys' entries, without treating the reader as finished.
            for key in message.keys:
                self.store.squeue(key).remove(txn_id)
                reader_keys = self._reader_keys.get(txn_id)
                if reader_keys is not None:
                    reader_keys.discard(key)
            self.counters["removes_handled"] += 1
            return
        self._removed_readers.add(txn_id)
        # A finished (or withdrawn/crashed) reader releases any answer gates
        # it holds on writers this node coordinates.
        self._release_answer_gates(txn_id)
        keys = set(message.keys) if message.keys else set()
        keys |= self._reader_keys.pop(txn_id, set())
        # Sorted for determinism: set iteration order over string keys varies
        # with the interpreter's hash seed, and removal order is visible
        # through signal notifications.
        for key in sorted(keys, key=repr):
            if self.store.has_key(key) or key in self.store.squeues():
                self.store.squeue(key).remove(txn_id)
        self.counters["removes_handled"] += 1

        # Forward along the anti-dependency propagation chain: every node we
        # shipped this reader's entry to must clean up as well.
        for destination in sorted(self._forward_map.pop(txn_id, set())):
            if destination != self.node_id:
                self.send(destination, Remove(txn_id=txn_id, keys=()))

    def note_propagation(self, reader: TransactionId, destination: NodeId) -> None:
        """Record that ``reader``'s queue entry was shipped to ``destination``."""
        if destination == self.node_id:
            return
        if reader in self._removed_readers:
            # The reader already returned to its client; its entries are being
            # (or have been) cleaned up, so there is nothing to forward later.
            return
        self._forward_map[reader].add(destination)

    # ------------------------------------------------------------------
    # Fault plane
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Drop everything a crash-stopped SSS process loses.

        Durable state — the multi-version store, the NLog, ``node_vc``
        (modelled as persisted with the commit log, so a restarted node
        never re-proposes a local clock value it already handed out) and the
        participant redo log (force-written before every yes-vote) —
        survives untouched.  Everything else is volatile: 2PC participant
        buffers, the commit queue (rebuilt from the redo log on restart),
        lock and snapshot queues, and the external-commit notification
        caches.  Locks follow the textbook participant model: only the
        redo-logged (voted, undecided-or-unapplied) transactions' locks
        survive — they must keep blocking until the decision is re-learned,
        which is 2PC's in-doubt window.  The ``_externally_done`` cache is
        dropped *conservatively*: versions are re-gated until a fresh
        SubscribeExternal round-trip re-learns the writer's fate, trading
        post-restart latency for safety.
        """
        self._prepared.clear()
        self._decided_early.clear()
        self._pending_writes.clear()
        self._pending_propagated.clear()
        self._forward_map.clear()
        self._removed_readers.clear()
        self._reader_keys.clear()
        self._backoff_level.clear()
        self._externally_done.clear()
        self._done_local_watermark = -1
        self._applied_local_value.clear()
        # Fail coordinator-side waits so co-located clients are interrupted
        # (and reconnect) instead of parking forever on dead events.
        for txn_id in sorted(self._ack_waits):
            event, _remaining = self._ack_waits[txn_id]
            if not event.triggered:
                event.fail(NodeCrashedError(f"node {self.node_id} crashed"))
        self._ack_waits.clear()
        for txn_id in sorted(self._ext_done_events):
            event = self._ext_done_events[txn_id]
            if not event.triggered:
                event.fail(NodeCrashedError(f"node {self.node_id} crashed"))
        self._ext_done_events.clear()
        # Answer gates die with the coordinator: the gated writers are this
        # node's own (torn down by the crash), and waiting commit processes
        # are interrupted like any other in-flight wait.
        for txn_id in sorted(self._answer_gate_events):
            event = self._answer_gate_events[txn_id]
            if not event.triggered:
                event.fail(NodeCrashedError(f"node {self.node_id} crashed"))
        self._answer_gate_events.clear()
        self._answer_gates.clear()
        self._gates_by_reader.clear()
        self._external_watchers.clear()
        self._subscriptions_sent.clear()
        self.locks.reset_except(set(self.redo_log.txn_ids()))
        self.commit_queue.clear()
        for squeue in self.store.squeues().values():
            squeue.clear()

    def on_restart(self) -> None:
        """Replay durable state and run crash recovery after a restart.

        The store, the NLog and ``node_vc`` were never dropped; the
        external-commit cache refills through SubscribeExternal (this node
        now answers ExternalDone immediately for its torn-down writers), and
        the reset done-watermark merely re-enables the bounded
        ambiguous-zone wait for old versions.  What *must* be actively
        recovered is remote state pinned by transactions whose client died
        with the crash:

        * an update transaction that crashed **before its decision was
          sent** (``PREPARING``) left prepared locks and commit-queue
          entries at its participants — a decided abort is fanned out so
          they release (otherwise their commit-queue heads block forever:
          the classic 2PC in-doubt window);
        * a read-only transaction left snapshot-queue entries at the
          replicas of its read keys — ``Remove`` is fanned out exactly as a
          normal read-only completion would.

        Transactions that crashed after their decision went out need no
        fan-out: participants finish on their own, stray ExternalAcks are
        ignored, and gated readers resolve through re-subscription.

        Participant-side, the redo log is replayed first: every voted
        transaction that neither aborted nor reached the NLog gets its
        commit-queue entry and pending-writes buffer rebuilt (as *ready*
        when the decision had already arrived, else as *pending*, to be
        finalized by the original coordinator's PrecommitQuery
        retransmission), and the queue is drained so already-decided
        transactions apply and restart their pre-commit immediately.
        """
        for record in self.redo_log.records():
            txn_id = record.txn_id
            self.counters["redo_replays"] += 1
            self._prepared[txn_id] = _PreparedState(record.read_keys, record.write_items, True)
            self._pending_writes[txn_id] = record.write_items
            self.commit_queue.put(txn_id, record.vc)
            if record.decided:
                self._pending_propagated[txn_id] = record.propagated
                self.commit_queue.update(txn_id, record.vc)
        self._drain_commit_queue()
        for record in self.redo_log.records():
            if not record.decided:
                # The decision may have been lost with the crash; ask the
                # coordinator (see _resolve_in_doubt) or the pending head
                # would block this node's installs forever.
                self.spawn_process(
                    self._resolve_in_doubt(record.txn_id),
                    name=f"in-doubt:{record.txn_id}@{self.node_id}",
                )
        for txn_id in sorted(self.coordinated):
            meta = self.coordinated[txn_id]
            crash_phase = meta.crash_phase
            if crash_phase is None:
                continue
            meta.crash_phase = None
            self.counters["crash_recoveries"] += 1
            if crash_phase is TransactionPhase.PREPARING:
                participants = set(
                    self.placement.replicas_of(list(meta.read_set) + list(meta.write_set))
                )
                participants.discard(self.node_id)
                for participant in sorted(participants):
                    self.send(
                        participant,
                        Decide(
                            txn_id=txn_id,
                            commit_vc=meta.vc,
                            outcome=False,
                            propagated=(),
                        ),
                    )
            elif meta.is_read_only:
                # Broadcast: anti-dependency propagation may have copied the
                # reader's entries to nodes beyond its read keys' replicas,
                # and the forward chains that would reach them died with us.
                # The broadcast must not depend on the recorded read-set —
                # a read whose reply died with the crash left entries at the
                # serving replicas while the read-set stayed empty; each
                # node's own reader-key index resolves the empty key list.
                by_replica: Dict[int, list] = {}
                for key in meta.read_set:
                    for replica in self.replicas(key):
                        by_replica.setdefault(replica, []).append(key)
                for node_id in range(self.config.n_nodes):
                    self.send(
                        node_id,
                        Remove(txn_id=txn_id, keys=tuple(by_replica.get(node_id, ()))),
                    )

    # ------------------------------------------------------------------
    # Introspection used by the harness and tests
    # ------------------------------------------------------------------
    def queued_writer_count(self) -> int:
        """Number of update transactions currently held in local squeues."""
        return sum(len(squeue.writers()) for squeue in self.store.squeues().values())

    def stats(self) -> Dict[str, int]:
        stats = dict(self.counters)
        stats["nlog_length"] = len(self.nlog)
        stats["commit_queue_length"] = len(self.commit_queue)
        stats["messages_handled"] = self.messages_handled
        stats["lock_timeouts"] = self.locks.timeout_count
        return stats
