"""The SSS concurrency control — the paper's primary contribution.

The package implements Algorithms 1-6 of the paper on top of the simulated
substrate:

* :mod:`repro.core.metadata` — per-transaction metadata (``T.VC``,
  ``T.hasRead``, read/write sets, ``PropagatedSet``, phase timestamps).
* :mod:`repro.core.messages` — the protocol's wire messages (ReadRequest /
  ReadReturn, Prepare / Vote / Decide, Ack, Remove).
* :mod:`repro.core.node` — :class:`SSSNode`, one protocol node: version
  selection for read-only transactions (Algorithm 6), 2PC participant logic
  (Algorithm 2), pre-commit / external-commit handling (Algorithms 3-4) and
  Remove propagation.
* :mod:`repro.core.coordinator` — client-side transaction execution at the
  coordinator (Algorithm 5 reads, Algorithm 1 commit).
* :mod:`repro.core.session` — the user-facing transaction handle.
* :mod:`repro.core.cluster` — :class:`SSSCluster`, the public facade that
  assembles a simulated cluster and runs transactions against it.
"""

from repro.core.cluster import SSSCluster
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.core.node import SSSNode
from repro.core.session import Session

__all__ = ["SSSCluster", "SSSNode", "Session", "TransactionMeta", "TransactionPhase"]
