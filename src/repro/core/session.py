"""User-facing transaction handle.

A :class:`Session` represents one client co-located with a node.  Its methods
mirror the paper's transaction model — ``begin``, ``read``, ``write``,
``commit``, ``abort`` — and are driven from inside a simulation process with
``yield from``::

    def workload(session):
        session.begin(read_only=False)
        balance = yield from session.read("account-1")
        session.write("account-1", balance + 10)
        committed = yield from session.commit()

The session enforces the state machine of a transaction (no operations after
commit, no writes in read-only transactions) and keeps the last transaction's
metadata available for inspection (latency, phase timestamps, read/write
sets), which the example programs and the harness rely on.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List, Optional

from repro.common.errors import (
    NodeCrashedError,
    SnapshotRestartError,
    TransactionStateError,
)
from repro.core.metadata import TransactionMeta, TransactionPhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import SSSNode

#: Test-only planted regression: setting this environment variable reverts
#: the coordinator-crash teardown guard in :meth:`Session._require_open`
#: (the fix for Walter's crash-window double-commit), restoring the historical
#: ``TransactionStateError`` crash.  It exists solely so the scenario
#: searcher's acceptance test can prove it rediscovers a real, once-shipped
#: bug from scratch; nothing outside tests may set it.
PLANTED_REGRESSION_ENV = "REPRO_SEARCH_PLANT_REQUIRE_OPEN_REGRESSION"


class Session:
    """A client session bound to one coordinator node."""

    def __init__(self, node: "SSSNode", client_index: int = 0):
        self.node = node
        self.client_index = client_index
        self.current: Optional[TransactionMeta] = None
        self.completed: List[TransactionMeta] = []
        self.keep_history = True

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    def begin(self, read_only: bool = False) -> TransactionMeta:
        """Start a new transaction coordinated by this session's node."""
        if self.current is not None:
            raise TransactionStateError("previous transaction still open; commit or abort it first")
        self.current = self.node.begin_transaction(read_only=read_only)
        return self.current

    def read(self, key: object):
        """Read ``key`` inside the open transaction (generator).

        If the session's node crash-stops mid-operation the transaction is
        abandoned (fault plane) and :class:`NodeCrashedError` propagates to
        the client, which may reconnect and begin a fresh transaction.

        A read refused as real-time stale raises
        :class:`SnapshotRestartError`: the transaction has already been
        withdrawn by the coordinator, and the caller should re-execute it
        from ``begin`` — the retry is the same logical client request, so
        read-only transactions still never abort.
        """
        meta = self._require_open()
        try:
            value = yield from self.node.txn_read(meta, key)
        except NodeCrashedError:
            self._abandon(meta)
            raise
        except SnapshotRestartError:
            # The coordinator already marked the withdrawal; just close the
            # session's handle so the caller can begin the retry.
            self._finish(meta)
            raise
        return value

    def write(self, key: object, value: object) -> None:
        """Buffer a write inside the open transaction."""
        meta = self._require_open()
        self.node.txn_write(meta, key, value)

    def commit(self):
        """Commit the open transaction; returns True on commit (generator).

        Raises :class:`SnapshotRestartError` when a read-only transaction is
        withdrawn by the wait-cycle breaker; re-execute it from ``begin``.
        """
        meta = self._require_open()
        try:
            committed = yield from self.node.txn_commit(meta)
        except NodeCrashedError:
            self._abandon(meta)
            raise
        except SnapshotRestartError:
            self._finish(meta)
            raise
        self._finish(meta)
        return committed

    def abort(self) -> None:
        """Abandon the open transaction without contacting other nodes.

        Only legal before ``commit``; buffered writes are dropped and any
        protocol-specific cleanup (e.g. SSS read-only transactions leaving
        snapshot-queue entries behind) is delegated to the node's
        ``txn_abort`` hook so that an abandoned transaction cannot block
        other transactions forever.
        """
        meta = self._require_open()
        self.node.txn_abort(meta)
        self._finish(meta)

    # ------------------------------------------------------------------
    @property
    def last(self) -> Optional[TransactionMeta]:
        """Metadata of the most recently finished transaction."""
        return self.completed[-1] if self.completed else None

    def _require_open(self) -> TransactionMeta:
        if self.current is None:
            raise TransactionStateError("no open transaction; call begin() first")
        meta = self.current
        if (
            meta.phase is TransactionPhase.ABORTED
            and meta.abort_reason == "coordinator-crash"
            and not os.environ.get(PLANTED_REGRESSION_ENV)
        ):
            # The coordinator crash-stopped and tore this transaction down
            # while the client process was suspended on a purely local step
            # (a CPU charge has no network event to fail, unlike a remote
            # request).  Surface the crash as the documented client-visible
            # outcome instead of letting the next operation run against a
            # dead transaction — Walter's local-replica reads hit exactly
            # this window and used to double-commit (TransactionStateError).
            self._finish(meta)
            raise NodeCrashedError(
                f"node {self.node_id} crashed while {meta.txn_id} was in flight"
            )
        return meta

    def _finish(self, meta: TransactionMeta) -> None:
        self.current = None
        if self.keep_history:
            self.completed.append(meta)
        else:  # keep only the latest to bound memory in long runs
            self.completed = [meta]

    def _abandon(self, meta: TransactionMeta) -> None:
        """Tear down a transaction interrupted by a node crash."""
        if meta.phase not in (
            TransactionPhase.ABORTED,
            TransactionPhase.EXTERNALLY_COMMITTED,
        ):
            meta.phase = TransactionPhase.ABORTED
            meta.abort_reason = "node-crash"
            meta.abort_time = self.node.sim.now
        self._finish(meta)
