"""Per-transaction metadata of the SSS protocol.

A transaction in SSS carries two vector clocks — ``T.VC`` (the visibility
bound, merged with every read reply) and ``T.hasRead`` (which nodes it has
already read from) — plus a private read-set and write-set and the
``PropagatedSet`` of read-only snapshot-queue entries observed through reads
of keys written by pre-committing transactions.

The metadata object also records the timestamps of the transaction's phase
transitions (begin, internal commit, external commit), which are the raw
material for the latency and latency-breakdown figures (Figures 4b and 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import NodeId, TransactionId


#: Abort reason marking an *externally invisible* restart of a read-only
#: transaction: its dependency wait sat on writers confirmed still in flight
#: past ``readonly_restart_wait_us`` (the 4-party wait-cycle breaker).  The
#: session layer re-executes the transaction with a fresh snapshot instead of
#: surfacing an abort, and the attempt is not recorded in the history — the
#: client observes one committed transaction, exactly once.
READONLY_RESTART_REASON = "readonly-snapshot-restart"


class TransactionPhase(enum.Enum):
    """Lifecycle phases of an SSS transaction (Section III-B)."""

    EXECUTING = "executing"
    PREPARING = "preparing"
    INTERNALLY_COMMITTED = "internally-committed"
    PRE_COMMIT = "pre-commit"
    EXTERNALLY_COMMITTED = "externally-committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class PropagatedEntry:
    """A read-only snapshot-queue entry carried along anti-dependency chains.

    ``snapshot`` is the insertion-snapshot the read-only transaction had when
    it was (originally) enqueued; the entry is re-inserted verbatim into the
    snapshot queues of the written keys of the transaction that observed it
    (Algorithm 3, lines 4-6).
    """

    txn_id: TransactionId
    snapshot: int


@dataclass
class ReadRecord:
    """One entry of the transaction's read-set."""

    key: object
    value: object
    version_vc: VectorClock
    writer: Optional[TransactionId]
    served_by: NodeId


@dataclass
class TransactionMeta:
    """All protocol state of one in-flight transaction."""

    txn_id: TransactionId
    coordinator: NodeId
    is_update: bool
    n_nodes: int
    vc: VectorClock = field(init=False)
    has_read: List[bool] = field(init=False)
    read_set: Dict[object, ReadRecord] = field(default_factory=dict)
    write_set: Dict[object, object] = field(default_factory=dict)
    propagated_set: Set[PropagatedEntry] = field(default_factory=set)
    pending_writers: Set[TransactionId] = field(default_factory=set)
    """Writers of observed versions not yet confirmed externally committed;
    this transaction's own external commit must wait for all of them."""
    gated_writers: Set[TransactionId] = field(default_factory=set)
    """Writers whose client answer was gated behind this (read-only)
    transaction during ambiguous-zone resolution; the gates are released
    when the transaction finishes or restarts."""
    phase: TransactionPhase = TransactionPhase.EXECUTING
    first_read_done: bool = False
    commit_vc: Optional[VectorClock] = None
    abort_reason: Optional[str] = None
    crash_phase: Optional[TransactionPhase] = None
    """Phase the transaction was in when its coordinator crashed, recorded so
    the restart recovery knows which remote state to release (fault plane)."""
    version_hints: Dict[object, float] = field(default_factory=dict)
    """Per written key, a value that sorts this transaction's version against
    other writers of the same key in installation order (protocol specific;
    SSS uses the transaction version number ``xactVN``)."""

    # Phase-transition timestamps (simulated microseconds).
    begin_time: float = 0.0
    prepare_time: Optional[float] = None
    internal_commit_time: Optional[float] = None
    external_commit_time: Optional[float] = None
    abort_time: Optional[float] = None

    def __post_init__(self) -> None:
        self.vc = VectorClock.zeros(self.n_nodes)
        self.has_read = [False] * self.n_nodes

    # ------------------------------------------------------------- helpers
    @property
    def is_read_only(self) -> bool:
        return not self.is_update

    def read_keys(self) -> Tuple[object, ...]:
        return tuple(self.read_set)

    def write_keys(self) -> Tuple[object, ...]:
        return tuple(self.write_set)

    def record_read(
        self,
        key: object,
        value: object,
        version_vc: VectorClock,
        writer: Optional[TransactionId],
        served_by: NodeId,
    ) -> None:
        """Add a key to the read-set (last read of a key wins)."""
        self.read_set[key] = ReadRecord(
            key=key,
            value=value,
            version_vc=version_vc,
            writer=writer,
            served_by=served_by,
        )

    def record_write(self, key: object, value: object) -> None:
        self.write_set[key] = value

    def merge_vc(self, other: VectorClock) -> None:
        """Entry-wise maximum merge of ``T.VC`` with a received clock."""
        self.vc = self.vc.merge(other)

    def mark_has_read(self, node: NodeId) -> None:
        self.has_read[node] = True

    def add_propagated(self, entries) -> None:
        for entry in entries:
            self.propagated_set.add(entry)

    # ------------------------------------------------------------- outcomes
    @property
    def committed(self) -> bool:
        return self.phase is TransactionPhase.EXTERNALLY_COMMITTED

    @property
    def aborted(self) -> bool:
        return self.phase is TransactionPhase.ABORTED

    def latency(self) -> Optional[float]:
        """Begin-to-external-commit latency, if the transaction committed."""
        if self.external_commit_time is None:
            return None
        return self.external_commit_time - self.begin_time

    def internal_latency(self) -> Optional[float]:
        """Begin-to-internal-commit latency (update transactions only)."""
        if self.internal_commit_time is None:
            return None
        return self.internal_commit_time - self.begin_time

    def precommit_wait(self) -> Optional[float]:
        """Time spent between internal and external commit (Figure 5)."""
        if self.internal_commit_time is None or self.external_commit_time is None:
            return None
        return self.external_commit_time - self.internal_commit_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "U" if self.is_update else "RO"
        return f"<Txn {self.txn_id} {kind} {self.phase.value}>"
