"""Client-side transaction execution at the coordinator node.

In SSS a client is co-located with a node; that node coordinates every
transaction the client starts.  :class:`CoordinatorMixin` adds the
coordinator role to :class:`repro.core.node.SSSNode`:

* :meth:`begin_transaction` — create the transaction metadata.
* :meth:`txn_read` — Algorithm 5: snapshot the local ``NLog.mostRecentVC`` on
  the first read, contact every replica of the key, take the fastest answer,
  merge the returned vector clock into ``T.VC``, mark ``hasRead`` and
  accumulate the propagated set.
* :meth:`txn_write` — buffer the write in the write-set (lazy update).
* :meth:`txn_commit` — Algorithm 1: read-only transactions reply to the
  client immediately and send ``Remove``; update transactions run 2PC
  (prepare, votes, decide), then wait for the ``ExternalAck`` of every write
  replica before the client is informed (the external commit).

All methods that involve waiting are generators intended to be driven with
``yield from`` inside a simulation process (see :class:`repro.core.session.Session`).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.errors import SnapshotRestartError, TransactionStateError
from repro.common.ids import TransactionId
from repro.core.messages import (
    Decide,
    ExternalAck,
    Prepare,
    PrecommitQuery,
    ReadRequest,
    ReadReturn,
    ReleaseGate,
    Remove,
    SubscribeExternal,
)
from repro.core.metadata import (
    READONLY_RESTART_REASON,
    TransactionMeta,
    TransactionPhase,
)
from repro.protocols.runtime import VoteCollector  # noqa: F401 - re-export
from repro.sim.events import Event


class CoordinatorMixin:
    """Coordinator-role methods mixed into :class:`repro.core.node.SSSNode`.

    The generic transaction lifecycle (``begin_transaction`` / ``txn_write``
    and the finish transitions) comes from
    :class:`repro.protocols.runtime.ProtocolRuntime`; this mixin adds only
    what is SSS-specific — Algorithm 5 reads, the Algorithm 1 commit with
    its external-commit dependency waits, and the read-only Remove cleanup.
    """

    def _init_coordinator_state(self) -> None:
        # External-commit bookkeeping: txn -> (event, nodes still to ack).
        self._ack_waits: Dict[TransactionId, Tuple["Event", Set[int]]] = {}

    def txn_read(self, meta: TransactionMeta, key: object):
        """Algorithm 5: read ``key`` on behalf of ``meta`` (generator)."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after commit/abort in {meta}")

        # Line 2-4: reads of keys in the write-set observe the buffered value.
        if key in meta.write_set:
            return meta.write_set[key]

        # Lines 5-7: the first read snapshots the local commit log.
        if not meta.first_read_done:
            meta.vc = self.nlog.most_recent_vc
            meta.first_read_done = True

        # Lines 8-10: contact every replica, use the fastest answer.  The
        # round retries in fault mode, so an rf=1 read against a crashed
        # replica resumes after the restart instead of stalling until drain.
        replicas = self.replicas(key)
        has_read = tuple(meta.has_read)
        reply, request_events = yield from self.fastest_round(
            replicas,
            lambda _replica: ReadRequest(
                txn_id=meta.txn_id,
                key=key,
                vc=meta.vc,
                has_read=has_read,
                is_update=meta.is_update,
            ),
            trace_txn=meta.txn_id,
        )
        if len(request_events) > 1 and not meta.is_update:
            # Replicas that lose the fastest-answer race still inserted a
            # snapshot-queue entry under *their* serialization decision,
            # which this transaction does not adopt; clean those entries
            # up as the losing replies arrive, or a stale entry could
            # gate an unrelated writer's external commit against this
            # reader's own external-commit dependency wait (deadlock).
            self._cleanup_losing_replies(meta.txn_id, key, request_events, reply)

        if reply.gated:
            # Writers whose client answer the serving replica gated behind
            # this transaction; released on finish or restart.
            meta.gated_writers.update(reply.gated)

        if reply.stale:
            # The serving replica refused the read: the transaction's frozen
            # visibility bound hides a writer that externally committed
            # before the transaction began (or a gate was refused), so no
            # snapshot completion can be externally consistent.  Withdraw and
            # restart under a fresh snapshot (externally invisible; see
            # SnapshotRestartError).
            self._restart_read_only(meta)
            raise SnapshotRestartError(meta.txn_id)

        served_by = reply.sender
        # Lines 11-14: merge visibility information and record the read.
        meta.mark_has_read(served_by)
        meta.merge_vc(reply.max_vc)
        meta.record_read(
            key=key,
            value=reply.value,
            version_vc=reply.version_vc,
            writer=reply.writer,
            served_by=served_by,
        )
        if reply.writer_pending and reply.writer != meta.txn_id:
            # External-commit dependency: this transaction's own client
            # response must wait for the observed writer's client response.
            meta.pending_writers.add(reply.writer)
        if reply.propagated:
            meta.add_propagated(reply.propagated)
            # Remember (on the serving node) where those reader entries have
            # been shipped so Remove messages can be forwarded later.  The
            # serving node is remote; it records the propagation when sending
            # the reply — see ReadReturn handling below in the node — but the
            # coordinator also records it for the Decide fan-out it will do.
        self.counters["client_reads"] += 1
        return reply.value

    def _cleanup_losing_replies(
        self, txn_id: TransactionId, key: object, request_events, winner: ReadReturn
    ) -> None:
        """Retract snapshot-queue entries left by losing read replicas.

        Answer gates a losing replica registered on the transaction's behalf
        are *adopted* into the transaction's release set, not released here:
        the winning replica may have gated the very same writer for the
        very same reader, and the coordinator's gate registry collapses
        those registrations into one entry — an early release would destroy
        the gate the adopted exclusion depends on.  Holding a loser-only
        gate until the transaction finishes costs the writer bounded delay
        (at most the reader's lifetime, which the restart breaker bounds),
        never safety.  Only when the transaction already finished (a
        late-arriving losing reply) is the gate released on the spot.
        """

        def cleanup(event) -> None:
            if event.ok and event._value is not winner:
                losing: ReadReturn = event._value
                self.send(
                    losing.sender,
                    Remove(txn_id=txn_id, keys=(key,), mark_returned=False),
                )
                if losing.gated:
                    meta = self.coordinated.get(txn_id)
                    if meta is not None and meta.phase is TransactionPhase.EXECUTING:
                        meta.gated_writers.update(losing.gated)
                    else:
                        self._release_gated(txn_id, losing.gated)

        for event in request_events:
            if event.triggered:
                cleanup(event)
            else:
                event.add_callback(cleanup)

    def _release_gated(self, reader: TransactionId, writers) -> None:
        """Release ``reader``'s answer gates at the writers' coordinators."""
        by_node: Dict[int, list] = {}
        for writer in sorted(writers):
            by_node.setdefault(writer.node, []).append(writer)
        for node_id in sorted(by_node):
            if node_id == self.node_id:
                self._release_answer_gates(reader, by_node[node_id])
            else:
                self.send(
                    node_id,
                    ReleaseGate(txn_id=reader, writers=tuple(by_node[node_id])),
                )

    def txn_abort(self, meta: TransactionMeta) -> None:
        """Client-requested abort before commit.

        Buffered writes are simply dropped.  A read-only transaction that
        already issued reads has left entries in the snapshot queues of its
        read keys; those are cleaned up exactly as on commit (by sending
        ``Remove``), otherwise it could block update transactions forever.
        """
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"abort after completion of {meta}")
        if meta.is_read_only and meta.read_set:
            self._commit_read_only(meta)
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = "client-abort"
        meta.abort_time = self.sim.now
        self.counters["client_aborts"] += 1

    # ------------------------------------------------------------------
    # Commit — Algorithm 1
    # ------------------------------------------------------------------
    def txn_commit(self, meta: TransactionMeta):
        """Commit ``meta``; returns True on (external) commit, False on abort.

        A read-only transaction whose dependency wait sits on writers
        confirmed still in flight past ``readonly_restart_wait_us`` is
        withdrawn instead (:class:`SnapshotRestartError`): the workload
        layer re-executes it with a fresh snapshot, the client never sees an
        abort, and the 4-party wait cycle loses one of its edges.
        """
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")

        if not meta.write_set:
            resolved = yield from self._wait_pending_writers(meta)
            if not resolved:
                self._restart_read_only(meta)
                raise SnapshotRestartError(meta.txn_id)
            return self._commit_read_only(meta)
        return (yield from self._commit_update(meta))

    def _wait_pending_writers(self, meta: TransactionMeta):
        """Delay the client response until observed writers are external.

        A transaction that read a version produced by a writer still in its
        pre-commit phase is serialized *after* that writer; answering its
        client earlier would publish the writer's state before the writer's
        own client response, and a transaction started in between could then
        be serialized before the writer — the external-consistency cycle the
        snapshot queues exist to prevent.

        The serving node subscribed this coordinator to each pending writer's
        ExternalDone notification at read time, so by now the notification
        has usually arrived and the wait is free.  When it is not:

        * an *update* transaction waits on the plain notification events —
          writer-only dependency chains are acyclic (a writer can only
          observe versions installed before its own reads), so the wait
          always resolves and the fail-free hot path stays timer-free;
        * a *read-only* transaction waits in bounded waves.  After each wave
          the leftovers are resolved definitively at their coordinators
          (:class:`ExternalStatusQuery` — a delayed or swallowed ExternalDone
          stops gating on the spot), and once writers *confirmed in flight*
          have held the wait past ``readonly_restart_wait_us`` the generator
          returns ``False``: two read-only transactions bridging two
          independent pre-committing writers can adopt contradictory
          serialization orders (the paper's Figure 2 ambiguity turned into a
          4-party wait cycle), the writers' versions are already installed,
          so the reader is the only party that can move — it restarts with a
          fresh snapshot instead of stalling the cluster.

        Returns ``True`` when every observed writer is externally done.
        """
        if not meta.pending_writers:
            return True
        still_pending = [
            writer
            for writer in sorted(meta.pending_writers)
            if writer not in self._externally_done
        ]
        if not still_pending:
            return True
        self.counters["external_dependency_waits"] += 1
        tracer = self.sim.tracer
        trace_start = self.sim.now if tracer is not None else 0.0
        trace_links = tuple(still_pending) if tracer is not None else ()
        timeouts = self.config.timeouts
        if not self._fault_mode and not meta.is_read_only:
            events = [self.external_done_event(writer) for writer in still_pending]
            if len(events) == 1:
                yield events[0]
            else:
                yield self.sim.all_of(events)
            if tracer is not None:
                tracer.span(
                    "wait.pending_writers", trace_start, txn=meta.txn_id, link=trace_links
                )
            return True
        # Bounded waves.  Fault mode re-subscribes between waves — a crash
        # can swallow both the subscription and the notification, and a
        # restarted coordinator answers the fresh SubscribeExternal
        # immediately (its crash tore the writer down).  Fail-free read-only
        # waves resolve their leftovers definitively instead.
        wave_us = (
            timeouts.crash_resubscribe_us
            if self._fault_mode
            else timeouts.external_done_wait_us
        )
        restart_deadline = (
            self.sim.now + timeouts.readonly_restart_wait_us
            if meta.is_read_only
            else None
        )
        while True:
            still_pending = [
                writer
                for writer in still_pending
                if writer not in self._externally_done
            ]
            if not still_pending:
                if tracer is not None:
                    tracer.span(
                        "wait.pending_writers", trace_start, txn=meta.txn_id, link=trace_links
                    )
                return True
            events = [self.external_done_event(writer) for writer in still_pending]
            done = events[0] if len(events) == 1 else self.sim.all_of(events)
            yield self.sim.any_of([done, self.sim.timeout(wave_us)])
            if done.triggered:
                if tracer is not None:
                    tracer.span(
                        "wait.pending_writers", trace_start, txn=meta.txn_id, link=trace_links
                    )
                return True
            if self._fault_mode:
                self.counters["crash_resubscribes"] += 1
                for writer in still_pending:
                    if writer in self._externally_done:
                        continue
                    if writer.node == self.node_id:
                        self._register_external_watcher(writer, self.node_id)
                    else:
                        self.send(
                            writer.node,
                            SubscribeExternal(txn_id=writer, target=self.node_id),
                        )
            leftovers = [
                writer
                for writer in still_pending
                if writer not in self._externally_done
            ]
            confirmed_pending = set()
            if leftovers:
                # Definitive resolution in every mode.  With an unreachable
                # coordinator (fault mode) this blocks until it answers
                # after its restart — the documented trade of liveness,
                # never safety — so the restart below only ever fires on
                # writers *confirmed* still in flight, not on writers whose
                # coordinator is merely down.
                confirmed_pending, _gated, _refused = (
                    yield from self._query_external_status(leftovers)
                )
            if (
                restart_deadline is not None
                and self.sim.now >= restart_deadline
                and confirmed_pending
            ):
                if tracer is not None:
                    tracer.span(
                        "wait.pending_writers",
                        trace_start,
                        txn=meta.txn_id,
                        link=trace_links,
                        args={"outcome": "restart"},
                    )
                return False

    def _restart_read_only(self, meta: TransactionMeta) -> None:
        """Withdraw a read-only transaction for an externally invisible retry.

        Its snapshot-queue entries are removed exactly as on completion (so
        every writer it gated can proceed — when the commit-time wait-cycle
        breaker triggered, this is the cycle edge being cut), the attempt is
        *not* recorded in the history (the client is answered once, from the
        committed retry), and the workload layer re-executes the transaction
        under a fresh id and snapshot (see :class:`SnapshotRestartError`).
        """
        self._send_removes(meta)
        if meta.gated_writers:
            self._release_gated(meta.txn_id, meta.gated_writers)
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = READONLY_RESTART_REASON
        meta.abort_time = self.sim.now
        self.counters["readonly_restarts"] += 1

    def _commit_read_only(self, meta: TransactionMeta) -> bool:
        """Lines 2-8: read-only transactions return immediately, then Remove."""
        self._finish_commit(meta, "read_only_commits")
        self._send_removes(meta)
        if meta.gated_writers:
            self._release_gated(meta.txn_id, meta.gated_writers)
        return True

    def _send_removes(self, meta: TransactionMeta) -> None:
        """Fan out the Remove cleanup of a finished read-only transaction.

        One Remove per replica, carrying every read key it holds; grouped in
        a single pass over the read-set.
        """
        by_replica: Dict[int, list] = {}
        for key in meta.read_set:
            for replica in self.replicas(key):
                bucket = by_replica.get(replica)
                if bucket is None:
                    bucket = by_replica[replica] = []
                bucket.append(key)
        if self._fault_mode:
            # Fault mode: broadcast to every node instead of relying on the
            # anti-dependency forward chains — a crash can sever a chain
            # link, leaving propagated reader entries gating writers forever
            # on nodes this Remove would never reach.
            for node_id in range(self.config.n_nodes):
                self.send(
                    node_id,
                    Remove(
                        txn_id=meta.txn_id,
                        keys=tuple(by_replica.get(node_id, ())),
                    ),
                )
            return
        for replica in sorted(by_replica):
            self.send(replica, Remove(txn_id=meta.txn_id, keys=tuple(by_replica[replica])))

    def _propagated_for_decide(self, meta: TransactionMeta):
        """Propagated entries eligible for (re-)insertion at write replicas.

        Propagated read-only entries whose Remove already passed through
        this node must not be re-inserted anywhere: the Remove will not be
        forwarded again, so a stale insertion would block the written keys'
        pre-commit forever.  Shared by the Decide fan-out, its
        PrecommitQuery retransmission, and in-doubt status replies.
        """
        return tuple(
            entry
            for entry in sorted(meta.propagated_set, key=lambda e: (e.txn_id, e.snapshot))
            if entry.txn_id not in self._removed_readers
        )

    def _commit_update(self, meta: TransactionMeta):
        """Lines 9-26 plus the external-commit wait (Algorithm 4 acks)."""
        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id

        participants = set(self.placement.replicas_of(list(meta.read_set) + list(meta.write_set)))
        participants.add(self.node_id)
        participants = sorted(participants)
        write_replicas = set(self.placement.replicas_of(list(meta.write_set)))

        # Prepare phase: one shared vote round (the runtime arms the coarse
        # crash-guard deadline and the fail-fast VoteCollector).
        read_versions = tuple((key, record.version_vc) for key, record in meta.read_set.items())
        write_items = tuple(meta.write_set.items())
        outcome, collected = yield from self.vote_round(
            participants,
            lambda _participant: Prepare(
                txn_id=txn_id,
                vc=meta.vc,
                read_versions=read_versions,
                write_items=write_items,
            ),
            self.config.timeouts.prepare_timeout_us,
            trace_txn=txn_id,
        )

        commit_vc = meta.vc
        if outcome:
            # Fold the whole vote round in one batch merge instead of
            # one intermediate clock per vote.
            commit_vc = commit_vc.merge_many([vote.vc for vote in collected])

        if outcome:
            # Lines 21-24: every write-replica entry takes the transaction
            # version number (the maximum across the write replicas).
            write_indices = sorted(write_replicas)
            xact_vn = commit_vc.max_over(write_indices)
            commit_vc = commit_vc.with_entries(write_indices, xact_vn)
            meta.commit_vc = commit_vc
            # The transaction version number orders this transaction against
            # every other writer of the same keys (the commit queues install
            # versions in xactVN order), which is what the consistency
            # checker uses to recover per-key version orders.
            meta.version_hints = {key: float(xact_vn) for key in meta.write_set}

        # Register for the external acks *before* the decision is sent so an
        # ack arriving instantly (loopback) is not lost.
        ack_event = None
        if outcome:
            ack_event = self.sim.event(name=f"external:{txn_id}")
            self._ack_waits[txn_id] = (ack_event, set(write_replicas))

        propagated = self._propagated_for_decide(meta)
        for participant in participants:
            self.send(
                participant,
                Decide(
                    txn_id=txn_id,
                    commit_vc=commit_vc if outcome else meta.vc,
                    outcome=outcome,
                    propagated=propagated,
                ),
            )
            if outcome and propagated:
                for entry in propagated:
                    self.note_propagation(entry.txn_id, participant)

        if not outcome:
            meta.phase = TransactionPhase.ABORTED
            meta.abort_reason = meta.abort_reason or "validation-or-lock"
            meta.abort_time = self.sim.now
            self.counters["update_aborts"] += 1
            # Release any external-commit subscribers (none should exist for
            # an aborted writer, but a dangling watcher must never hang).
            self._external_commit_completed(txn_id, ())
            if self.history is not None:
                self.history.record_abort(meta)
            return False

        meta.phase = TransactionPhase.INTERNALLY_COMMITTED
        meta.internal_commit_time = self.sim.now

        # External commit: wait for every write replica's pre-commit ack and
        # for every observed still-pre-committing writer's external commit.
        meta.phase = TransactionPhase.PRE_COMMIT
        tracer = self.sim.tracer
        trace_start = self.sim.now if tracer is not None else 0.0
        if not self._fault_mode:
            yield ack_event
        else:
            # Fault mode: a write replica that crashed mid-pre-commit lost
            # both the wait process and the ack; periodically ask the
            # remaining replicas to replay from their durable logs.
            retry_us = self.config.timeouts.crash_resubscribe_us
            while not ack_event.triggered:
                yield self.sim.any_of([ack_event, self.sim.timeout(retry_us)])
                if ack_event.triggered:
                    break
                waiting = self._ack_waits.get(txn_id)
                if waiting is None:
                    break
                self.counters["precommit_retries"] += 1
                for replica in sorted(waiting[1]):
                    # The query doubles as a decision retransmission: a
                    # replica whose Decide was lost (voted, then crashed, or
                    # a drop-mode partition ate it) applies the decision from
                    # its durable redo record.
                    self.send(
                        replica,
                        PrecommitQuery(
                            txn_id=txn_id,
                            commit_vc=meta.commit_vc,
                            propagated=self._propagated_for_decide(meta),
                        ),
                    )
        if tracer is not None:
            tracer.span(
                "wait.precommit_ack",
                trace_start,
                txn=txn_id,
                args={"replicas": len(write_replicas)},
            )
        yield from self._wait_pending_writers(meta)
        # Ordered external-commit resolution: readers that ambiguously
        # excluded this writer gated its client answer behind their own
        # completion — hold the answer until every gate is released.
        trace_start = self.sim.now if tracer is not None else 0.0
        yield from self._wait_answer_gates(txn_id)
        if tracer is not None and self.sim.now > trace_start:
            tracer.span("wait.answer_gate", trace_start, txn=txn_id)
        self._finish_commit(meta, "update_commits")
        self._external_commit_completed(txn_id, sorted(write_replicas))
        return True

    # ------------------------------------------------------------------
    # ExternalAck handling
    # ------------------------------------------------------------------
    def on_external_ack(self, message: ExternalAck) -> None:
        """Collect pre-commit acks; fire the wait event when all arrived."""
        waiting = self._ack_waits.get(message.txn_id)
        if waiting is None:
            return
        event, remaining = waiting
        remaining.discard(message.sender)
        if not remaining:
            del self._ack_waits[message.txn_id]
            if not event.triggered:
                event.succeed()
