"""Client-side transaction execution at the coordinator node.

In SSS a client is co-located with a node; that node coordinates every
transaction the client starts.  :class:`CoordinatorMixin` adds the
coordinator role to :class:`repro.core.node.SSSNode`:

* :meth:`begin_transaction` — create the transaction metadata.
* :meth:`txn_read` — Algorithm 5: snapshot the local ``NLog.mostRecentVC`` on
  the first read, contact every replica of the key, take the fastest answer,
  merge the returned vector clock into ``T.VC``, mark ``hasRead`` and
  accumulate the propagated set.
* :meth:`txn_write` — buffer the write in the write-set (lazy update).
* :meth:`txn_commit` — Algorithm 1: read-only transactions reply to the
  client immediately and send ``Remove``; update transactions run 2PC
  (prepare, votes, decide), then wait for the ``ExternalAck`` of every write
  replica before the client is informed (the external commit).

All methods that involve waiting are generators intended to be driven with
``yield from`` inside a simulation process (see :class:`repro.core.session.Session`).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.errors import TransactionStateError
from repro.common.ids import TransactionId, TxnIdGenerator
from repro.core.messages import (
    Decide,
    ExternalAck,
    Prepare,
    ReadRequest,
    ReadReturn,
    Remove,
)
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.sim.events import Event


class VoteCollector(Event):
    """Event firing once a 2PC-style vote round is decided.

    Replaces the wave-by-wave ``any_of(pending + [timeout])`` pattern, which
    rebuilt an :class:`AnyOf` over every still-pending vote each wave — at
    large participant counts (the cluster-size sweep) that is quadratic in
    callbacks and list scans.  The collector registers one callback per vote
    reply, fails fast on the first unsuccessful vote (any reply with a falsy
    ``success`` attribute) and fires with ``(outcome, votes)`` once the round
    is decided.  Shared by SSS and the 2PC-style baselines; SSS hands the
    collected votes' proposed commit clocks to one batched
    ``VectorClock.merge_many``.
    """

    __slots__ = ("_remaining", "_votes")

    def __init__(self, sim, vote_events):
        super().__init__(sim, name="votes")
        self._remaining = len(vote_events)
        self._votes = []
        if not vote_events:
            # An empty round is trivially successful; without this the
            # collector would never fire and the caller would idle until
            # its crash-guard deadline.
            self.succeed((True, self._votes))
            return
        for event in vote_events:
            event.add_callback(self._on_vote)

    def _on_vote(self, event) -> None:
        if self.triggered:
            return
        vote = event._value
        if not vote.success:
            self.succeed((False, self._votes))
            return
        self._votes.append(vote)
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed((True, self._votes))


class CoordinatorMixin:
    """Coordinator-role methods mixed into :class:`repro.core.node.SSSNode`."""

    def _init_coordinator_state(self) -> None:
        self._txn_ids = TxnIdGenerator(self.node_id)
        # External-commit bookkeeping: txn -> (event, nodes still to ack).
        self._ack_waits: Dict[TransactionId, Tuple["Event", Set[int]]] = {}
        self.coordinated: Dict[TransactionId, TransactionMeta] = {}

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin_transaction(self, read_only: bool) -> TransactionMeta:
        """Create the metadata of a transaction coordinated by this node."""
        meta = TransactionMeta(
            txn_id=self._txn_ids.next_id(),
            coordinator=self.node_id,
            is_update=not read_only,
            n_nodes=self.config.n_nodes,
        )
        meta.begin_time = self.sim.now
        self.coordinated[meta.txn_id] = meta
        self.counters["begun"] += 1
        return meta

    def txn_read(self, meta: TransactionMeta, key: object):
        """Algorithm 5: read ``key`` on behalf of ``meta`` (generator)."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after commit/abort in {meta}")

        # Line 2-4: reads of keys in the write-set observe the buffered value.
        if key in meta.write_set:
            return meta.write_set[key]

        # Lines 5-7: the first read snapshots the local commit log.
        if not meta.first_read_done:
            meta.vc = self.nlog.most_recent_vc
            meta.first_read_done = True

        # Lines 8-10: contact every replica, use the fastest answer.
        replicas = self.replicas(key)
        has_read = tuple(meta.has_read)
        request_events = []
        for replica in replicas:
            request = ReadRequest(
                txn_id=meta.txn_id,
                key=key,
                vc=meta.vc,
                has_read=has_read,
                is_update=meta.is_update,
            )
            request_events.append(self.request(replica, request))
        if len(request_events) == 1:
            reply: ReadReturn = yield request_events[0]
        else:
            yield self.sim.any_of(request_events)
            reply = next(
                event.value for event in request_events if event.triggered
            )
            if not meta.is_update:
                # Replicas that lose the fastest-answer race still inserted a
                # snapshot-queue entry under *their* serialization decision,
                # which this transaction does not adopt; clean those entries
                # up as the losing replies arrive, or a stale entry could
                # gate an unrelated writer's external commit against this
                # reader's own external-commit dependency wait (deadlock).
                self._cleanup_losing_replies(meta.txn_id, key, request_events, reply)

        served_by = reply.sender
        # Lines 11-14: merge visibility information and record the read.
        meta.mark_has_read(served_by)
        meta.merge_vc(reply.max_vc)
        meta.record_read(
            key=key,
            value=reply.value,
            version_vc=reply.version_vc,
            writer=reply.writer,
            served_by=served_by,
        )
        if reply.writer_pending and reply.writer != meta.txn_id:
            # External-commit dependency: this transaction's own client
            # response must wait for the observed writer's client response.
            meta.pending_writers.add(reply.writer)
        if reply.propagated:
            meta.add_propagated(reply.propagated)
            # Remember (on the serving node) where those reader entries have
            # been shipped so Remove messages can be forwarded later.  The
            # serving node is remote; it records the propagation when sending
            # the reply — see ReadReturn handling below in the node — but the
            # coordinator also records it for the Decide fan-out it will do.
        self.counters["client_reads"] += 1
        return reply.value

    def _cleanup_losing_replies(
        self, txn_id: TransactionId, key: object, request_events, winner: ReadReturn
    ) -> None:
        """Retract snapshot-queue entries left by losing read replicas."""

        def cleanup(event) -> None:
            if event.ok and event._value is not winner:
                losing: ReadReturn = event._value
                self.send(
                    losing.sender,
                    Remove(txn_id=txn_id, keys=(key,), mark_returned=False),
                )

        for event in request_events:
            if event.triggered:
                cleanup(event)
            else:
                event.add_callback(cleanup)

    def txn_write(self, meta: TransactionMeta, key: object, value: object) -> None:
        """Buffer a write (lazy update); visible only after commit."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"write after commit/abort in {meta}")
        if meta.is_read_only:
            raise TransactionStateError(
                f"{meta.txn_id} was declared read-only but issued a write"
            )
        meta.record_write(key, value)
        self.counters["client_writes"] += 1

    def txn_abort(self, meta: TransactionMeta) -> None:
        """Client-requested abort before commit.

        Buffered writes are simply dropped.  A read-only transaction that
        already issued reads has left entries in the snapshot queues of its
        read keys; those are cleaned up exactly as on commit (by sending
        ``Remove``), otherwise it could block update transactions forever.
        """
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"abort after completion of {meta}")
        if meta.is_read_only and meta.read_set:
            self._commit_read_only(meta)
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = "client-abort"
        meta.abort_time = self.sim.now
        self.counters["client_aborts"] += 1

    # ------------------------------------------------------------------
    # Commit — Algorithm 1
    # ------------------------------------------------------------------
    def txn_commit(self, meta: TransactionMeta):
        """Commit ``meta``; returns True on (external) commit, False on abort."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")

        if not meta.write_set:
            yield from self._wait_pending_writers(meta)
            return self._commit_read_only(meta)
        return (yield from self._commit_update(meta))

    def _wait_pending_writers(self, meta: TransactionMeta):
        """Delay the client response until observed writers are external.

        A transaction that read a version produced by a writer still in its
        pre-commit phase is serialized *after* that writer; answering its
        client earlier would publish the writer's state before the writer's
        own client response, and a transaction started in between could then
        be serialized before the writer — the external-consistency cycle the
        snapshot queues exist to prevent.  The wait follows the serialization
        order (observer waits for the observed), so it cannot deadlock.

        The serving node subscribed this coordinator to each pending writer's
        ExternalDone notification at read time, so by now the notification
        has usually arrived and the wait is free.
        """
        if not meta.pending_writers:
            return
        still_pending = [
            writer
            for writer in sorted(meta.pending_writers)
            if writer not in self._externally_done
        ]
        if not still_pending:
            return
        self.counters["external_dependency_waits"] += 1
        events = [self.external_done_event(writer) for writer in still_pending]
        if len(events) == 1:
            yield events[0]
        else:
            yield self.sim.all_of(events)

    def _commit_read_only(self, meta: TransactionMeta) -> bool:
        """Lines 2-8: read-only transactions return immediately, then Remove."""
        meta.phase = TransactionPhase.EXTERNALLY_COMMITTED
        meta.external_commit_time = self.sim.now
        meta.commit_vc = meta.vc
        self.counters["read_only_commits"] += 1
        if self.history is not None:
            self.history.record_commit(meta)

        # One Remove per replica, carrying every read key it holds; grouped
        # in a single pass over the read-set.
        by_replica: Dict[int, list] = {}
        for key in meta.read_set:
            for replica in self.replicas(key):
                bucket = by_replica.get(replica)
                if bucket is None:
                    bucket = by_replica[replica] = []
                bucket.append(key)
        for replica in sorted(by_replica):
            self.send(
                replica, Remove(txn_id=meta.txn_id, keys=tuple(by_replica[replica]))
            )
        return True

    def _commit_update(self, meta: TransactionMeta):
        """Lines 9-26 plus the external-commit wait (Algorithm 4 acks)."""
        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id

        participants = set(self.placement.replicas_of(
            list(meta.read_set) + list(meta.write_set)
        ))
        participants.add(self.node_id)
        participants = sorted(participants)
        write_replicas = set(self.placement.replicas_of(list(meta.write_set)))

        # Prepare phase.
        read_versions = tuple(
            (key, record.version_vc) for key, record in meta.read_set.items()
        )
        vote_events = []
        for participant in participants:
            prepare = Prepare(
                txn_id=txn_id,
                vc=meta.vc,
                read_versions=read_versions,
                write_items=tuple(meta.write_set.items()),
            )
            vote_events.append(self.request(participant, prepare))

        commit_vc = meta.vc
        # Shared coarse deadline: a guard against crashed participants, not
        # a precise timer — one heap entry per bucket instead of one 50 ms
        # timeout lingering in the heap per update transaction.
        timeout = self.sim.deadline(self.config.timeouts.prepare_timeout_us)
        votes = VoteCollector(self.sim, vote_events)
        yield self.sim.any_of([votes, timeout])
        if votes.triggered:
            outcome, collected = votes.value
            if outcome:
                # Fold the whole vote round in one batch merge instead of
                # one intermediate clock per vote.
                commit_vc = commit_vc.merge_many([vote.vc for vote in collected])
        else:
            outcome = False  # deadline expired with votes still missing

        if outcome:
            # Lines 21-24: every write-replica entry takes the transaction
            # version number (the maximum across the write replicas).
            write_indices = sorted(write_replicas)
            xact_vn = commit_vc.max_over(write_indices)
            commit_vc = commit_vc.with_entries(write_indices, xact_vn)
            meta.commit_vc = commit_vc
            # The transaction version number orders this transaction against
            # every other writer of the same keys (the commit queues install
            # versions in xactVN order), which is what the consistency
            # checker uses to recover per-key version orders.
            meta.version_hints = {key: float(xact_vn) for key in meta.write_set}

        # Register for the external acks *before* the decision is sent so an
        # ack arriving instantly (loopback) is not lost.
        ack_event = None
        if outcome:
            ack_event = self.sim.event(name=f"external:{txn_id}")
            self._ack_waits[txn_id] = (ack_event, set(write_replicas))

        # Propagated read-only entries whose Remove already passed through
        # this node must not be re-inserted anywhere: the Remove will not be
        # forwarded again, so a stale insertion would block the written keys'
        # pre-commit forever.
        propagated = tuple(
            entry
            for entry in sorted(
                meta.propagated_set, key=lambda e: (e.txn_id, e.snapshot)
            )
            if entry.txn_id not in self._removed_readers
        )
        for participant in participants:
            self.send(
                participant,
                Decide(
                    txn_id=txn_id,
                    commit_vc=commit_vc if outcome else meta.vc,
                    outcome=outcome,
                    propagated=propagated,
                ),
            )
            if outcome and propagated:
                for entry in propagated:
                    self.note_propagation(entry.txn_id, participant)

        if not outcome:
            meta.phase = TransactionPhase.ABORTED
            meta.abort_reason = meta.abort_reason or "validation-or-lock"
            meta.abort_time = self.sim.now
            self.counters["update_aborts"] += 1
            # Release any external-commit subscribers (none should exist for
            # an aborted writer, but a dangling watcher must never hang).
            self._external_commit_completed(txn_id, ())
            if self.history is not None:
                self.history.record_abort(meta)
            return False

        meta.phase = TransactionPhase.INTERNALLY_COMMITTED
        meta.internal_commit_time = self.sim.now

        # External commit: wait for every write replica's pre-commit ack and
        # for every observed still-pre-committing writer's external commit.
        meta.phase = TransactionPhase.PRE_COMMIT
        yield ack_event
        yield from self._wait_pending_writers(meta)
        meta.phase = TransactionPhase.EXTERNALLY_COMMITTED
        meta.external_commit_time = self.sim.now
        self.counters["update_commits"] += 1
        self._external_commit_completed(txn_id, sorted(write_replicas))
        if self.history is not None:
            self.history.record_commit(meta)
        return True

    # ------------------------------------------------------------------
    # ExternalAck handling
    # ------------------------------------------------------------------
    def on_external_ack(self, message: ExternalAck) -> None:
        """Collect pre-commit acks; fire the wait event when all arrived."""
        waiting = self._ack_waits.get(message.txn_id)
        if waiting is None:
            return
        event, remaining = waiting
        remaining.discard(message.sender)
        if not remaining:
            del self._ack_waits[message.txn_id]
            if not event.triggered:
                event.succeed()
