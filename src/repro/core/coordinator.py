"""Client-side transaction execution at the coordinator node.

In SSS a client is co-located with a node; that node coordinates every
transaction the client starts.  :class:`CoordinatorMixin` adds the
coordinator role to :class:`repro.core.node.SSSNode`:

* :meth:`begin_transaction` — create the transaction metadata.
* :meth:`txn_read` — Algorithm 5: snapshot the local ``NLog.mostRecentVC`` on
  the first read, contact every replica of the key, take the fastest answer,
  merge the returned vector clock into ``T.VC``, mark ``hasRead`` and
  accumulate the propagated set.
* :meth:`txn_write` — buffer the write in the write-set (lazy update).
* :meth:`txn_commit` — Algorithm 1: read-only transactions reply to the
  client immediately and send ``Remove``; update transactions run 2PC
  (prepare, votes, decide), then wait for the ``ExternalAck`` of every write
  replica before the client is informed (the external commit).

All methods that involve waiting are generators intended to be driven with
``yield from`` inside a simulation process (see :class:`repro.core.session.Session`).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.errors import TransactionStateError
from repro.common.ids import TransactionId
from repro.core.messages import (
    Decide,
    ExternalAck,
    Prepare,
    PrecommitQuery,
    ReadRequest,
    ReadReturn,
    Remove,
    SubscribeExternal,
)
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.protocols.runtime import VoteCollector  # noqa: F401 - re-export
from repro.sim.events import Event


class CoordinatorMixin:
    """Coordinator-role methods mixed into :class:`repro.core.node.SSSNode`.

    The generic transaction lifecycle (``begin_transaction`` / ``txn_write``
    and the finish transitions) comes from
    :class:`repro.protocols.runtime.ProtocolRuntime`; this mixin adds only
    what is SSS-specific — Algorithm 5 reads, the Algorithm 1 commit with
    its external-commit dependency waits, and the read-only Remove cleanup.
    """

    def _init_coordinator_state(self) -> None:
        # External-commit bookkeeping: txn -> (event, nodes still to ack).
        self._ack_waits: Dict[TransactionId, Tuple["Event", Set[int]]] = {}

    def txn_read(self, meta: TransactionMeta, key: object):
        """Algorithm 5: read ``key`` on behalf of ``meta`` (generator)."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after commit/abort in {meta}")

        # Line 2-4: reads of keys in the write-set observe the buffered value.
        if key in meta.write_set:
            return meta.write_set[key]

        # Lines 5-7: the first read snapshots the local commit log.
        if not meta.first_read_done:
            meta.vc = self.nlog.most_recent_vc
            meta.first_read_done = True

        # Lines 8-10: contact every replica, use the fastest answer.
        replicas = self.replicas(key)
        has_read = tuple(meta.has_read)
        request_events = self.request_each(
            replicas,
            lambda _replica: ReadRequest(
                txn_id=meta.txn_id,
                key=key,
                vc=meta.vc,
                has_read=has_read,
                is_update=meta.is_update,
            ),
        )
        reply: ReadReturn = yield from self.fastest_of(request_events)
        if len(request_events) > 1 and not meta.is_update:
            # Replicas that lose the fastest-answer race still inserted a
            # snapshot-queue entry under *their* serialization decision,
            # which this transaction does not adopt; clean those entries
            # up as the losing replies arrive, or a stale entry could
            # gate an unrelated writer's external commit against this
            # reader's own external-commit dependency wait (deadlock).
            self._cleanup_losing_replies(meta.txn_id, key, request_events, reply)

        served_by = reply.sender
        # Lines 11-14: merge visibility information and record the read.
        meta.mark_has_read(served_by)
        meta.merge_vc(reply.max_vc)
        meta.record_read(
            key=key,
            value=reply.value,
            version_vc=reply.version_vc,
            writer=reply.writer,
            served_by=served_by,
        )
        if reply.writer_pending and reply.writer != meta.txn_id:
            # External-commit dependency: this transaction's own client
            # response must wait for the observed writer's client response.
            meta.pending_writers.add(reply.writer)
        if reply.propagated:
            meta.add_propagated(reply.propagated)
            # Remember (on the serving node) where those reader entries have
            # been shipped so Remove messages can be forwarded later.  The
            # serving node is remote; it records the propagation when sending
            # the reply — see ReadReturn handling below in the node — but the
            # coordinator also records it for the Decide fan-out it will do.
        self.counters["client_reads"] += 1
        return reply.value

    def _cleanup_losing_replies(
        self, txn_id: TransactionId, key: object, request_events, winner: ReadReturn
    ) -> None:
        """Retract snapshot-queue entries left by losing read replicas."""

        def cleanup(event) -> None:
            if event.ok and event._value is not winner:
                losing: ReadReturn = event._value
                self.send(
                    losing.sender,
                    Remove(txn_id=txn_id, keys=(key,), mark_returned=False),
                )

        for event in request_events:
            if event.triggered:
                cleanup(event)
            else:
                event.add_callback(cleanup)

    def txn_abort(self, meta: TransactionMeta) -> None:
        """Client-requested abort before commit.

        Buffered writes are simply dropped.  A read-only transaction that
        already issued reads has left entries in the snapshot queues of its
        read keys; those are cleaned up exactly as on commit (by sending
        ``Remove``), otherwise it could block update transactions forever.
        """
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"abort after completion of {meta}")
        if meta.is_read_only and meta.read_set:
            self._commit_read_only(meta)
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = "client-abort"
        meta.abort_time = self.sim.now
        self.counters["client_aborts"] += 1

    # ------------------------------------------------------------------
    # Commit — Algorithm 1
    # ------------------------------------------------------------------
    def txn_commit(self, meta: TransactionMeta):
        """Commit ``meta``; returns True on (external) commit, False on abort."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")

        if not meta.write_set:
            yield from self._wait_pending_writers(meta)
            return self._commit_read_only(meta)
        return (yield from self._commit_update(meta))

    def _wait_pending_writers(self, meta: TransactionMeta):
        """Delay the client response until observed writers are external.

        A transaction that read a version produced by a writer still in its
        pre-commit phase is serialized *after* that writer; answering its
        client earlier would publish the writer's state before the writer's
        own client response, and a transaction started in between could then
        be serialized before the writer — the external-consistency cycle the
        snapshot queues exist to prevent.  The wait follows the serialization
        order (observer waits for the observed), so it cannot deadlock.

        The serving node subscribed this coordinator to each pending writer's
        ExternalDone notification at read time, so by now the notification
        has usually arrived and the wait is free.
        """
        if not meta.pending_writers:
            return
        still_pending = [
            writer
            for writer in sorted(meta.pending_writers)
            if writer not in self._externally_done
        ]
        if not still_pending:
            return
        self.counters["external_dependency_waits"] += 1
        if not self._fault_mode:
            events = [self.external_done_event(writer) for writer in still_pending]
            if len(events) == 1:
                yield events[0]
            else:
                yield self.sim.all_of(events)
            return
        # Fault mode: a crash can swallow both the subscription and the
        # notification, so wait in bounded waves and re-subscribe between
        # them — once the writer's coordinator restarts it answers the fresh
        # SubscribeExternal immediately (its crash tore the writer down).
        resubscribe_us = self.config.timeouts.crash_resubscribe_us
        while True:
            still_pending = [
                writer
                for writer in still_pending
                if writer not in self._externally_done
            ]
            if not still_pending:
                return
            events = [self.external_done_event(writer) for writer in still_pending]
            done = events[0] if len(events) == 1 else self.sim.all_of(events)
            yield self.sim.any_of([done, self.sim.timeout(resubscribe_us)])
            if done.triggered:
                return
            self.counters["crash_resubscribes"] += 1
            for writer in still_pending:
                if writer in self._externally_done:
                    continue
                if writer.node == self.node_id:
                    self._register_external_watcher(writer, self.node_id)
                else:
                    self.send(
                        writer.node,
                        SubscribeExternal(txn_id=writer, target=self.node_id),
                    )

    def _commit_read_only(self, meta: TransactionMeta) -> bool:
        """Lines 2-8: read-only transactions return immediately, then Remove."""
        self._finish_commit(meta, "read_only_commits")

        # One Remove per replica, carrying every read key it holds; grouped
        # in a single pass over the read-set.
        by_replica: Dict[int, list] = {}
        for key in meta.read_set:
            for replica in self.replicas(key):
                bucket = by_replica.get(replica)
                if bucket is None:
                    bucket = by_replica[replica] = []
                bucket.append(key)
        if self._fault_mode:
            # Fault mode: broadcast to every node instead of relying on the
            # anti-dependency forward chains — a crash can sever a chain
            # link, leaving propagated reader entries gating writers forever
            # on nodes this Remove would never reach.
            for node_id in range(self.config.n_nodes):
                self.send(
                    node_id,
                    Remove(
                        txn_id=meta.txn_id,
                        keys=tuple(by_replica.get(node_id, ())),
                    ),
                )
            return True
        for replica in sorted(by_replica):
            self.send(
                replica, Remove(txn_id=meta.txn_id, keys=tuple(by_replica[replica]))
            )
        return True

    def _commit_update(self, meta: TransactionMeta):
        """Lines 9-26 plus the external-commit wait (Algorithm 4 acks)."""
        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id

        participants = set(self.placement.replicas_of(
            list(meta.read_set) + list(meta.write_set)
        ))
        participants.add(self.node_id)
        participants = sorted(participants)
        write_replicas = set(self.placement.replicas_of(list(meta.write_set)))

        # Prepare phase: one shared vote round (the runtime arms the coarse
        # crash-guard deadline and the fail-fast VoteCollector).
        read_versions = tuple(
            (key, record.version_vc) for key, record in meta.read_set.items()
        )
        write_items = tuple(meta.write_set.items())
        outcome, collected = yield from self.vote_round(
            participants,
            lambda _participant: Prepare(
                txn_id=txn_id,
                vc=meta.vc,
                read_versions=read_versions,
                write_items=write_items,
            ),
            self.config.timeouts.prepare_timeout_us,
        )

        commit_vc = meta.vc
        if outcome:
            # Fold the whole vote round in one batch merge instead of
            # one intermediate clock per vote.
            commit_vc = commit_vc.merge_many([vote.vc for vote in collected])

        if outcome:
            # Lines 21-24: every write-replica entry takes the transaction
            # version number (the maximum across the write replicas).
            write_indices = sorted(write_replicas)
            xact_vn = commit_vc.max_over(write_indices)
            commit_vc = commit_vc.with_entries(write_indices, xact_vn)
            meta.commit_vc = commit_vc
            # The transaction version number orders this transaction against
            # every other writer of the same keys (the commit queues install
            # versions in xactVN order), which is what the consistency
            # checker uses to recover per-key version orders.
            meta.version_hints = {key: float(xact_vn) for key in meta.write_set}

        # Register for the external acks *before* the decision is sent so an
        # ack arriving instantly (loopback) is not lost.
        ack_event = None
        if outcome:
            ack_event = self.sim.event(name=f"external:{txn_id}")
            self._ack_waits[txn_id] = (ack_event, set(write_replicas))

        # Propagated read-only entries whose Remove already passed through
        # this node must not be re-inserted anywhere: the Remove will not be
        # forwarded again, so a stale insertion would block the written keys'
        # pre-commit forever.
        propagated = tuple(
            entry
            for entry in sorted(
                meta.propagated_set, key=lambda e: (e.txn_id, e.snapshot)
            )
            if entry.txn_id not in self._removed_readers
        )
        for participant in participants:
            self.send(
                participant,
                Decide(
                    txn_id=txn_id,
                    commit_vc=commit_vc if outcome else meta.vc,
                    outcome=outcome,
                    propagated=propagated,
                ),
            )
            if outcome and propagated:
                for entry in propagated:
                    self.note_propagation(entry.txn_id, participant)

        if not outcome:
            meta.phase = TransactionPhase.ABORTED
            meta.abort_reason = meta.abort_reason or "validation-or-lock"
            meta.abort_time = self.sim.now
            self.counters["update_aborts"] += 1
            # Release any external-commit subscribers (none should exist for
            # an aborted writer, but a dangling watcher must never hang).
            self._external_commit_completed(txn_id, ())
            if self.history is not None:
                self.history.record_abort(meta)
            return False

        meta.phase = TransactionPhase.INTERNALLY_COMMITTED
        meta.internal_commit_time = self.sim.now

        # External commit: wait for every write replica's pre-commit ack and
        # for every observed still-pre-committing writer's external commit.
        meta.phase = TransactionPhase.PRE_COMMIT
        if not self._fault_mode:
            yield ack_event
        else:
            # Fault mode: a write replica that crashed mid-pre-commit lost
            # both the wait process and the ack; periodically ask the
            # remaining replicas to replay from their durable logs.
            retry_us = self.config.timeouts.crash_resubscribe_us
            while not ack_event.triggered:
                yield self.sim.any_of([ack_event, self.sim.timeout(retry_us)])
                if ack_event.triggered:
                    break
                waiting = self._ack_waits.get(txn_id)
                if waiting is None:
                    break
                self.counters["precommit_retries"] += 1
                for replica in sorted(waiting[1]):
                    self.send(replica, PrecommitQuery(txn_id=txn_id))
        yield from self._wait_pending_writers(meta)
        self._finish_commit(meta, "update_commits")
        self._external_commit_completed(txn_id, sorted(write_replicas))
        return True

    # ------------------------------------------------------------------
    # ExternalAck handling
    # ------------------------------------------------------------------
    def on_external_ack(self, message: ExternalAck) -> None:
        """Collect pre-commit acks; fire the wait event when all arrived."""
        waiting = self._ack_waits.get(message.txn_id)
        if waiting is None:
            return
        event, remaining = waiting
        remaining.discard(message.sender)
        if not remaining:
            del self._ack_waits[message.txn_id]
            if not event.triggered:
                event.succeed()
