"""Wire messages of the SSS protocol.

Message priorities follow the paper's implementation note: messages that
unblock other transactions (Remove, Ack, Decide) are served first by the
per-node network queues, 2PC prepare/vote traffic next, read traffic after
that.

All message types are ``__slots__`` classes (see
:mod:`repro.network.message`): one instance is allocated per protocol send,
so they carry no per-instance ``__dict__``, their priority and fixed size
component are class-level constants, and their ``size_estimate`` accounts
vector clocks at the delta-compressed wire size when the transport provides
its channel codec.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import NodeId, TransactionId
from repro.core.metadata import PropagatedEntry
from repro.network.message import Message, MessagePriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.clocks.compression import VCCodec


# Reference-stream ids for the delta codec.  Each clock-carrying message
# field diffs against the last clock *of the same field* shipped to the same
# peer (a real encoder diffs field-wise inside its wire format); mixing roles
# in one stream would make e.g. a version clock diff against a visibility
# bound, destroying delta locality.  The stream id is folded into the codec's
# peer key with integer math (peers are integer node ids on the transport
# path), so no per-call tuple is allocated.
_STREAM_TXN_VC = 0
_STREAM_MAX_VC = 1
_STREAM_VERSION_VC = 2
_STREAM_VOTE_VC = 3
_STREAM_COMMIT_VC = 4
_STREAM_READ_SET = 5
_STREAMS = 8


def vc_wire_size(
    vc: Optional[VectorClock],
    codec: Optional["VCCodec"],
    peer: object,
    stream: int = _STREAM_TXN_VC,
) -> int:
    if vc is None:
        return 0
    if codec is None:
        return 8 * vc.size
    return codec.clock_bytes(peer * _STREAMS + stream, vc)


class ReadRequest(Message):
    """Algorithm 5 line 9: request one key from a replica."""

    __slots__ = ("txn_id", "key", "vc", "has_read", "is_update")
    priority = MessagePriority.READ
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        vc: VectorClock = None,
        has_read: Tuple[bool, ...] = (),
        is_update: bool = False,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.vc = vc
        self.has_read = has_read
        self.is_update = is_update

    def size_estimate(self, codec=None, peer=None) -> int:
        # Hot path (one call per read request): vc_wire_size inlined;
        # must mirror its peer-key scheme.
        vc = self.vc
        if vc is None:
            return 48 + len(self.has_read)
        if codec is None:
            return 48 + 8 * vc.size + len(self.has_read)
        return 48 + codec.clock_bytes(peer * _STREAMS, vc) + len(self.has_read)


class ReadReturn(Message):
    """Algorithm 6 line 28: value, snapshot vector clock and propagated set.

    ``writer_pending`` is set when the returned version's writer is not yet
    known (at the serving node) to have externally committed.  The reader's
    coordinator must then delay the transaction's own external commit until
    that writer has externally committed, otherwise the client response would
    leak state that no external observer is allowed to have seen yet.

    ``stale`` means the read was *refused*: the reader's visibility bound
    hides a version whose writer's client was already answered, so serving
    under this bound would create an exclusion edge with no answer-order
    behind it (the ungated half of a Figure-2 cycle) — the value fields are
    meaningless and the coordinator restarts the read-only transaction
    under a fresh snapshot.

    ``gated`` lists writers whose *client answer* was gated behind this
    reading transaction during the read's ambiguous-zone resolution (see
    :class:`ExternalStatusQuery`): the reader's coordinator must release
    those gates when the transaction finishes or restarts.
    """

    __slots__ = (
        "txn_id",
        "key",
        "value",
        "max_vc",
        "version_vc",
        "writer",
        "propagated",
        "writer_pending",
        "stale",
        "gated",
    )
    priority = MessagePriority.READ
    base_size = 66

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        max_vc: VectorClock = None,
        version_vc: VectorClock = None,
        writer: Optional[TransactionId] = None,
        propagated: Tuple[PropagatedEntry, ...] = (),
        writer_pending: bool = False,
        stale: bool = False,
        gated: Tuple[TransactionId, ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.max_vc = max_vc
        self.version_vc = version_vc
        self.writer = writer
        self.propagated = propagated
        self.writer_pending = writer_pending
        self.stale = stale
        self.gated = gated

    def size_estimate(self, codec=None, peer=None) -> int:
        # Hot path (one call per read reply, two clocks): vc_wire_size
        # inlined; must mirror its peer-key scheme.
        size = 66 + 16 * len(self.propagated) + 16 * len(self.gated)
        max_vc = self.max_vc
        version_vc = self.version_vc
        if codec is None:
            if max_vc is not None:
                size += 8 * max_vc.size
            if version_vc is not None:
                size += 8 * version_vc.size
            return size
        base = peer * _STREAMS
        if max_vc is not None:
            size += codec.clock_bytes(base + _STREAM_MAX_VC, max_vc)
        if version_vc is not None:
            size += codec.clock_bytes(base + _STREAM_VERSION_VC, version_vc)
        return size


class Prepare(Message):
    """2PC prepare carrying the read and write keys stored by the participant.

    ``read_versions`` pairs every read key with the commit vector clock of
    the version the transaction actually observed; participants validate that
    the key has not been overwritten since (the paper's validation intent:
    "abort if some read key has been overwritten meanwhile").
    """

    __slots__ = ("txn_id", "vc", "read_versions", "write_items")
    priority = MessagePriority.COMMIT
    base_size = 64

    def __init__(
        self,
        txn_id: TransactionId = None,
        vc: VectorClock = None,
        read_versions: Tuple[Tuple[object, VectorClock], ...] = (),
        write_items: Tuple[Tuple[object, object], ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.vc = vc
        self.read_versions = read_versions
        self.write_items = write_items

    @property
    def read_keys(self) -> Tuple[object, ...]:
        return tuple(key for key, _vc in self.read_versions)

    def size_estimate(self, codec=None, peer=None) -> int:
        size = 64 + vc_wire_size(self.vc, codec, peer) + 32 * len(self.write_items)
        for _key, read_vc in self.read_versions:
            size += 16 + vc_wire_size(read_vc, codec, peer, _STREAM_READ_SET)
        return size


class Vote(Message):
    """2PC vote with the participant's proposed commit vector clock."""

    __slots__ = ("txn_id", "vc", "success")
    priority = MessagePriority.COMMIT
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        vc: VectorClock = None,
        success: bool = False,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.vc = vc
        self.success = success

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48 + vc_wire_size(self.vc, codec, peer, _STREAM_VOTE_VC)


class Decide(Message):
    """2PC decision carrying the final commit vector clock and outcome.

    The coordinator also ships the transaction's ``PropagatedSet`` so that
    write replicas can re-insert the propagated read-only entries into the
    written keys' snapshot queues when the pre-commit phase starts
    (Algorithm 3, lines 4-6).
    """

    __slots__ = ("txn_id", "commit_vc", "outcome", "propagated")
    priority = MessagePriority.CONTROL
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        commit_vc: VectorClock = None,
        outcome: bool = False,
        propagated: Tuple[PropagatedEntry, ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.commit_vc = commit_vc
        self.outcome = outcome
        self.propagated = propagated

    def size_estimate(self, codec=None, peer=None) -> int:
        return (
            56
            + vc_wire_size(self.commit_vc, codec, peer, _STREAM_COMMIT_VC)
            + 16 * len(self.propagated)
        )


class ExternalAck(Message):
    """Algorithm 4 line 5: a write replica finished its pre-commit wait."""

    __slots__ = ("txn_id", "snapshot")
    priority = MessagePriority.CONTROL
    base_size = 40

    def __init__(self, txn_id: TransactionId = None, snapshot: int = 0):
        Message.__init__(self)
        self.txn_id = txn_id
        self.snapshot = snapshot

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class ExternalDone(Message):
    """Post-external-commit notification of a writer.

    Sent by the writer's coordinator, after the writer's client has been
    answered, to the writer's write replicas and to every node subscribed via
    :class:`SubscribeExternal`.  Once received, a node knows the writer's
    versions are safe to expose to clients without an external-commit
    dependency wait (the writer's client already got its reply, so no
    external observer can be surprised by the data).

    ``done_time`` is the coordinator's external-commit timestamp.  The
    load-bearing bit is its *presence*: ``None`` marks a writer that
    finished without answering its client (abort, crash teardown) and may
    therefore be missed by later readers freely, while any timestamp marks
    an answered writer whose hidden versions make a read refuse as stale
    (see :class:`ReadReturn`).  The value itself is carried for
    diagnostics — it is what "answered" means in the model, and tests pin
    it against the coordinator's recorded commit time.
    """

    __slots__ = ("txn_id", "done_time")
    priority = MessagePriority.CONTROL
    base_size = 40

    def __init__(self, txn_id: TransactionId = None, done_time: Optional[float] = None):
        Message.__init__(self)
        self.txn_id = txn_id
        self.done_time = done_time

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class PrecommitQuery(Message):
    """Fault-plane recovery: re-request a write replica's pre-commit ack.

    Sent (fault mode only) by a coordinator whose external-commit wait
    outlived the coarse retry interval — typically because the write replica
    crashed after internally committing but before its snapshot-queue wait
    finished, losing the in-flight pre-commit process and its ExternalAck.
    The replica replays the pre-commit from its durable NLog entry.

    If the transaction never internally committed there, the Decide itself
    was lost in the crash; the query therefore doubles as a decision
    retransmission: ``commit_vc`` and ``propagated`` carry the coordinator's
    recorded commit decision, and a replica holding a durable redo record of
    its vote (see :class:`repro.storage.commit_queue.ParticipantRedoLog`)
    applies the decision exactly as the original Decide would have — closing
    the voted-then-crashed in-doubt window.
    """

    __slots__ = ("txn_id", "commit_vc", "propagated")
    priority = MessagePriority.CONTROL
    base_size = 32

    def __init__(
        self,
        txn_id: TransactionId = None,
        commit_vc: VectorClock = None,
        propagated: Tuple[PropagatedEntry, ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.commit_vc = commit_vc
        self.propagated = propagated

    def size_estimate(self, codec=None, peer=None) -> int:
        return (
            32
            + vc_wire_size(self.commit_vc, codec, peer, _STREAM_COMMIT_VC)
            + 16 * len(self.propagated)
        )


class ExternalStatusQuery(Message):
    """Ask a writer's coordinator whether the writer is externally done.

    The ambiguous-zone wait normally resolves through ExternalDone
    notifications, but the notification can be delayed past the bounded wait
    (fail-free) or swallowed for good by a crash (fault mode).  Instead of
    excluding on timeout — which would serialize the reader before a writer
    whose client may already have been answered, a real external-consistency
    violation — the reader asks the coordinator directly: a *done*
    (externally committed or torn down) answer releases the wait, an
    *in-flight* answer makes exclusion safe, and no answer (coordinator
    down, fault mode only) keeps the reader waiting — trading liveness,
    never safety.  The same query resolves stuck external-commit dependency
    waits at commit time and in-doubt redo records after a restart.

    ``gate`` (with ``reader`` naming the reading transaction) asks the
    coordinator to *gate the writer's client answer* behind the reader when
    the writer is confirmed in flight: an exclusion is externally consistent
    only if the excluded writer answers after the reader finishes — exactly
    the ordering the snapshot-queue entry would have enforced had the writer
    not already passed its local pre-commit wait.  The gate is released by
    :class:`ReleaseGate` (or the reader's Remove) when the reader commits or
    restarts.
    """

    __slots__ = ("txn_id", "reader", "gate")
    priority = MessagePriority.CONTROL
    base_size = 33

    def __init__(
        self,
        txn_id: TransactionId = None,
        reader: TransactionId = None,
        gate: bool = False,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.reader = reader
        self.gate = gate

    def size_estimate(self, codec=None, peer=None) -> int:
        return 33 + (8 if self.reader is not None else 0)


class ExternalStatusReply(Message):
    """Definitive status of a writer, from its coordinator.

    ``done`` answers the reader-path question (client answered, or torn
    down).  ``outcome`` carries the recorded 2PC decision for restarted
    participants resolving in-doubt redo records: ``True`` (decided commit,
    with ``commit_vc``/``propagated`` reproducing the lost Decide), ``False``
    (aborted / presumed abort), or ``None`` (no decision yet — the normal
    Decide will reach the now-recovered participant).
    """

    __slots__ = (
        "txn_id",
        "done",
        "done_time",
        "gated",
        "outcome",
        "commit_vc",
        "propagated",
    )
    priority = MessagePriority.CONTROL
    base_size = 42

    def __init__(
        self,
        txn_id: TransactionId = None,
        done: bool = False,
        done_time: Optional[float] = None,
        gated: bool = False,
        outcome: Optional[bool] = None,
        commit_vc: VectorClock = None,
        propagated: Tuple[PropagatedEntry, ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.done = done
        self.done_time = done_time
        self.gated = gated
        self.outcome = outcome
        self.commit_vc = commit_vc
        self.propagated = propagated

    def size_estimate(self, codec=None, peer=None) -> int:
        return (
            42
            + vc_wire_size(self.commit_vc, codec, peer, _STREAM_COMMIT_VC)
            + 16 * len(self.propagated)
        )


class SubscribeExternal(Message):
    """Ask a writer's coordinator to notify ``target`` of the external commit.

    Sent by a node that served a read from a version whose writer has not yet
    externally committed; ``target`` is the coordinator of the reading
    transaction, whose client response must wait for the writer's
    (external-commit dependency).  Subscribing at read time lets the
    notification travel while the reading transaction is still executing, so
    the commit-time wait is usually already satisfied.
    """

    __slots__ = ("txn_id", "target")
    priority = MessagePriority.CONTROL
    base_size = 36

    def __init__(self, txn_id: TransactionId = None, target: NodeId = 0):
        Message.__init__(self)
        self.txn_id = txn_id
        self.target = target

    def size_estimate(self, codec=None, peer=None) -> int:
        return 36


class ReleaseGate(Message):
    """Release a reading transaction's answer gates on the listed writers.

    Sent by the reader's coordinator to each gated writer's coordinator when
    the reader commits or restarts (and by the losing-reply cleanup for
    gates registered by replicas that lost the fastest-answer race).  A
    reader's ``Remove`` releases its gates as well, which covers crashed
    readers through the fault-mode broadcast.
    """

    __slots__ = ("txn_id", "writers")
    priority = MessagePriority.CONTROL
    base_size = 32

    def __init__(
        self,
        txn_id: TransactionId = None,
        writers: Tuple[TransactionId, ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.writers = writers

    def size_estimate(self, codec=None, peer=None) -> int:
        return 32 + 8 * len(self.writers)


class Remove(Message):
    """Notification that a read-only transaction returned to its client.

    ``keys`` restricts the cleanup to the snapshot queues of the given keys
    when provided; an empty tuple means "every local queue containing the
    transaction" (used when the message is forwarded along anti-dependency
    propagation chains, where the forwarding node does not know which keys
    the entry reached).

    ``mark_returned=False`` turns the message into a narrow entry cleanup
    that does *not* mean the transaction finished: the coordinator sends it
    to the replicas whose read replies lost the fastest-answer race, whose
    snapshot-queue entries record a serialization decision the transaction
    never adopted (and which could otherwise gate an unrelated writer's
    external commit forever).
    """

    __slots__ = ("txn_id", "keys", "mark_returned")
    priority = MessagePriority.CONTROL
    base_size = 33

    def __init__(
        self,
        txn_id: TransactionId = None,
        keys: Tuple[object, ...] = (),
        mark_returned: bool = True,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.keys = keys
        self.mark_returned = mark_returned

    def size_estimate(self, codec=None, peer=None) -> int:
        return 33 + 16 * len(self.keys)
