"""Wire messages of the SSS protocol.

Message priorities follow the paper's implementation note: messages that
unblock other transactions (Remove, Ack, Decide) are served first by the
per-node network queues, 2PC prepare/vote traffic next, read traffic after
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import NodeId, TransactionId
from repro.core.metadata import PropagatedEntry
from repro.network.message import Message, MessagePriority


def _vc_size(vc: Optional[VectorClock]) -> int:
    return 8 * vc.size if vc is not None else 0


@dataclass
class ReadRequest(Message):
    """Algorithm 5 line 9: request one key from a replica."""

    txn_id: TransactionId = None
    key: object = None
    vc: VectorClock = None
    has_read: Tuple[bool, ...] = ()
    is_update: bool = False

    def __post_init__(self) -> None:
        self.priority = MessagePriority.READ

    def size_estimate(self) -> int:
        return 48 + _vc_size(self.vc) + len(self.has_read)


@dataclass
class ReadReturn(Message):
    """Algorithm 6 line 28: value, snapshot vector clock and propagated set.

    ``writer_pending`` is set when the returned version's writer is not yet
    known (at the serving node) to have externally committed.  The reader's
    coordinator must then delay the transaction's own external commit until
    that writer has externally committed, otherwise the client response would
    leak state that no external observer is allowed to have seen yet.
    """

    txn_id: TransactionId = None
    key: object = None
    value: object = None
    max_vc: VectorClock = None
    version_vc: VectorClock = None
    writer: Optional[TransactionId] = None
    propagated: Tuple[PropagatedEntry, ...] = ()
    writer_pending: bool = False

    def __post_init__(self) -> None:
        self.priority = MessagePriority.READ

    def size_estimate(self) -> int:
        return 65 + _vc_size(self.max_vc) + _vc_size(self.version_vc) + 16 * len(
            self.propagated
        )


@dataclass
class Prepare(Message):
    """2PC prepare carrying the read and write keys stored by the participant.

    ``read_versions`` pairs every read key with the commit vector clock of
    the version the transaction actually observed; participants validate that
    the key has not been overwritten since (the paper's validation intent:
    "abort if some read key has been overwritten meanwhile").
    """

    txn_id: TransactionId = None
    vc: VectorClock = None
    read_versions: Tuple[Tuple[object, VectorClock], ...] = ()
    write_items: Tuple[Tuple[object, object], ...] = ()

    def __post_init__(self) -> None:
        self.priority = MessagePriority.COMMIT

    @property
    def read_keys(self) -> Tuple[object, ...]:
        return tuple(key for key, _vc in self.read_versions)

    def size_estimate(self) -> int:
        per_read = 16 + (8 * self.vc.size if self.vc is not None else 0)
        return (
            64
            + _vc_size(self.vc)
            + per_read * len(self.read_versions)
            + 32 * len(self.write_items)
        )


@dataclass
class Vote(Message):
    """2PC vote with the participant's proposed commit vector clock."""

    txn_id: TransactionId = None
    vc: VectorClock = None
    success: bool = False

    def __post_init__(self) -> None:
        self.priority = MessagePriority.COMMIT

    def size_estimate(self) -> int:
        return 48 + _vc_size(self.vc)


@dataclass
class Decide(Message):
    """2PC decision carrying the final commit vector clock and outcome.

    The coordinator also ships the transaction's ``PropagatedSet`` so that
    write replicas can re-insert the propagated read-only entries into the
    written keys' snapshot queues when the pre-commit phase starts
    (Algorithm 3, lines 4-6).
    """

    txn_id: TransactionId = None
    commit_vc: VectorClock = None
    outcome: bool = False
    propagated: Tuple[PropagatedEntry, ...] = ()

    def __post_init__(self) -> None:
        self.priority = MessagePriority.CONTROL

    def size_estimate(self) -> int:
        return 56 + _vc_size(self.commit_vc) + 16 * len(self.propagated)


@dataclass
class ExternalAck(Message):
    """Algorithm 4 line 5: a write replica finished its pre-commit wait."""

    txn_id: TransactionId = None
    snapshot: int = 0

    def __post_init__(self) -> None:
        self.priority = MessagePriority.CONTROL

    def size_estimate(self) -> int:
        return 40


@dataclass
class ExternalDone(Message):
    """Post-external-commit notification of a writer.

    Sent by the writer's coordinator, after the writer's client has been
    answered, to the writer's write replicas and to every node subscribed via
    :class:`SubscribeExternal`.  Once received, a node knows the writer's
    versions are safe to expose to clients without an external-commit
    dependency wait (the writer's client already got its reply, so no
    external observer can be surprised by the data).
    """

    txn_id: TransactionId = None

    def __post_init__(self) -> None:
        self.priority = MessagePriority.CONTROL

    def size_estimate(self) -> int:
        return 32


@dataclass
class SubscribeExternal(Message):
    """Ask a writer's coordinator to notify ``target`` of the external commit.

    Sent by a node that served a read from a version whose writer has not yet
    externally committed; ``target`` is the coordinator of the reading
    transaction, whose client response must wait for the writer's
    (external-commit dependency).  Subscribing at read time lets the
    notification travel while the reading transaction is still executing, so
    the commit-time wait is usually already satisfied.
    """

    txn_id: TransactionId = None
    target: NodeId = 0

    def __post_init__(self) -> None:
        self.priority = MessagePriority.CONTROL

    def size_estimate(self) -> int:
        return 36


@dataclass
class Remove(Message):
    """Notification that a read-only transaction returned to its client.

    ``keys`` restricts the cleanup to the snapshot queues of the given keys
    when provided; an empty tuple means "every local queue containing the
    transaction" (used when the message is forwarded along anti-dependency
    propagation chains, where the forwarding node does not know which keys
    the entry reached).

    ``mark_returned=False`` turns the message into a narrow entry cleanup
    that does *not* mean the transaction finished: the coordinator sends it
    to the replicas whose read replies lost the fastest-answer race, whose
    snapshot-queue entries record a serialization decision the transaction
    never adopted (and which could otherwise gate an unrelated writer's
    external commit forever).
    """

    txn_id: TransactionId = None
    keys: Tuple[object, ...] = ()
    mark_returned: bool = True

    def __post_init__(self) -> None:
        self.priority = MessagePriority.CONTROL

    def size_estimate(self) -> int:
        return 33 + 16 * len(self.keys)
