"""The snapshot queue (``SQueue``) — the heart of SSS's external consistency.

Each key replicated by a node owns one :class:`SnapshotQueue`.  Entries are
``<transaction id, insertion-snapshot, kind>`` tuples where the
insertion-snapshot is the scalar value of the transaction's vector clock at
this node's index at insertion time, and kind is ``"R"`` (read-only
transaction, inserted at read time) or ``"W"`` (update transaction, inserted
when it starts its Pre-Commit phase, i.e. only once its commit decision has
been reached).

Following the implementation note in the paper's evaluation section, the
queue is physically split into a read-only part and an update part so that
read-side scans (which only care about pending writers) and write-side scans
(which only care about older readers) stay short under read-dominated
workloads.

The queue owns a :class:`~repro.sim.events.Signal` when constructed with a
simulation: every mutation notifies the signal, which is what wakes update
transactions waiting in their Pre-Commit phase (Algorithm 4's ``wait until``)
and read-only back-off logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.common.ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.sim.events import Signal

READ_KIND = "R"
WRITE_KIND = "W"


@dataclass(frozen=True)
class SQueueEntry:
    """One snapshot-queue entry ``<T.id, insertion-snapshot, kind>``."""

    txn_id: TransactionId
    insertion_snapshot: int
    kind: str

    def is_read_only(self) -> bool:
        return self.kind == READ_KIND

    def is_update(self) -> bool:
        return self.kind == WRITE_KIND


class SnapshotQueue:
    """Ordered per-key queue of snapshot-queue entries."""

    def __init__(self, key: object, sim: Optional["Simulation"] = None):
        self.key = key
        self._readers: List[SQueueEntry] = []
        self._writers: List[SQueueEntry] = []
        self._signal: Optional["Signal"] = (
            sim.signal(name=f"squeue:{key}") if sim is not None else None
        )
        self._writer_enqueue_time: dict[TransactionId, float] = {}
        self._sim = sim

    # ------------------------------------------------------------- mutation
    def insert(self, entry: SQueueEntry) -> None:
        """Insert ``entry`` keeping each sub-queue ordered by snapshot.

        Duplicate insertions of the same transaction with the same kind are
        ignored: they occur naturally when anti-dependencies are propagated
        to a key whose queue already holds the read-only transaction.
        """
        bucket = self._readers if entry.is_read_only() else self._writers
        if any(existing.txn_id == entry.txn_id for existing in bucket):
            return
        index = len(bucket)
        for position, existing in enumerate(bucket):
            if entry.insertion_snapshot < existing.insertion_snapshot:
                index = position
                break
        bucket.insert(index, entry)
        if entry.is_update() and self._sim is not None:
            self._writer_enqueue_time[entry.txn_id] = self._sim.now
        self._notify()

    def remove(self, txn_id: TransactionId) -> bool:
        """Remove every entry of ``txn_id``; return True if anything removed."""
        removed = False
        for bucket in (self._readers, self._writers):
            kept = [entry for entry in bucket if entry.txn_id != txn_id]
            if len(kept) != len(bucket):
                bucket[:] = kept
                removed = True
        self._writer_enqueue_time.pop(txn_id, None)
        if removed:
            self._notify()
        return removed

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._readers) + len(self._writers)

    def __contains__(self, txn_id: TransactionId) -> bool:
        return any(entry.txn_id == txn_id for entry in self.entries())

    def entries(self) -> Iterable[SQueueEntry]:
        """All entries, readers then writers (each ordered by snapshot)."""
        return list(self._readers) + list(self._writers)

    def readers(self) -> List[SQueueEntry]:
        return list(self._readers)

    def writers(self) -> List[SQueueEntry]:
        return list(self._writers)

    def has_reader_below(self, snapshot: int) -> bool:
        """True if a read-only entry with insertion-snapshot < ``snapshot`` exists.

        This is the Algorithm 4 blocking condition described in the paper's
        prose: an update transaction may only externally commit once no such
        reader remains for any of its written keys.
        """
        return any(entry.insertion_snapshot < snapshot for entry in self._readers)

    def has_entry_below(self, snapshot: int, exclude_txn=None) -> bool:
        """True if *any* entry (reader or writer) has a smaller snapshot.

        This is the literal Algorithm 4 pattern ``<T'.id, T'.sid, −>`` (the
        kind is a wildcard): an update transaction also waits for conflicting
        update transactions with smaller insertion snapshots, so conflicting
        writers release their clients in serialization order.
        """
        for entry in self._readers:
            if entry.insertion_snapshot < snapshot:
                return True
        for entry in self._writers:
            if entry.txn_id == exclude_txn:
                continue
            if entry.insertion_snapshot < snapshot:
                return True
        return False

    def writers_above(self, snapshot: int) -> List[SQueueEntry]:
        """Update entries with insertion-snapshot > ``snapshot``.

        Used by Algorithm 6 to build the ``ExcludedSet``: pre-committing
        writers the reader must be serialized before.
        """
        return [
            entry for entry in self._writers if entry.insertion_snapshot > snapshot
        ]

    def oldest_writer_age(self, now: float) -> Optional[float]:
        """Age (in simulated time) of the oldest queued writer, if any.

        The starvation-avoidance back-off uses this to detect keys whose
        writers have been stuck behind readers for too long.
        """
        if not self._writer_enqueue_time:
            return None
        oldest = min(self._writer_enqueue_time.values())
        return now - oldest

    # -------------------------------------------------------------- signalling
    @property
    def signal(self) -> Optional["Signal"]:
        """Signal notified on every mutation (``None`` outside a simulation)."""
        return self._signal

    def _notify(self) -> None:
        if self._signal is not None:
            self._signal.notify()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SQueue {self.key!r} readers={len(self._readers)} "
            f"writers={len(self._writers)}>"
        )
