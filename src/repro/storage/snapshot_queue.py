"""The snapshot queue (``SQueue``) — the heart of SSS's external consistency.

Each key replicated by a node owns one :class:`SnapshotQueue`.  Entries are
``<transaction id, insertion-snapshot, kind>`` tuples where the
insertion-snapshot is the scalar value of the transaction's vector clock at
this node's index at insertion time, and kind is ``"R"`` (read-only
transaction, inserted at read time) or ``"W"`` (update transaction, inserted
when it starts its Pre-Commit phase, i.e. only once its commit decision has
been reached).

Following the implementation note in the paper's evaluation section, the
queue is physically split into a read-only part and an update part so that
read-side scans (which only care about pending writers) and write-side scans
(which only care about older readers) stay short under read-dominated
workloads.

The queue owns a :class:`~repro.sim.events.Signal` when constructed with a
simulation: every mutation notifies the signal, which is what wakes update
transactions waiting in their Pre-Commit phase (Algorithm 4's ``wait until``)
and read-only back-off logic.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.sim.events import Signal

READ_KIND = "R"
WRITE_KIND = "W"


@dataclass(frozen=True, slots=True)
class SQueueEntry:
    """One snapshot-queue entry ``<T.id, insertion-snapshot, kind>``.

    ``only_for`` scopes a *propagated* read-only entry to the update
    transaction that carried it along the anti-dependency chain: the entry
    then gates only that transaction's external commit.  A directly inserted
    entry (``only_for is None``) gates every conflicting writer.  The scoping
    matters because a propagated entry carries the reader's original
    insertion snapshot, taken at a different node: compared against an
    unrelated writer's snapshot it can claim a serialization order the
    reader's own reads contradict, and an unrelated writer blocked on such an
    entry can deadlock against the reader's external-commit dependency wait.
    """

    txn_id: TransactionId
    insertion_snapshot: int
    kind: str
    only_for: Optional[TransactionId] = None

    def is_read_only(self) -> bool:
        return self.kind == READ_KIND

    def is_update(self) -> bool:
        return self.kind == WRITE_KIND

    def gates(self, writer: Optional[TransactionId]) -> bool:
        """True if this entry gates ``writer``'s external commit."""
        return self.only_for is None or self.only_for == writer


class SnapshotQueue:
    """Ordered per-key queue of snapshot-queue entries."""

    def __init__(self, key: object, sim: Optional["Simulation"] = None):
        self.key = key
        self._readers: List[SQueueEntry] = []
        self._writers: List[SQueueEntry] = []
        # Parallel sorted snapshot lists for O(log n) positioning, and the
        # (txn, carrier) identity sets for O(1) duplicate suppression.
        self._reader_snaps: List[int] = []
        self._writer_snaps: List[int] = []
        self._reader_ids: Set[Tuple[TransactionId, Optional[TransactionId]]] = set()
        self._writer_ids: Set[Tuple[TransactionId, Optional[TransactionId]]] = set()
        # Per-transaction entry counts for O(1) membership checks: Remove
        # handling probes every key a reader may have touched, and the
        # common case is "not here".
        self._reader_txns: Dict[TransactionId, int] = {}
        self._writer_txns: Dict[TransactionId, int] = {}
        self._signal: Optional["Signal"] = (
            sim.signal(name=f"squeue:{key}") if sim is not None else None
        )
        self._writer_enqueue_time: dict[TransactionId, float] = {}
        self._sim = sim

    # ------------------------------------------------------------- mutation
    def insert(self, entry: SQueueEntry) -> None:
        """Insert ``entry`` keeping each sub-queue ordered by snapshot.

        Duplicate insertions of the same transaction with the same kind (and
        carrier scope) are ignored: they occur naturally when
        anti-dependencies are propagated to a key whose queue already holds
        the read-only transaction.
        """
        read_only = entry.is_read_only()
        ids = self._reader_ids if read_only else self._writer_ids
        identity = (entry.txn_id, entry.only_for)
        if identity in ids:
            return
        ids.add(identity)
        bucket = self._readers if read_only else self._writers
        snaps = self._reader_snaps if read_only else self._writer_snaps
        counts = self._reader_txns if read_only else self._writer_txns
        counts[entry.txn_id] = counts.get(entry.txn_id, 0) + 1
        index = bisect_right(snaps, entry.insertion_snapshot)
        snaps.insert(index, entry.insertion_snapshot)
        bucket.insert(index, entry)
        if not read_only and self._sim is not None:
            self._writer_enqueue_time[entry.txn_id] = self._sim.now
        self._notify()

    def remove(self, txn_id: TransactionId) -> bool:
        """Remove every entry of ``txn_id``; return True if anything removed."""
        if txn_id not in self._reader_txns and txn_id not in self._writer_txns:
            return False
        removed = False
        for read_only in (True, False):
            counts = self._reader_txns if read_only else self._writer_txns
            if txn_id not in counts:
                continue
            del counts[txn_id]
            removed = True
            bucket = self._readers if read_only else self._writers
            ids = self._reader_ids if read_only else self._writer_ids
            kept = []
            for entry in bucket:
                if entry.txn_id == txn_id:
                    ids.discard((entry.txn_id, entry.only_for))
                else:
                    kept.append(entry)
            bucket[:] = kept
            snaps = self._reader_snaps if read_only else self._writer_snaps
            snaps[:] = [entry.insertion_snapshot for entry in kept]
        self._writer_enqueue_time.pop(txn_id, None)
        if removed:
            self._notify()
        return removed

    def clear(self) -> int:
        """Drop every entry (crash semantics); returns the count.

        No signal notification: pre-crash waiters belong to processes that
        die with the node (see the runtime's epoch guard), and post-restart
        insertions notify as usual.
        """
        dropped = len(self._readers) + len(self._writers)
        self._readers.clear()
        self._writers.clear()
        self._reader_snaps.clear()
        self._writer_snaps.clear()
        self._reader_ids.clear()
        self._writer_ids.clear()
        self._reader_txns.clear()
        self._writer_txns.clear()
        self._writer_enqueue_time.clear()
        return dropped

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._readers) + len(self._writers)

    def __contains__(self, txn_id: TransactionId) -> bool:
        return txn_id in self._reader_txns or txn_id in self._writer_txns

    def entries(self) -> Iterable[SQueueEntry]:
        """All entries, readers then writers (each ordered by snapshot)."""
        return list(self._readers) + list(self._writers)

    def readers(self) -> List[SQueueEntry]:
        return list(self._readers)

    def writers(self) -> List[SQueueEntry]:
        return list(self._writers)

    def has_reader_below(self, snapshot: int, for_txn=None) -> bool:
        """True if a read-only entry with insertion-snapshot < ``snapshot`` exists.

        This is the Algorithm 4 blocking condition described in the paper's
        prose: an update transaction may only externally commit once no such
        reader remains for any of its written keys.  ``for_txn`` identifies
        the asking writer so that propagated entries scoped to another
        transaction are ignored.
        """
        end = bisect_left(self._reader_snaps, snapshot)
        readers = self._readers
        for index in range(end):
            if readers[index].gates(for_txn):
                return True
        return False

    def has_entry_below(self, snapshot: int, exclude_txn=None) -> bool:
        """True if *any* entry (reader or writer) has a smaller snapshot.

        This is the literal Algorithm 4 pattern ``<T'.id, T'.sid, −>`` (the
        kind is a wildcard): an update transaction also waits for conflicting
        update transactions with smaller insertion snapshots, so conflicting
        writers release their clients in serialization order.  ``exclude_txn``
        is the asking writer: its own entry never blocks it, and propagated
        reader entries scoped to a different carrier are ignored.
        """
        if self.has_reader_below(snapshot, for_txn=exclude_txn):
            return True
        end = bisect_left(self._writer_snaps, snapshot)
        writers = self._writers
        for index in range(end):
            if writers[index].txn_id != exclude_txn:
                return True
        return False

    def has_writer(self, txn_id: TransactionId) -> bool:
        """True while ``txn_id``'s pre-commit entry is still queued here."""
        return txn_id in self._writer_txns

    def writers_above(self, snapshot: int) -> List[SQueueEntry]:
        """Update entries with insertion-snapshot > ``snapshot``.

        Introspection/test helper.  (The reader-side ExcludedSet is no
        longer derived from the queue alone: see
        ``SSSNode._excluded_vcs``, which walks the version chain and applies
        the externally-done set, coverage, and the done-watermark rule.)
        """
        return self._writers[bisect_right(self._writer_snaps, snapshot):]

    def oldest_writer_age(self, now: float) -> Optional[float]:
        """Age (in simulated time) of the oldest queued writer, if any.

        The starvation-avoidance back-off uses this to detect keys whose
        writers have been stuck behind readers for too long.
        """
        if not self._writer_enqueue_time:
            return None
        oldest = min(self._writer_enqueue_time.values())
        return now - oldest

    # -------------------------------------------------------------- signalling
    @property
    def signal(self) -> Optional["Signal"]:
        """Signal notified on every mutation (``None`` outside a simulation)."""
        return self._signal

    def _notify(self) -> None:
        if self._signal is not None:
            self._signal.notify()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SQueue {self.key!r} readers={len(self._readers)} "
            f"writers={len(self._writers)}>"
        )
