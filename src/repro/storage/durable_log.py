"""Durable per-node logs for crash-consistent recovery.

The SSS participant redo log (:class:`repro.storage.commit_queue.ParticipantRedoLog`,
PR 4) established the durable-log contract this module generalizes to the
baselines:

* **force-write before externalization** — a record is written *before* the
  reply/vote/propagation that makes the state externally observable, so a
  crash can never lose state another node has already acted on;
* **replay iteration** — after a restart the log enumerates its records in a
  deterministic order so recovery is reproducible;
* **idempotent discard** — records are dropped once their transaction's
  outcome no longer needs them, and dropping twice is harmless.

Like the rest of the fault plane, these logs model durability inside the
simulator: "force-written" means the record is mutated in the same simulation
step as the action it covers (no yield point in between), and :meth:`on_crash
<repro.protocols.runtime.ProtocolRuntime.on_crash>` simply does not clear
them.  Fail-free runs never write any of these logs.

Three logs live here:

* :class:`PieceRedoLog` — ROCOCO's per-server piece log.  The piece payload
  is logged at dispatch, the assigned order before the execute-round reply,
  and execution advances a per-key **order frontier**: a recovered server
  refuses to execute any piece ordered below the frontier (order fencing),
  so a late fault-mode re-send of an earlier-ordered piece can never replay
  behind already-executed successors.
* :class:`PropagationLog` — Walter's per-site outbound propagation stream.
  It owns the site's commit sequence counter (making ``_local_seq``
  explicitly durable) and keeps, per destination, the contiguous stream of
  unacknowledged propagation records plus the acked watermark; restart and a
  fault-mode cadence retransmit everything above the watermark.
* :class:`DecisionLog` — Walter's coordinator-side slow-path decisions,
  force-written before the decide fan-out so a restarted coordinator re-fans
  the *decided* outcome (commit or abort) instead of guessing.

Executed piece records are retained for the rest of the run (they answer
fault-mode duplicate commits faithfully), like the other fault-recovery
indexes; acked propagation records are dropped at the watermark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.ids import TransactionId

NEG_INF = float("-inf")


# ----------------------------------------------------------------------
# ROCOCO: piece redo log with order fencing
# ----------------------------------------------------------------------
@dataclass
class PieceRecord:
    """One durable piece of one transaction on one key."""

    txn_id: TransactionId
    key: object
    is_write: bool
    write_value: object
    order: Optional[float] = None
    executed: bool = False
    reply: Optional[Tuple[object, int, Optional[TransactionId]]] = None
    """The (value, version, writer) the piece observed when it executed —
    the faithful answer for any later duplicate of its commit message."""


class PieceRedoLog:
    """Durable per-server log of dispatched ROCOCO pieces.

    ``log_dispatch`` is force-written before the dispatch reply,
    ``log_order`` before the execute-round reply, and ``log_execution``
    in the same step as the state mutation it records.  ``frontier(key)``
    is the highest executed order on the key — the order fence.
    """

    def __init__(self) -> None:
        self._by_key: Dict[object, Dict[TransactionId, PieceRecord]] = {}
        self._frontier: Dict[object, float] = {}

    # -- writes --------------------------------------------------------
    def log_dispatch(
        self,
        key: object,
        txn_id: TransactionId,
        is_write: bool,
        write_value: object,
    ) -> PieceRecord:
        """Persist the piece payload; idempotent for fault-mode re-sends."""
        records = self._by_key.setdefault(key, {})
        record = records.get(txn_id)
        if record is None:
            record = PieceRecord(
                txn_id=txn_id, key=key, is_write=is_write, write_value=write_value
            )
            records[txn_id] = record
        return record

    def log_order(
        self,
        key: object,
        txn_id: TransactionId,
        order: float,
        is_write: bool = False,
        write_value: object = None,
    ) -> PieceRecord:
        """Persist the assigned execution order (creating the record when the
        dispatch itself was lost and the commit payload recreated the piece)."""
        record = self.log_dispatch(key, txn_id, is_write, write_value)
        record.order = order
        return record

    def log_execution(
        self,
        key: object,
        txn_id: TransactionId,
        order: float,
        reply: Tuple[object, int, Optional[TransactionId]],
    ) -> None:
        """Mark the piece executed and advance the key's order frontier."""
        record = self.log_order(key, txn_id, order)
        record.executed = True
        record.reply = reply
        if order > self._frontier.get(key, NEG_INF):
            self._frontier[key] = order

    def discard(self, key: object, txn_id: TransactionId) -> None:
        """Drop a withdrawn (aborted-before-order) piece; idempotent."""
        records = self._by_key.get(key)
        if records is not None:
            records.pop(txn_id, None)

    # -- reads ---------------------------------------------------------
    def find(self, key: object, txn_id: TransactionId) -> Optional[PieceRecord]:
        records = self._by_key.get(key)
        if records is None:
            return None
        return records.get(txn_id)

    def frontier(self, key: object) -> float:
        """Highest executed order on ``key`` (``-inf`` before any execution)."""
        return self._frontier.get(key, NEG_INF)

    def unexecuted_records(self) -> List[PieceRecord]:
        """Logged-but-unexecuted pieces in deterministic replay order:
        keys sorted by repr, then ordered pieces by (order, txn_id), then
        unordered pieces by txn_id."""
        out: List[PieceRecord] = []
        for key in sorted(self._by_key, key=repr):
            records = [r for r in self._by_key[key].values() if not r.executed]
            ordered = sorted(
                (r for r in records if r.order is not None),
                key=lambda r: (r.order, r.txn_id),
            )
            unordered = sorted(
                (r for r in records if r.order is None), key=lambda r: r.txn_id
            )
            out.extend(ordered)
            out.extend(unordered)
        return out

    def __len__(self) -> int:
        return sum(len(records) for records in self._by_key.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PieceRedoLog keys={len(self._by_key)} records={len(self)}>"


# ----------------------------------------------------------------------
# Walter: durable propagation streams with acked watermarks
# ----------------------------------------------------------------------
@dataclass
class PropagationRecord:
    """One sequenced propagation batch bound for one destination."""

    stream_seq: int
    """Per-destination contiguous stream index (1-based).  Receivers apply in
    stream order and ack a cumulative watermark; site seqnos alone cannot
    order a destination's stream because a destination only replicates a
    subset of the site's keys."""

    txn_id: TransactionId
    origin_site: int
    seqno: int
    write_items: Tuple[Tuple[object, object], ...]


class PropagationLog:
    """Durable outbound propagation state of one Walter node.

    Owns the site's commit sequence counter and, per destination, the
    ordered unacknowledged records plus the acked watermark.  Acked records
    are dropped; everything above the watermark is retransmitted on restart
    and on the fault-mode cadence until acknowledged.
    """

    def __init__(self) -> None:
        self._seqno = 0
        self._streams: Dict[int, List[PropagationRecord]] = {}
        self._next_stream_seq: Dict[int, int] = {}
        self._acked: Dict[int, int] = {}

    # -- the durable site sequence counter -----------------------------
    @property
    def seqno(self) -> int:
        return self._seqno

    def next_seqno(self) -> int:
        """Hand out the next site commit sequence number (durable: a restarted
        preferred site never reuses a seqno it already assigned)."""
        self._seqno += 1
        return self._seqno

    # -- stream writes -------------------------------------------------
    def append(
        self,
        destination: int,
        txn_id: TransactionId,
        origin_site: int,
        seqno: int,
        write_items: Tuple[Tuple[object, object], ...],
    ) -> PropagationRecord:
        """Force-write one propagation batch before it is sent."""
        stream_seq = self._next_stream_seq.get(destination, 0) + 1
        self._next_stream_seq[destination] = stream_seq
        record = PropagationRecord(
            stream_seq=stream_seq,
            txn_id=txn_id,
            origin_site=origin_site,
            seqno=seqno,
            write_items=write_items,
        )
        self._streams.setdefault(destination, []).append(record)
        return record

    def ack(self, destination: int, watermark: int) -> None:
        """Drop every record at or below the destination's acked watermark."""
        if watermark <= self._acked.get(destination, 0):
            return
        self._acked[destination] = watermark
        stream = self._streams.get(destination)
        if stream:
            self._streams[destination] = [
                record for record in stream if record.stream_seq > watermark
            ]

    # -- reads ---------------------------------------------------------
    def unacked(self, destination: int) -> List[PropagationRecord]:
        return list(self._streams.get(destination, ()))

    def destinations_with_unacked(self) -> List[int]:
        return sorted(
            destination
            for destination, stream in self._streams.items()
            if stream
        )

    def has_unacked(self) -> bool:
        return any(stream for stream in self._streams.values())

    def acked_watermark(self, destination: int) -> int:
        return self._acked.get(destination, 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pending = sum(len(stream) for stream in self._streams.values())
        return f"<PropagationLog seqno={self._seqno} unacked={pending}>"


# ----------------------------------------------------------------------
# Walter: coordinator-side durable decisions
# ----------------------------------------------------------------------
@dataclass
class DecisionRecord:
    """One slow-path decision awaiting reliable delivery to its sites."""

    txn_id: TransactionId
    outcome: bool
    seqno: int
    sites: Tuple[int, ...] = field(default_factory=tuple)


class DecisionLog:
    """Durable slow-path decisions, force-written before the decide fan-out.

    A record lives until every site acknowledged the decide; a restarted
    coordinator re-fans every surviving record (the fan-out that was in
    flight died with the crash)."""

    def __init__(self) -> None:
        self._records: Dict[TransactionId, DecisionRecord] = {}

    def record(
        self,
        txn_id: TransactionId,
        outcome: bool,
        seqno: int,
        sites: Tuple[int, ...],
    ) -> DecisionRecord:
        record = DecisionRecord(txn_id=txn_id, outcome=outcome, seqno=seqno, sites=sites)
        self._records[txn_id] = record
        return record

    def find(self, txn_id: TransactionId) -> Optional[DecisionRecord]:
        return self._records.get(txn_id)

    def discard(self, txn_id: TransactionId) -> None:
        self._records.pop(txn_id, None)

    def txn_ids(self) -> List[TransactionId]:
        return sorted(self._records)

    def __contains__(self, txn_id: TransactionId) -> bool:
        return txn_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DecisionLog undelivered={len(self._records)}>"
