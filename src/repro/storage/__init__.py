"""Per-node storage substrate.

Everything one node keeps on its data plane lives here:

* :class:`~repro.storage.version.Version` and
  :class:`~repro.storage.version.VersionChain` — multi-versioned values,
  each version tagged with the commit vector clock of its writer.
* :class:`~repro.storage.mvstore.MultiVersionStore` — the per-node key space
  (version chains plus per-key snapshot queues).
* :class:`~repro.storage.snapshot_queue.SnapshotQueue` — the paper's
  ``SQueue``, split into read-only and update sub-queues as described in the
  evaluation section.
* :class:`~repro.storage.locks.LockTable` — per-key shared/exclusive locks
  with acquisition timeouts (the paper uses a 1 ms timeout to avoid
  deadlocks during 2PC prepare).
* :class:`~repro.storage.nlog.NLog` — the per-node ordered log of commit
  vector clocks, exposing ``most_recent_vc`` and visible-snapshot queries.
* :class:`~repro.storage.commit_queue.CommitQueue` — the paper's
  ``CommitQ`` ordering internally-committing transactions by their commit
  vector clock entry for this node.
* :mod:`~repro.storage.durable_log` — the crash-consistency logs
  (:class:`~repro.storage.durable_log.PieceRedoLog`,
  :class:`~repro.storage.durable_log.PropagationLog`,
  :class:`~repro.storage.durable_log.DecisionLog`), generalizing the SSS
  :class:`~repro.storage.commit_queue.ParticipantRedoLog` to the baselines.
"""

from repro.storage.commit_queue import CommitQueue, CommitQueueEntry
from repro.storage.durable_log import (
    DecisionLog,
    DecisionRecord,
    PieceRecord,
    PieceRedoLog,
    PropagationLog,
    PropagationRecord,
)
from repro.storage.locks import LockMode, LockTable
from repro.storage.mvstore import MultiVersionStore
from repro.storage.nlog import NLog, NLogEntry
from repro.storage.snapshot_queue import SnapshotQueue, SQueueEntry
from repro.storage.version import Version, VersionChain

__all__ = [
    "CommitQueue",
    "CommitQueueEntry",
    "DecisionLog",
    "DecisionRecord",
    "LockMode",
    "LockTable",
    "MultiVersionStore",
    "NLog",
    "NLogEntry",
    "PieceRecord",
    "PieceRedoLog",
    "PropagationLog",
    "PropagationRecord",
    "SQueueEntry",
    "SnapshotQueue",
    "Version",
    "VersionChain",
]
