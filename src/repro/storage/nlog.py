"""The per-node commit log (``NLog``).

When an update transaction completes its internal commit at node *i*, its
commit vector clock is appended to the node's ``NLog`` and its written keys
become accessible to other transactions.  ``NLog.most_recent_vc`` is the
vector clock of the latest internally committed transaction, which is what a
starting transaction snapshots and what read requests wait on (Algorithm 6,
line 5: ``wait until NLog.mostRecentVC[i] >= T.VC[i]``).

Visible-snapshot queries
------------------------
Algorithm 6 computes ``VisibleSet`` as the set of NLog vector clocks visible
to the reader and then takes the entry-wise maximum.  Scanning the whole log
for every read is O(committed transactions) and would dominate runtime in a
long simulation, so :class:`NLog` offers two query modes:

* **strict** — the literal scan over all retained entries (used by the
  correctness-focused tests and available via ``strict=True``);
* **summary** (default) — an equivalent-in-effect incremental computation:
  for nodes the reader has not read from, the visible maximum is the
  cumulative maximum over all entries; for nodes it has read from, the
  maximum is capped by the reader's own visibility bound ``T.VC[w]``.  The
  result never exceeds the reader's bounds and never admits a version that
  the strict computation would reject, so external consistency is preserved
  (the recorded histories are additionally machine-checked by
  :mod:`repro.consistency`).

The log is garbage collected to a bounded window; the cumulative maximum is
kept across truncations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Set

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.sim.events import Signal


@dataclass(frozen=True)
class NLogEntry:
    """One internally committed transaction recorded in the node log."""

    txn_id: TransactionId
    vc: VectorClock
    write_keys: tuple
    commit_time: float


class NLog:
    """Ordered log of commit vector clocks for one node."""

    def __init__(
        self,
        node_index: int,
        n_nodes: int,
        sim: Optional["Simulation"] = None,
        retention: int = 4_096,
    ):
        self.node_index = node_index
        self.n_nodes = n_nodes
        self.retention = retention
        self._entries: List[NLogEntry] = []
        self._most_recent_vc = VectorClock.zeros(n_nodes)
        self._cumulative_max = VectorClock.zeros(n_nodes)
        self._signal: Optional["Signal"] = (
            sim.signal(name=f"nlog:{node_index}") if sim is not None else None
        )
        self.total_appended = 0

    # ------------------------------------------------------------ mutation
    def append(self, entry: NLogEntry) -> None:
        """Record an internal commit and advance ``most_recent_vc``."""
        self._entries.append(entry)
        self.total_appended += 1
        self._most_recent_vc = entry.vc
        self._cumulative_max = self._cumulative_max.merge(entry.vc)
        if self.retention and len(self._entries) > self.retention:
            overflow = len(self._entries) - self.retention
            del self._entries[:overflow]
        if self._signal is not None:
            self._signal.notify()

    # ------------------------------------------------------------ accessors
    @property
    def most_recent_vc(self) -> VectorClock:
        """Vector clock of the latest internally committed transaction."""
        return self._most_recent_vc

    @property
    def cumulative_max_vc(self) -> VectorClock:
        """Entry-wise maximum over every entry ever appended."""
        return self._cumulative_max

    @property
    def signal(self) -> Optional["Signal"]:
        """Signal notified on every append (read requests wait on it)."""
        return self._signal

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Sequence[NLogEntry]:
        return tuple(self._entries)

    def local_value(self) -> int:
        """``most_recent_vc[i]`` for this node's own index."""
        return self._most_recent_vc[self.node_index]

    # ------------------------------------------------------------ queries
    def visible_max_vc(
        self,
        reader_vc: VectorClock,
        has_read: Sequence[bool],
        excluded: Iterable[VectorClock] = (),
        strict: bool = False,
    ) -> VectorClock:
        """Entry-wise maximum vector clock visible to a reader.

        Parameters
        ----------
        reader_vc:
            The reader's current ``T.VC`` (its visibility upper bound).
        has_read:
            The reader's ``T.hasRead`` flags; visibility is constrained only
            on indices already read from.
        excluded:
            Commit vector clocks of update transactions the reader must not
            observe (Algorithm 6's ``ExcludedSet``: pre-committing writers of
            the requested key with insertion-snapshot above the reader's
            bound).
        strict:
            Use the literal whole-log scan instead of the summary
            computation.
        """
        if strict:
            return self._visible_max_strict(reader_vc, has_read, set(excluded))
        return self._visible_max_summary(reader_vc, has_read, list(excluded))

    def _visible_max_strict(
        self,
        reader_vc: VectorClock,
        has_read: Sequence[bool],
        excluded: Set[VectorClock],
    ) -> VectorClock:
        visible_vcs = []
        for entry in self._entries:
            vc = entry.vc
            if vc in excluded:
                continue
            visible = all(
                not flag or vc[index] <= reader_vc[index]
                for index, flag in enumerate(has_read)
            )
            if visible:
                visible_vcs.append(vc)
        return VectorClock.zeros(self.n_nodes).merge_many(visible_vcs)

    def _visible_max_summary(
        self,
        reader_vc: VectorClock,
        has_read: Sequence[bool],
        excluded: List[VectorClock],
    ) -> VectorClock:
        cumulative = self._cumulative_max
        if not excluded and not any(has_read):
            # First read of a transaction: the visible maximum is simply the
            # cumulative maximum (no bounds to apply, nothing excluded).
            return cumulative
        entries = list(cumulative.entries)
        for index, flag in enumerate(has_read):
            if flag:
                bound = reader_vc[index]
                if entries[index] > bound:
                    entries[index] = bound
        # Stay below every excluded writer on this node's own coordinate so
        # that the reader's insertion-snapshot orders it before those writers.
        local = self.node_index
        for vc in excluded:
            if vc[local] > reader_vc[local] and entries[local] >= vc[local]:
                entries[local] = vc[local] - 1
        entries_tuple = tuple(entries)
        if entries_tuple == cumulative.entries:
            return cumulative
        return VectorClock._shared(entries_tuple)

    def contains_txn(self, txn_id: TransactionId) -> bool:
        """True if ``txn_id`` appears among the retained entries."""
        return any(entry.txn_id == txn_id for entry in self._entries)

    def find(self, txn_id: TransactionId) -> Optional[NLogEntry]:
        """Retained entry of ``txn_id``, or ``None`` (fault-plane recovery).

        Linear over the retention window: only the crash-recovery path uses
        it, never the fail-free hot path.
        """
        for entry in self._entries:
            if entry.txn_id == txn_id:
                return entry
        return None
