"""Per-key shared/exclusive lock table with acquisition timeouts.

The 2PC prepare phase of SSS (Algorithm 2) and of the 2PC-baseline acquires
exclusive locks on the write-set keys and shared locks on the read-set keys
stored by the participant.  The paper avoids distributed deadlocks by giving
lock acquisition a timeout (1 ms on their cluster); a timed-out prepare votes
``no`` and the transaction aborts.

:class:`LockTable` implements that model on simulated time:

* ``acquire_all`` acquires a set of keys in a canonical (sorted) order to cut
  down on local deadlocks, waiting in FIFO order behind incompatible holders,
  and gives up when the per-acquisition timeout budget is exhausted —
  releasing everything it had obtained.
* Shared locks are compatible with shared locks; exclusive locks are
  compatible with nothing.  A transaction that already holds an exclusive
  lock implicitly holds the shared lock; a shared holder that is the only
  holder may upgrade to exclusive.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Set, Tuple

from repro.common.ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _KeyLockState:
    """Lock state of a single key."""

    holders: Dict[TransactionId, LockMode] = field(default_factory=dict)
    waiters: Deque[Tuple[TransactionId, LockMode, object]] = field(default_factory=deque)

    def compatible(self, txn_id: TransactionId, mode: LockMode) -> bool:
        """Can ``txn_id`` obtain ``mode`` given current holders?"""
        others = {t: m for t, m in self.holders.items() if t != txn_id}
        if not others:
            return True
        if mode is LockMode.SHARED:
            return all(m is LockMode.SHARED for m in others.values())
        return False


class LockTable:
    """Lock manager for the keys stored by one node."""

    def __init__(self, sim: "Simulation", name: str = "", owner=None):
        self.sim = sim
        self.name = name
        #: Owning node id, used to place lock-wait trace spans on its track.
        self.owner = owner
        self._keys: Dict[object, _KeyLockState] = {}
        self.acquired_count = 0
        self.timeout_count = 0

    # ------------------------------------------------------------ primitives
    def _state(self, key: object) -> _KeyLockState:
        if key not in self._keys:
            self._keys[key] = _KeyLockState()
        return self._keys[key]

    def holders(self, key: object) -> Dict[TransactionId, LockMode]:
        """Current holders of ``key`` (copy)."""
        return dict(self._state(key).holders)

    def holds(self, txn_id: TransactionId, key: object) -> bool:
        return txn_id in self._state(key).holders

    def try_acquire(self, txn_id: TransactionId, key: object, mode: LockMode) -> bool:
        """Non-blocking acquisition attempt."""
        state = self._state(key)
        current = state.holders.get(txn_id)
        if current is LockMode.EXCLUSIVE or current is mode:
            return True
        if current is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            # Upgrade allowed only when we are the sole holder.
            if len(state.holders) == 1:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                return True
            return False
        if state.compatible(txn_id, mode) and not state.waiters:
            state.holders[txn_id] = mode
            self.acquired_count += 1
            return True
        return False

    def release(self, txn_id: TransactionId, keys: Iterable[object]) -> None:
        """Release ``txn_id``'s locks on ``keys`` and wake eligible waiters."""
        for key in keys:
            state = self._keys.get(key)
            if state is None:
                continue
            if txn_id in state.holders:
                del state.holders[txn_id]
            self._grant_waiters(key, state)

    def release_all(self, txn_id: TransactionId) -> None:
        """Release every lock held by ``txn_id`` (abort cleanup)."""
        for key, state in list(self._keys.items()):
            if txn_id in state.holders:
                del state.holders[txn_id]
                self._grant_waiters(key, state)

    def reset(self) -> None:
        """Forget every holder and waiter (crash semantics).

        Waiters are not granted or woken: their ``acquire_all`` generators
        self-terminate through their acquisition timeout (or die with the
        crashed node's epoch), so simply dropping the table is safe.
        """
        self._keys.clear()

    def reset_except(self, keep) -> None:
        """Crash semantics with durable prepared state.

        Drops every waiter and every holder whose transaction is not in
        ``keep`` — the textbook participant model where only *prepared*
        transactions' locks survive recovery (and keep blocking, which is
        2PC's in-doubt window).
        """
        for state in self._keys.values():
            state.waiters.clear()
            for txn_id in [t for t in state.holders if t not in keep]:
                del state.holders[txn_id]

    def _grant_waiters(self, key: object, state: _KeyLockState) -> None:
        """Grant queued waiters in FIFO order while compatible."""
        while state.waiters:
            txn_id, mode, event = state.waiters[0]
            if event.triggered:
                state.waiters.popleft()
                continue
            if not state.compatible(txn_id, mode):
                break
            state.waiters.popleft()
            state.holders[txn_id] = mode
            self.acquired_count += 1
            event.succeed(True)

    # ------------------------------------------------------------ blocking API
    def acquire_all(
        self,
        txn_id: TransactionId,
        exclusive_keys: Iterable[object],
        shared_keys: Iterable[object] = (),
        timeout_us: float = 1_000.0,
    ):
        """Process generator acquiring all requested locks or giving up.

        Yields simulation events; the generator's return value is ``True``
        when every lock was obtained and ``False`` on timeout (in which case
        every lock obtained along the way has been released).

        Use as ``ok = yield from lock_table.acquire_all(...)`` inside a node
        handler process.
        """
        exclusive = sorted(set(exclusive_keys), key=repr)
        shared = sorted(set(shared_keys) - set(exclusive), key=repr)
        plan: List[Tuple[object, LockMode]] = [
            (key, LockMode.EXCLUSIVE) for key in exclusive
        ] + [(key, LockMode.SHARED) for key in shared]
        acquired: Set[object] = set()
        deadline = self.sim.now + timeout_us

        for key, mode in plan:
            if self.try_acquire(txn_id, key, mode):
                acquired.add(key)
                continue
            remaining = deadline - self.sim.now
            if remaining <= 0:
                self._abandon(txn_id, acquired)
                return False
            state = self._state(key)
            tracer = self.sim.tracer
            if tracer is not None:
                wait_start = self.sim.now
                # The holders at queue time are who this transaction is
                # blocked behind — the causal links of the wait span.
                blocked_on = sorted(t for t in state.holders if t != txn_id)
            grant = self.sim.event(name=f"lock-wait:{key}")
            state.waiters.append((txn_id, mode, grant))
            expiry = self.sim.timeout(remaining)
            yield self.sim.any_of([grant, expiry])
            # Check the grant event itself rather than the AnyOf value: the
            # grant may have been handed to us at the same instant the
            # timeout fired, and it must not be leaked in that case.
            if grant.triggered:
                acquired.add(key)
                if tracer is not None:
                    tracer.span(
                        "wait.lock",
                        wait_start,
                        txn=txn_id,
                        node=self.owner,
                        link=blocked_on,
                        args={"key": str(key), "outcome": "granted"},
                    )
            else:
                # Timed out while queued: withdraw the waiter and give up.
                state.waiters = deque(waiter for waiter in state.waiters if waiter[2] is not grant)
                self.timeout_count += 1
                if tracer is not None:
                    tracer.span(
                        "wait.lock_timeout",
                        wait_start,
                        txn=txn_id,
                        node=self.owner,
                        link=blocked_on,
                        args={"key": str(key), "outcome": "timeout"},
                    )
                self._abandon(txn_id, acquired)
                return False
        return True

    def _abandon(self, txn_id: TransactionId, acquired: Set[object]) -> None:
        if acquired:
            self.release(txn_id, acquired)

    # ------------------------------------------------------------ inspection
    def locked_keys(self) -> List[object]:
        """Keys currently held by at least one transaction."""
        return [key for key, state in self._keys.items() if state.holders]

    def waiting_count(self) -> int:
        """Number of queued (not yet granted) waiters across all keys."""
        return sum(len(state.waiters) for state in self._keys.values())
