"""The per-node multi-version key space.

:class:`MultiVersionStore` owns, for every key replicated by the node, the
version chain and the snapshot queue.  It also exposes bulk initialization
(used to pre-load the YCSB key space before an experiment) and simple
accounting used by the harness and the garbage-collection tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Optional

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId
from repro.storage.snapshot_queue import SnapshotQueue
from repro.storage.version import Version, VersionChain

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class MultiVersionStore:
    """Multi-versioned key-value repository of one node."""

    def __init__(
        self,
        node_index: int,
        sim: Optional["Simulation"] = None,
        max_versions_per_key: Optional[int] = None,
    ):
        self.node_index = node_index
        self._sim = sim
        self.max_versions_per_key = max_versions_per_key
        self._chains: Dict[object, VersionChain] = {}
        self._squeues: Dict[object, SnapshotQueue] = {}

    # ------------------------------------------------------------ key space
    def preload(self, keys: Iterable[object], initial_value=0, n_nodes: int = 1) -> None:
        """Install version zero of every key with the all-zero vector clock."""
        zero = VectorClock.zeros(n_nodes)
        for key in keys:
            chain = self._chain(key)
            if len(chain) == 0:
                chain.install(Version(value=initial_value, vc=zero, writer=None))

    def has_key(self, key: object) -> bool:
        return key in self._chains

    def keys(self) -> Iterator[object]:
        return iter(self._chains)

    def __len__(self) -> int:
        return len(self._chains)

    # ------------------------------------------------------------ versions
    def _chain(self, key: object) -> VersionChain:
        chain = self._chains.get(key)
        if chain is None:
            chain = VersionChain(key=key, max_length=self.max_versions_per_key)
            self._chains[key] = chain
        return chain

    def chain(self, key: object) -> VersionChain:
        """The version chain of ``key`` (created empty if absent)."""
        return self._chain(key)

    def latest(self, key: object) -> Version:
        """Most recent installed version of ``key``."""
        return self._chain(key).latest

    def install(
        self,
        key: object,
        value,
        vc: VectorClock,
        writer: Optional[TransactionId] = None,
    ) -> Version:
        """Append a committed version of ``key`` and return it."""
        version = Version(
            value=value,
            vc=vc,
            writer=writer,
            commit_time=self._sim.now if self._sim is not None else 0.0,
        )
        self._chain(key).install(version)
        return version

    # ------------------------------------------------------------ snapshot queues
    def squeue(self, key: object) -> SnapshotQueue:
        """The snapshot queue of ``key`` (created lazily)."""
        squeue = self._squeues.get(key)
        if squeue is None:
            squeue = SnapshotQueue(key, sim=self._sim)
            self._squeues[key] = squeue
        return squeue

    def squeues(self) -> Dict[object, SnapshotQueue]:
        """All instantiated snapshot queues (for GC accounting and tests)."""
        return dict(self._squeues)

    # ------------------------------------------------------------ accounting
    def total_versions(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    def total_queued_entries(self) -> int:
        return sum(len(queue) for queue in self._squeues.values())

    def truncate_history(self, min_versions: int = 1) -> int:
        """Drop old versions on every chain; return the number removed."""
        return sum(chain.truncate_before(min_versions) for chain in self._chains.values())
