"""The per-node commit queue (``CommitQ``).

``CommitQ`` serializes the *apply* step of internally committing update
transactions on each node: entries are ordered by the node-local component of
their commit vector clock, a transaction's versions are installed only when
it reaches the head of the queue with a ``ready`` status, and non-conflicting
transactions therefore commit in the same relative order on every node they
share (Section III-A).

An entry is inserted as ``pending`` during the 2PC prepare phase carrying the
proposed vector clock; the Decide message upgrades it to ``ready`` with the
final commit vector clock, which may move the entry within the queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.sim.events import Signal


class CommitStatus(enum.Enum):
    PENDING = "pending"
    READY = "ready"


@dataclass
class CommitQueueEntry:
    """One queued transaction ``<T, vc, status>``."""

    txn_id: TransactionId
    vc: VectorClock
    status: CommitStatus = CommitStatus.PENDING
    enqueue_time: float = field(default=0.0)

    def order_key(self, node_index: int):
        """Ordering key: the node-local vector clock entry, ties by id."""
        return (self.vc[node_index], self.txn_id)


class CommitQueue:
    """Ordered queue of transactions committing at one node."""

    def __init__(self, node_index: int, sim: Optional["Simulation"] = None):
        self.node_index = node_index
        self._entries: List[CommitQueueEntry] = []
        self._signal: Optional["Signal"] = (
            sim.signal(name=f"commitq:{node_index}") if sim is not None else None
        )
        self._sim = sim

    # ------------------------------------------------------------ mutation
    def put(self, txn_id: TransactionId, vc: VectorClock) -> CommitQueueEntry:
        """Insert a ``pending`` entry with the proposed vector clock."""
        if self.find(txn_id) is not None:
            raise ValueError(f"{txn_id} already queued")
        entry = CommitQueueEntry(
            txn_id=txn_id,
            vc=vc,
            status=CommitStatus.PENDING,
            enqueue_time=self._sim.now if self._sim is not None else 0.0,
        )
        self._entries.append(entry)
        self._sort()
        self._notify()
        return entry

    def update(self, txn_id: TransactionId, vc: VectorClock) -> CommitQueueEntry:
        """Set the final commit vector clock and mark the entry ``ready``."""
        entry = self.find(txn_id)
        if entry is None:
            raise KeyError(f"{txn_id} not in commit queue")
        entry.vc = vc
        entry.status = CommitStatus.READY
        self._sort()
        self._notify()
        return entry

    def remove(self, txn_id: TransactionId) -> bool:
        """Drop the entry of ``txn_id`` (commit applied, or abort)."""
        before = len(self._entries)
        self._entries = [entry for entry in self._entries if entry.txn_id != txn_id]
        removed = len(self._entries) != before
        if removed:
            self._notify()
        return removed

    # ------------------------------------------------------------- queries
    def find(self, txn_id: TransactionId) -> Optional[CommitQueueEntry]:
        for entry in self._entries:
            if entry.txn_id == txn_id:
                return entry
        return None

    def head(self) -> Optional[CommitQueueEntry]:
        """The entry with the smallest node-local vector clock entry."""
        return self._entries[0] if self._entries else None

    def head_is_ready(self) -> bool:
        head = self.head()
        return head is not None and head.status is CommitStatus.READY

    def min_pending_local(self) -> Optional[int]:
        """Smallest node-local clock entry among queued installs, if any."""
        return self._entries[0].vc[self.node_index] if self._entries else None

    def has_entry_at_or_below(self, value: int) -> bool:
        """True if some queued install has a node-local clock entry <= ``value``.

        Entries are sorted by the node-local component, and a pending entry's
        proposed clock can only grow when the Decide finalizes it, so checking
        the head is sufficient and the answer can only flip to False.  Readers
        use this to make sure every install inside their visibility bound has
        been applied: the NLog scalar alone is ambiguous because distinct
        transactions can carry the same node-local clock value (``xactVN`` is
        copied to every write-replica coordinate, colliding with values other
        prepares already claimed there).
        """
        head = self._entries[0] if self._entries else None
        return head is not None and head.vc[self.node_index] <= value

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[CommitQueueEntry]:
        return list(self._entries)

    def clear(self) -> int:
        """Drop every queued entry (crash semantics); returns the count.

        The signal is *not* notified: waiters parked before the crash belong
        to processes that die with the node, and the next real mutation
        after a restart notifies as usual.
        """
        dropped = len(self._entries)
        self._entries = []
        return dropped

    # ------------------------------------------------------------- internals
    def _sort(self) -> None:
        self._entries.sort(key=lambda entry: entry.order_key(self.node_index))

    def _notify(self) -> None:
        if self._signal is not None:
            self._signal.notify()

    @property
    def signal(self) -> Optional["Signal"]:
        """Signal notified on every mutation (drives head processing)."""
        return self._signal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CommitQueue node={self.node_index} len={len(self._entries)}>"
