"""The per-node commit queue (``CommitQ``) and the participant redo log.

``CommitQ`` serializes the *apply* step of internally committing update
transactions on each node: entries are ordered by the node-local component of
their commit vector clock, a transaction's versions are installed only when
it reaches the head of the queue with a ``ready`` status, and non-conflicting
transactions therefore commit in the same relative order on every node they
share (Section III-A).

An entry is inserted as ``pending`` during the 2PC prepare phase carrying the
proposed vector clock; the Decide message upgrades it to ``ready`` with the
final commit vector clock, which may move the entry within the queue.

The commit queue itself is volatile (a crash drops it), which historically
opened the classic 2PC in-doubt window on the SSS side: a write replica that
crashed after voting lost its queue entry and pending writes, and the
coordinator's ``PrecommitQuery`` recovery missed because nothing durable
recorded the vote.  :class:`ParticipantRedoLog` closes that window — a
participant force-writes a redo record before voting yes (exactly like the
2PC-baseline's durable prepared state) and the restart replay rebuilds the
queue from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.sim.events import Signal


class CommitStatus(enum.Enum):
    PENDING = "pending"
    READY = "ready"


@dataclass
class CommitQueueEntry:
    """One queued transaction ``<T, vc, status>``."""

    txn_id: TransactionId
    vc: VectorClock
    status: CommitStatus = CommitStatus.PENDING
    enqueue_time: float = field(default=0.0)

    def order_key(self, node_index: int):
        """Ordering key: the node-local vector clock entry, ties by id."""
        return (self.vc[node_index], self.txn_id)


class CommitQueue:
    """Ordered queue of transactions committing at one node."""

    def __init__(self, node_index: int, sim: Optional["Simulation"] = None):
        self.node_index = node_index
        self._entries: List[CommitQueueEntry] = []
        self._signal: Optional["Signal"] = (
            sim.signal(name=f"commitq:{node_index}") if sim is not None else None
        )
        self._sim = sim

    # ------------------------------------------------------------ mutation
    def put(self, txn_id: TransactionId, vc: VectorClock) -> CommitQueueEntry:
        """Insert a ``pending`` entry with the proposed vector clock."""
        if self.find(txn_id) is not None:
            raise ValueError(f"{txn_id} already queued")
        entry = CommitQueueEntry(
            txn_id=txn_id,
            vc=vc,
            status=CommitStatus.PENDING,
            enqueue_time=self._sim.now if self._sim is not None else 0.0,
        )
        self._entries.append(entry)
        self._sort()
        self._notify()
        return entry

    def update(self, txn_id: TransactionId, vc: VectorClock) -> CommitQueueEntry:
        """Set the final commit vector clock and mark the entry ``ready``."""
        entry = self.find(txn_id)
        if entry is None:
            raise KeyError(f"{txn_id} not in commit queue")
        entry.vc = vc
        entry.status = CommitStatus.READY
        self._sort()
        self._notify()
        return entry

    def remove(self, txn_id: TransactionId) -> bool:
        """Drop the entry of ``txn_id`` (commit applied, or abort)."""
        before = len(self._entries)
        self._entries = [entry for entry in self._entries if entry.txn_id != txn_id]
        removed = len(self._entries) != before
        if removed:
            self._notify()
        return removed

    # ------------------------------------------------------------- queries
    def find(self, txn_id: TransactionId) -> Optional[CommitQueueEntry]:
        for entry in self._entries:
            if entry.txn_id == txn_id:
                return entry
        return None

    def head(self) -> Optional[CommitQueueEntry]:
        """The entry with the smallest node-local vector clock entry."""
        return self._entries[0] if self._entries else None

    def head_is_ready(self) -> bool:
        head = self.head()
        return head is not None and head.status is CommitStatus.READY

    def min_pending_local(self) -> Optional[int]:
        """Smallest node-local clock entry among queued installs, if any."""
        return self._entries[0].vc[self.node_index] if self._entries else None

    def has_entry_at_or_below(self, value: int) -> bool:
        """True if some queued install has a node-local clock entry <= ``value``.

        Entries are sorted by the node-local component, and a pending entry's
        proposed clock can only grow when the Decide finalizes it, so checking
        the head is sufficient and the answer can only flip to False.  Readers
        use this to make sure every install inside their visibility bound has
        been applied: the NLog scalar alone is ambiguous because distinct
        transactions can carry the same node-local clock value (``xactVN`` is
        copied to every write-replica coordinate, colliding with values other
        prepares already claimed there).
        """
        head = self._entries[0] if self._entries else None
        return head is not None and head.vc[self.node_index] <= value

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[CommitQueueEntry]:
        return list(self._entries)

    def clear(self) -> int:
        """Drop every queued entry (crash semantics); returns the count.

        The signal is *not* notified: waiters parked before the crash belong
        to processes that die with the node, and the next real mutation
        after a restart notifies as usual.
        """
        dropped = len(self._entries)
        self._entries = []
        return dropped

    # ------------------------------------------------------------- internals
    def _sort(self) -> None:
        self._entries.sort(key=lambda entry: entry.order_key(self.node_index))

    def _notify(self) -> None:
        if self._signal is not None:
            self._signal.notify()

    @property
    def signal(self) -> Optional["Signal"]:
        """Signal notified on every mutation (drives head processing)."""
        return self._signal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CommitQueue node={self.node_index} len={len(self._entries)}>"


# ----------------------------------------------------------------------
# Participant redo log
# ----------------------------------------------------------------------
@dataclass
class RedoRecord:
    """Durable record of one vote this node cast as a write replica.

    ``vc`` is the proposed vector clock at vote time; once the decision
    arrives it is replaced by the final commit clock and ``decided`` flips.
    ``write_items`` carries the payload needed to re-apply after a crash
    (the in-memory pending-writes buffer dies with the process);
    ``read_keys`` lets the restart re-pin the prepared locks.
    """

    txn_id: TransactionId
    vc: VectorClock
    write_items: Tuple[Tuple[object, object], ...]
    read_keys: Tuple[object, ...]
    decided: bool = False
    propagated: Tuple = ()


class ParticipantRedoLog:
    """Durable redo log of votes cast by a 2PC write-replica participant.

    Modelled as force-written before the Vote message leaves the node (the
    same durability assumption the 2PC-baseline makes for its prepared
    state), so it survives crashes.  A record lives from the yes-vote until
    the transaction either aborts or internally commits — from then on the
    NLog entry is the durable truth and ``PrecommitQuery`` replays from it.
    """

    def __init__(self) -> None:
        self._records: Dict[TransactionId, RedoRecord] = {}

    def record_vote(
        self,
        txn_id: TransactionId,
        vc: VectorClock,
        write_items: Tuple[Tuple[object, object], ...],
        read_keys: Tuple[object, ...],
    ) -> RedoRecord:
        """Force-write the vote record (before the Vote message is sent)."""
        record = RedoRecord(txn_id=txn_id, vc=vc, write_items=write_items, read_keys=read_keys)
        self._records[txn_id] = record
        return record

    def record_decision(
        self, txn_id: TransactionId, commit_vc: VectorClock, propagated: Tuple = ()
    ) -> None:
        """Overwrite the proposed clock with the decided commit clock."""
        record = self._records.get(txn_id)
        if record is None:
            return
        record.vc = commit_vc
        record.decided = True
        record.propagated = propagated

    def discard(self, txn_id: TransactionId) -> None:
        """Retire a record (internal commit reached the NLog, or abort)."""
        self._records.pop(txn_id, None)

    def find(self, txn_id: TransactionId) -> Optional[RedoRecord]:
        return self._records.get(txn_id)

    def __contains__(self, txn_id: TransactionId) -> bool:
        return txn_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def txn_ids(self):
        """The logged transaction ids (sorted, for deterministic replay)."""
        return sorted(self._records)

    def records(self) -> List[RedoRecord]:
        """All records in sorted transaction-id order (restart replay)."""
        return [self._records[txn_id] for txn_id in sorted(self._records)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ParticipantRedoLog len={len(self._records)}>"
