"""Multi-versioned values.

Each key stores a chain of :class:`Version` objects, newest last.  A version
records the value, the commit vector clock of the transaction that produced
it, the writer's identifier and the simulated commit time (the latter only
for tracing and metrics — the protocols never read physical time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.clocks.vector_clock import VectorClock
from repro.common.ids import TransactionId


@dataclass(frozen=True)
class Version:
    """One committed version of a key."""

    value: object
    vc: VectorClock
    writer: Optional[TransactionId] = None
    commit_time: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        writer = f" by {self.writer}" if self.writer is not None else ""
        return f"<Version {self.value!r} {self.vc}{writer}>"


@dataclass
class VersionChain:
    """Ordered chain of versions of one key (oldest first, newest last).

    The chain supports the two access patterns used by the protocols:
    ``latest`` (update transactions always read the most recent version) and
    a backwards walk from the newest version used by read-only version
    selection (Algorithm 6's ``ver <- ver.prev`` loop).
    """

    key: object
    versions: List[Version] = field(default_factory=list)
    max_length: Optional[int] = None
    """Optional cap on retained history; ``None`` keeps every version."""

    def __len__(self) -> int:
        return len(self.versions)

    def __iter__(self) -> Iterator[Version]:
        return iter(self.versions)

    @property
    def latest(self) -> Version:
        """The most recently installed version."""
        if not self.versions:
            raise KeyError(f"key {self.key!r} has no versions")
        return self.versions[-1]

    def install(self, version: Version) -> None:
        """Append a new committed version (the ``apply`` step of commit).

        Versions must be installed in the node's commit order; the commit
        queue guarantees that ordering for every protocol in this repository.
        """
        self.versions.append(version)
        if self.max_length is not None and len(self.versions) > self.max_length:
            overflow = len(self.versions) - self.max_length
            del self.versions[:overflow]

    def newest_to_oldest(self) -> Iterator[Version]:
        """Iterate versions starting from the most recent one."""
        return reversed(self.versions)

    def find_newest(self, predicate) -> Optional[Version]:
        """Return the newest version satisfying ``predicate``, or ``None``."""
        for version in self.newest_to_oldest():
            if predicate(version):
                return version
        return None

    def truncate_before(self, min_versions: int = 1) -> int:
        """Drop old versions, keeping at least ``min_versions``; return count."""
        if len(self.versions) <= min_versions:
            return 0
        dropped = len(self.versions) - min_versions
        del self.versions[:dropped]
        return dropped
