"""Node-sharded conservative parallel experiment driver.

``run_parallel_experiment`` is the engine behind
``run_experiment(engine="parallel")``: it splits the cluster's nodes over
``shards`` (contiguous blocks, :func:`repro.sim.shard.shard_of`), builds one
complete :class:`~repro.sim.engine.Simulation` +
:class:`~repro.sim.shard.ShardNetwork` + cluster facade per shard — each
constructing only its owned nodes and their closed-loop clients — and runs
all shards in lock-stepped windows of the *lookahead* ``L`` (the minimum
cross-node network latency).  At each window barrier the shards exchange the
messages addressed to each other's nodes; inside a window they never
interact, because no message sent in the window can be due before the next
barrier.  An empty exchange is the scheme's null message.

Two execution modes share the exact same barrier schedule and exchange
logic:

* ``mode="process"`` — one worker process per shard (fork-preferred),
  star-topology pipes to the parent, which routes exports between shards.
  This is the scaling mode: event execution is pure Python, so real
  parallelism needs separate interpreters.
* ``mode="inline"`` — every shard in the calling process.  Zero pickling,
  byte-identical results; used by the equivalence tests and for debugging.

Determinism: unit-local engine keys, sender-local delivery keys, and
control-unit fault events (see :mod:`repro.sim.engine` /
:mod:`repro.sim.shard`) make every shard assign exactly the keys the serial
engine would, so the merged run is byte-identical to
``run_experiment(engine="serial")`` — histories, client statistics, network
and protocol counters.  The serial engine remains the golden reference;
``tests/unit/test_parallel_engine.py`` pins the equivalence for every
protocol × fault-plan combination and across shard counts.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.consistency.checkers import (
    CheckResult,
    check_committed_reads,
    check_external_consistency,
    check_serializability,
)
from repro.harness.streaming import StreamingAccumulator
from repro.network.transport import NetworkStats
from repro.protocols.registry import build_cluster
from repro.sim.engine import Simulation
from repro.sim.shard import (
    ShardHistoryRecorder,
    ShardNetwork,
    merge_shard_histories,
    safe_lookahead,
    shard_node_ids,
    shard_of,
)
from repro.trace.spec import TraceSpec
from repro.workload.profiles import WorkloadGenerator
from repro.workload.ycsb import ClientStats, closed_loop_client


def default_shards(n_nodes: int) -> int:
    """Default shard count: up to 4, never more than one node per shard."""
    return max(1, min(4, n_nodes))


@dataclass(frozen=True)
class ParallelSpec:
    """Everything a shard worker needs to build and drive its shard.

    Frozen and picklable: in process mode the spec is the only thing that
    travels to a worker at start-up.
    """

    protocol: str
    config: ClusterConfig
    workload: WorkloadConfig
    duration_us: float
    warmup_us: float
    record_history: bool
    streaming_metrics: bool
    drain_us: float
    shards: int
    keys: Optional[Tuple[object, ...]] = None
    phase_windows: Optional[Tuple[Tuple[str, float, float], ...]] = None
    #: Optional causal-tracing spec; each shard records its own slice and
    #: ships the payload home for the deterministic merge (frozen dataclass,
    #: picklable like the rest of the spec).
    trace: Optional[TraceSpec] = None

    @property
    def horizon_us(self) -> float:
        return self.duration_us + self.drain_us


@dataclass
class ShardReport:
    """What one shard sends back after its final window."""

    shard_index: int
    owned_node_ids: List[int]
    clients: List[ClientStats]
    committed: List[object]
    committed_tags: List[Tuple[float, int, int]]
    aborted: List[object]
    aborted_tags: List[Tuple[float, int, int]]
    accumulator: Optional[StreamingAccumulator]
    counters: Dict[str, int]
    network_stats: NetworkStats
    clock_stats: Dict[str, float]
    fault_log: List[Tuple[float, str]]
    processed_events: int
    stalled_clients: int
    leaked_writers: int
    leaked_commit_queue: int
    exported_messages: int
    imported_messages: int
    busy_seconds: float
    walter_chains: Optional[Dict[object, Dict[int, set]]] = None
    #: ``TraceRecorder.payload()`` of this shard when tracing was on.
    trace_payload: Optional[Tuple] = None


@dataclass
class _BarrierCounters:
    """Synchronization accounting of one parallel run."""

    sync_rounds: int = 0
    null_messages: int = 0
    cross_shard_messages: int = 0


class _ShardRuntime:
    """One shard, fully assembled: engine, transport, cluster, clients."""

    def __init__(self, spec: ParallelSpec, shard_index: int):
        config = spec.config
        owned = shard_node_ids(shard_index, config.n_nodes, spec.shards)
        self.spec = spec
        self.shard_index = shard_index
        self.owned_node_ids = owned
        self.sim = Simulation(seed=config.seed)
        self.network = ShardNetwork(self.sim, config=config.network)
        self.recorder = ShardHistoryRecorder(self.sim) if spec.record_history else None
        self.cluster = build_cluster(
            spec.protocol,
            config=config,
            keys=list(spec.keys) if spec.keys is not None else None,
            record_history=self.recorder if self.recorder is not None else False,
            sim=self.sim,
            network=self.network,
            owned_node_ids=owned,
        )
        self.tracer = self.cluster.attach_tracer(spec.trace)
        self.sink: Optional[StreamingAccumulator] = None
        if spec.streaming_metrics:
            self.sink = StreamingAccumulator(
                window_us=0.0,
                horizon_us=spec.duration_us,
                phase_windows=spec.phase_windows,
            )
        self.clients: List[ClientStats] = []
        self.sessions = []
        for node_id in owned:
            for client_index in range(config.clients_per_node):
                session = self.cluster.session(node_id)
                self.sessions.append(session)
                rng = self.sim.rng.stream(f"workload.n{node_id}.c{client_index}")
                generator = WorkloadGenerator(
                    spec.workload,
                    self.cluster.keys,
                    rng,
                    placement=self.cluster.placement,
                    node_id=node_id,
                )
                stats = ClientStats(
                    node_id=node_id, client_index=client_index, sink=self.sink
                )
                self.clients.append(stats)
                self.cluster.spawn(
                    closed_loop_client(
                        session,
                        generator,
                        stats,
                        deadline_us=spec.duration_us,
                        warmup_us=spec.warmup_us,
                        think_time_us=spec.workload.think_time_us,
                    ),
                    name=f"client-{node_id}-{client_index}",
                    unit=node_id,
                )
        self.busy_seconds = 0.0

    def run_window(self, until: float) -> None:
        # CPU time, not wall time: on an oversubscribed host a shard's
        # wall-clock inside the window includes other shards' timeslices,
        # while its CPU time is the honest per-shard critical path (what
        # the wall *becomes* once every shard has its own core).
        start = time.process_time()
        self.sim.run_window(until)
        self.busy_seconds += time.process_time() - start

    def finish(self, horizon: float) -> None:
        """Inclusive final step: events at exactly the horizon still run."""
        start = time.process_time()
        self.sim.run(until=horizon)
        self.busy_seconds += time.process_time() - start

    def report(self) -> ShardReport:
        spec = self.spec
        # The accumulator ships once per shard; the per-client sink
        # references would each pickle another copy.
        for stats in self.clients:
            stats.sink = None
        recorder = self.recorder
        leaked_writers = leaked_commit_queue = 0
        for node in self.cluster.local_nodes:
            queued = getattr(node, "queued_writer_count", None)
            if queued is not None:
                leaked_writers += queued()
            commit_queue = getattr(node, "commit_queue", None)
            if commit_queue is not None:
                leaked_commit_queue += len(commit_queue)
        walter_chains = None
        if spec.record_history and spec.protocol == "walter":
            walter_chains = _walter_chain_summary(self.cluster)
        return ShardReport(
            shard_index=self.shard_index,
            owned_node_ids=self.owned_node_ids,
            clients=self.clients,
            committed=list(recorder.committed) if recorder is not None else [],
            committed_tags=list(recorder.committed_tags) if recorder is not None else [],
            aborted=list(recorder.aborted) if recorder is not None else [],
            aborted_tags=list(recorder.aborted_tags) if recorder is not None else [],
            accumulator=self.sink,
            counters=dict(self.cluster.total_counters()),
            network_stats=self.network.stats,
            clock_stats=self.network.clock_stats(),
            fault_log=list(self.sim.fault_log),
            processed_events=self.sim.processed_events,
            stalled_clients=sum(
                1 for session in self.sessions if session.current is not None
            ),
            leaked_writers=leaked_writers,
            leaked_commit_queue=leaked_commit_queue,
            exported_messages=self.network.exported_messages,
            imported_messages=self.network.imported_messages,
            busy_seconds=self.busy_seconds,
            walter_chains=walter_chains,
            trace_payload=self.tracer.payload() if self.tracer is not None else None,
        )


def _walter_chain_summary(cluster) -> Dict[object, Dict[int, set]]:
    """Per-replica committed-version sets of this shard's Walter nodes.

    The shard-local half of
    :meth:`~repro.baselines.walter.WalterCluster.check_replica_convergence`:
    node chains cannot cross the process boundary, so each shard summarizes
    its owned replicas and the parent compares the merged sets.
    """
    summary: Dict[object, Dict[int, set]] = {}
    for key in cluster.keys:
        replicas = cluster.placement.replicas(key)
        if len(replicas) < 2:
            continue
        for node_id in replicas:
            node = cluster.nodes[node_id]
            if node is None:
                continue
            chain = node._chains.get(key, [])
            summary.setdefault(key, {})[node_id] = {
                (version.site, version.seqno)
                for version in chain
                if version.writer is not None
            }
    return summary


class ParallelClusterView:
    """Read-only merged stand-in for the cluster of a parallel run.

    Exposes the slice of the :class:`~repro.protocols.cluster.ProtocolCluster`
    surface that post-run consumers use: the merged history, the consistency
    check, and the protocol's contract checks (mirroring each cluster class's
    ``check_contract``, with Walter's replica-convergence check rebuilt from
    the shards' shipped chain summaries).
    """

    def __init__(
        self,
        protocol: str,
        config: ClusterConfig,
        keys: List[object],
        history,
        fault_log: List[Tuple[float, str]],
        walter_chains: Optional[Dict[object, Dict[int, set]]] = None,
    ):
        self.protocol_name = protocol
        self.config = config
        self.keys = keys
        self.history = history
        self.fault_log = fault_log
        self._walter_chains = walter_chains or {}

    def check_consistency(self) -> CheckResult:
        if self.history is None:
            raise ConfigurationError("history recording is disabled for this cluster")
        return check_external_consistency(self.history)

    def check_contract(self) -> List[CheckResult]:
        if self.protocol_name == "rococo":
            return [
                check_serializability(self.history),
                check_committed_reads(self.history),
            ]
        if self.protocol_name == "walter":
            return [
                check_committed_reads(self.history),
                self.check_replica_convergence(),
            ]
        return [self.check_consistency()]

    def check_replica_convergence(self) -> CheckResult:
        violations: List[str] = []
        checked = 0
        for key in self.keys:
            held = self._walter_chains.get(key)
            if not held:
                continue
            checked += 1
            union = set().union(*held.values())
            for node_id in sorted(held):
                missing = union - held[node_id]
                if missing:
                    violations.append(
                        f"replica {node_id} of {key!r} is missing committed "
                        f"versions {sorted(missing)}"
                    )
        return CheckResult(
            ok=not violations,
            name="walter-replica-convergence",
            violations=violations,
            checked_transactions=checked,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ParallelClusterView protocol={self.protocol_name} "
            f"nodes={self.config.n_nodes}>"
        )


# ----------------------------------------------------------------------
# Barrier exchange (shared by both modes)
# ----------------------------------------------------------------------
def _entry_key(entry) -> Tuple[float, int]:
    # (deliver_at, skey); skey is globally unique, so this never ties and
    # the Message in the tuple is never compared.
    return entry[0], entry[1]


def _route(outboxes: Sequence[list], spec: ParallelSpec, counters: _BarrierCounters):
    """Split per-shard outboxes into per-shard sorted import batches."""
    imports: List[list] = [[] for _ in range(spec.shards)]
    n_nodes = spec.config.n_nodes
    shards = spec.shards
    for outbox in outboxes:
        if not outbox:
            counters.null_messages += 1
            continue
        counters.cross_shard_messages += len(outbox)
        for entry in outbox:
            imports[shard_of(entry[2], n_nodes, shards)].append(entry)
    for batch in imports:
        batch.sort(key=_entry_key)
    counters.sync_rounds += 1
    return imports


def _barrier_schedule(spec: ParallelSpec, lookahead: float):
    """Yield the window end times: multiples of the lookahead, then the horizon."""
    horizon = spec.horizon_us
    barrier = 0.0
    while True:
        barrier = min(barrier + lookahead, horizon)
        yield barrier
        if barrier >= horizon:
            return


# ----------------------------------------------------------------------
# Inline mode
# ----------------------------------------------------------------------
def _run_inline(spec: ParallelSpec) -> Tuple[List[ShardReport], _BarrierCounters]:
    runtimes = [_ShardRuntime(spec, index) for index in range(spec.shards)]
    counters = _BarrierCounters()
    lookahead = safe_lookahead(spec.config)
    for barrier in _barrier_schedule(spec, lookahead):
        for runtime in runtimes:
            runtime.run_window(barrier)
        imports = _route(
            [runtime.network.take_outbox() for runtime in runtimes], spec, counters
        )
        for runtime, batch in zip(runtimes, imports):
            runtime.network.admit(batch)
    for runtime in runtimes:
        runtime.finish(spec.horizon_us)
    return [runtime.report() for runtime in runtimes], counters


# ----------------------------------------------------------------------
# Process mode
# ----------------------------------------------------------------------
def _shard_profiler(shard_index: int):
    """Optional per-shard cProfile, driven by ``REPRO_PARALLEL_PROFILE_DIR``.

    When the environment variable names a directory, every shard worker
    profiles its own event loop and dumps ``shard-<index>.pstats`` there
    (``benchmarks/profile_hotpath.py --engine parallel`` consumes these).
    An env knob rather than a spec field so profiling composes with any
    caller without widening the experiment API.
    """
    directory = os.environ.get("REPRO_PARALLEL_PROFILE_DIR")
    if not directory:
        return None, None
    import cProfile

    os.makedirs(directory, exist_ok=True)
    return cProfile.Profile(), os.path.join(directory, f"shard-{shard_index}.pstats")


def _shard_worker(spec: ParallelSpec, shard_index: int, conn) -> None:
    """Worker entry point: build the shard, lock-step windows over the pipe."""
    try:
        runtime = _ShardRuntime(spec, shard_index)
        lookahead = safe_lookahead(spec.config)
        profiler, profile_path = _shard_profiler(shard_index)
        if profiler is not None:
            profiler.enable()
        for barrier in _barrier_schedule(spec, lookahead):
            runtime.run_window(barrier)
            conn.send(runtime.network.take_outbox())
            runtime.network.admit(conn.recv())
        runtime.finish(spec.horizon_us)
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)
        conn.send(("ok", runtime.report()))
    except BaseException as exc:  # surface the failure in the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        raise
    finally:
        conn.close()


def _recv(conn, shard_index: int):
    try:
        payload = conn.recv()
    except EOFError:
        raise RuntimeError(
            f"parallel shard {shard_index} terminated unexpectedly"
        ) from None
    if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "error":
        raise RuntimeError(f"parallel shard {shard_index} failed: {payload[1]}")
    return payload


def _run_process(spec: ParallelSpec) -> Tuple[List[ShardReport], _BarrierCounters]:
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    ctx = multiprocessing.get_context(method)
    conns = []
    workers = []
    try:
        for index in range(spec.shards):
            parent_conn, child_conn = ctx.Pipe()
            worker = ctx.Process(
                target=_shard_worker,
                args=(spec, index, child_conn),
                name=f"repro-shard-{index}",
            )
            worker.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(worker)
        counters = _BarrierCounters()
        lookahead = safe_lookahead(spec.config)
        for _barrier in _barrier_schedule(spec, lookahead):
            imports = _route(
                [_recv(conn, index) for index, conn in enumerate(conns)],
                spec,
                counters,
            )
            for conn, batch in zip(conns, imports):
                conn.send(batch)
        reports = []
        for index, conn in enumerate(conns):
            status, report = _recv(conn, index)
            assert status == "ok"
            reports.append(report)
        return reports, counters
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            worker.join(timeout=30.0)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()
                worker.join(timeout=5.0)


# ----------------------------------------------------------------------
# Merge + entry point
# ----------------------------------------------------------------------
def _merge_clock_stats(reports: Sequence[ShardReport]) -> Dict[str, float]:
    merged = {
        "clocks_encoded": 0,
        "encoded_bytes_total": 0,
        "dense_bytes_total": 0,
        "encoded_bytes_max": 0,
    }
    for report in reports:
        stats = report.clock_stats
        merged["clocks_encoded"] += stats["clocks_encoded"]
        merged["encoded_bytes_total"] += stats["encoded_bytes_total"]
        merged["dense_bytes_total"] += stats["dense_bytes_total"]
        if stats["encoded_bytes_max"] > merged["encoded_bytes_max"]:
            merged["encoded_bytes_max"] = stats["encoded_bytes_max"]
    return merged


def run_parallel_experiment(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    duration_us: float = 200_000.0,
    warmup_us: float = 40_000.0,
    record_history: bool = False,
    keep_cluster: bool = False,
    keys: Optional[Sequence[object]] = None,
    drain_us: Optional[float] = None,
    streaming_metrics: bool = False,
    shards: Optional[int] = None,
    mode: str = "process",
    trace=None,
):
    """Run one experiment on the node-sharded parallel engine.

    Same contract as ``run_experiment(engine="serial")`` for the supported
    feature set, and byte-identical results.  Not supported (use the serial
    engine): open-loop traffic plans, ``record_history="windowed"``, and
    latency models without a positive minimum latency.
    """
    from repro.harness.runner import (
        ExperimentResult,
        _experiment_phase_windows,
    )
    from repro.harness.metrics import ExperimentMetrics

    config.validate()
    workload.validate()
    if config.traffic:
        raise ConfigurationError(
            "the parallel engine drives closed-loop clients only; "
            "open-loop traffic plans need engine='serial'"
        )
    if record_history not in (False, True):
        raise ConfigurationError(
            "the parallel engine supports record_history=True/False; "
            "windowed recording and recorder injection need engine='serial'"
        )
    if mode not in ("process", "inline"):
        raise ConfigurationError(f"unknown parallel mode {mode!r}")
    if drain_us is None:
        drain_us = 25_000.0 if config.faults else 0.0
    if shards is None:
        shards = default_shards(config.n_nodes)
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    shards = min(shards, config.n_nodes)
    phase_windows = _experiment_phase_windows(config, duration_us)
    trace_spec = TraceSpec.coerce(trace)
    spec = ParallelSpec(
        protocol=protocol,
        config=config,
        workload=workload,
        duration_us=duration_us,
        warmup_us=warmup_us,
        record_history=bool(record_history),
        streaming_metrics=streaming_metrics,
        drain_us=drain_us,
        shards=shards,
        keys=tuple(keys) if keys is not None else None,
        phase_windows=tuple(phase_windows) if phase_windows else None,
        trace=trace_spec,
    )
    # Validates the lookahead before any worker is spawned.
    safe_lookahead(config)

    wall_start = time.perf_counter()
    if mode == "inline" or shards == 1:
        reports, counters = _run_inline(spec)
    else:
        reports, counters = _run_process(spec)
    wall_seconds = time.perf_counter() - wall_start

    reports.sort(key=lambda report: report.shard_index)
    # Client statistics in the serial runner's creation order, so every
    # float summation happens in the identical sequence.
    clients = [stats for report in reports for stats in report.clients]
    clients.sort(key=lambda stats: (stats.node_id, stats.client_index))
    node_counters: Dict[str, int] = {}
    for report in reports:
        for name, value in report.counters.items():
            node_counters[name] = node_counters.get(name, 0) + value
    network_stats = NetworkStats()
    for report in reports:
        network_stats.merge_from(report.network_stats)

    history = None
    walter_chains: Dict[object, Dict[int, set]] = {}
    if spec.record_history:
        history = merge_shard_histories(
            [
                (r.committed, r.committed_tags, r.aborted, r.aborted_tags)
                for r in reports
            ]
        )
        for report in reports:
            if report.walter_chains:
                for key, held in report.walter_chains.items():
                    walter_chains.setdefault(key, {}).update(held)

    sink = None
    if spec.streaming_metrics:
        sink = reports[0].accumulator
        for report in reports[1:]:
            sink.merge_from(report.accumulator)

    extra: Dict[str, float] = {}
    if "starvation_backoffs" in node_counters:
        extra["starvation_backoffs"] = node_counters["starvation_backoffs"]
    if drain_us > 0:
        extra["stalled_clients"] = float(
            sum(report.stalled_clients for report in reports)
        )
        extra["quiescence_leaked_writers"] = float(
            sum(report.leaked_writers for report in reports)
        )
        extra["quiescence_commit_queue"] = float(
            sum(report.leaked_commit_queue for report in reports)
        )
    fault_log = reports[0].fault_log
    if fault_log:
        extra["fault_events"] = float(len(fault_log))
    extra["sim_events"] = float(sum(report.processed_events for report in reports))
    extra["wall_seconds"] = wall_seconds
    clock_stats = _merge_clock_stats(reports)
    clocks = clock_stats["clocks_encoded"]
    if clocks:
        encoded = clock_stats["encoded_bytes_total"]
        messages_sent = network_stats.total_sent
        extra["clocks_encoded"] = float(clocks)
        extra["clock_bytes_mean"] = round(encoded / clocks, 2)
        extra["clock_bytes_max"] = float(clock_stats["encoded_bytes_max"])
        extra["clock_bytes_per_msg"] = round(
            encoded / messages_sent if messages_sent else 0.0, 2
        )
        extra["clock_compression_ratio"] = round(
            encoded / clock_stats["dense_bytes_total"], 4
        )
    # Synchronization + balance accounting of the parallel engine itself.
    per_shard_events = [report.processed_events for report in reports]
    peak_events = max(per_shard_events) or 1
    extra["parallel_shards"] = float(shards)
    extra["parallel_sync_rounds"] = float(counters.sync_rounds)
    extra["parallel_null_messages"] = float(counters.null_messages)
    extra["parallel_cross_shard_messages"] = float(counters.cross_shard_messages)
    extra["parallel_shard_events_min"] = float(min(per_shard_events))
    extra["parallel_shard_events_max"] = float(max(per_shard_events))
    extra["parallel_shard_utilization_min"] = round(
        min(per_shard_events) / peak_events, 4
    )
    extra["parallel_shard_busy_max_s"] = round(
        max(report.busy_seconds for report in reports), 4
    )

    trace_result = None
    if trace_spec is not None:
        from repro.trace import (
            analyze_trace,
            attribution_extra,
            merge_trace_payloads,
            write_chrome_trace,
        )

        trace_result = merge_trace_payloads(
            trace_spec,
            [report.trace_payload for report in reports if report.trace_payload is not None],
        )
        paths = analyze_trace(trace_result)
        extra.update(attribution_extra(paths, trace_result))
        if trace_spec.path:
            write_chrome_trace(trace_spec.path, trace_result, paths)

    measured = max(duration_us - warmup_us, 1.0)
    if sink is not None:
        metrics = ExperimentMetrics.from_streaming(
            protocol=protocol,
            n_nodes=config.n_nodes,
            accumulator=sink,
            measured_duration_us=measured,
            extra=extra,
        )
    else:
        metrics = ExperimentMetrics.from_clients(
            protocol=protocol,
            n_nodes=config.n_nodes,
            clients=clients,
            measured_duration_us=measured,
            extra=extra,
            phase_windows=phase_windows,
        )

    cluster = None
    if keep_cluster:
        cluster_keys = (
            list(keys)
            if keys is not None
            else [f"key-{index}" for index in range(config.n_keys)]
        )
        cluster = ParallelClusterView(
            protocol=protocol,
            config=config,
            keys=cluster_keys,
            history=history,
            fault_log=fault_log,
            walter_chains=walter_chains,
        )
    return ExperimentResult(
        protocol=protocol,
        config=config,
        workload=workload,
        metrics=metrics,
        clients=clients,
        node_counters=node_counters,
        cluster=cluster,
        trace=trace_result,
    )


__all__ = [
    "ParallelClusterView",
    "ParallelSpec",
    "ShardReport",
    "default_shards",
    "run_parallel_experiment",
]
