"""Per-figure experiment definitions.

One :class:`ExperimentDefinition` per figure of the paper's evaluation
(Section V), with the paper's parameters and the scaled-down defaults the
benchmark suite uses so that a full sweep completes in minutes of wall-clock
time on a laptop.  Every definition records the qualitative expectation the
reproduction is checked against (who wins, how the gap moves).

Scaling note: the simulated clusters use the paper's structural parameters
(replication degree, clients per node, transaction profiles, read-only
percentages).  The benchmark defaults reduce the number of keys and the node
counts so pure-Python simulation stays fast; the ``paper_scale()`` variants
return the full-size configurations for anyone willing to wait.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.common.config import ClusterConfig, WorkloadConfig


@dataclass(frozen=True)
class ExperimentDefinition:
    """A reproducible description of one figure's experiment."""

    figure: str
    description: str
    protocols: Tuple[str, ...]
    node_counts: Tuple[int, ...]
    key_counts: Tuple[int, ...]
    read_only_fractions: Tuple[float, ...]
    replication_degree: int
    clients_per_node: int = 10
    read_only_txn_keys: Tuple[int, ...] = (2,)
    locality_fraction: float = 0.0
    expectation: str = ""

    def workload(self, read_only_fraction: float, read_only_txn_keys: int = 2) -> WorkloadConfig:
        return WorkloadConfig(
            read_only_fraction=read_only_fraction,
            update_txn_keys=2,
            read_only_txn_keys=read_only_txn_keys,
            locality_fraction=self.locality_fraction,
        )

    def cluster(self, n_nodes: int, n_keys: int, seed: int = 1) -> ClusterConfig:
        return ClusterConfig(
            n_nodes=n_nodes,
            n_keys=n_keys,
            replication_degree=min(self.replication_degree, n_nodes),
            clients_per_node=self.clients_per_node,
            seed=seed,
        )


# ----------------------------------------------------------------------
# Paper-scale definitions (Section V parameters)
# ----------------------------------------------------------------------
FIGURE_3 = ExperimentDefinition(
    figure="fig3",
    description=(
        "Throughput of SSS vs 2PC-baseline vs Walter with replication degree 2, "
        "varying the read-only percentage (20/50/80%) and the node count."
    ),
    protocols=("sss", "2pc", "walter"),
    node_counts=(5, 10, 15, 20),
    key_counts=(5_000, 10_000),
    read_only_fractions=(0.2, 0.5, 0.8),
    replication_degree=2,
    expectation=(
        "Walter >= SSS >= 2PC everywhere; the SSS-Walter gap shrinks as the "
        "read-only share grows; SSS beats 2PC by a growing factor (paper: up "
        "to 7x at 50% read-only, 20 nodes)."
    ),
)

FIGURE_4A = ExperimentDefinition(
    figure="fig4a",
    description=(
        "Maximum attainable throughput of SSS vs 2PC-baseline at 50% read-only "
        "and 5k keys; clients per node swept per datapoint."
    ),
    protocols=("sss", "2pc"),
    node_counts=(5, 10, 15, 20),
    key_counts=(5_000,),
    read_only_fractions=(0.5,),
    replication_degree=2,
    expectation="SSS still ahead, but 2PC closes part of the gap.",
)

FIGURE_4B = ExperimentDefinition(
    figure="fig4b",
    description=(
        "External-commit latency of SSS vs 2PC-baseline at 20 nodes, 50% "
        "read-only, 5k keys, varying clients per node (1, 3, 5, 10)."
    ),
    protocols=("sss", "2pc"),
    node_counts=(20,),
    key_counts=(5_000,),
    read_only_fractions=(0.5,),
    replication_degree=2,
    expectation="SSS latency roughly 2x lower below saturation.",
)

FIGURE_5 = ExperimentDefinition(
    figure="fig5",
    description=(
        "Breakdown of SSS update-transaction latency: time between internal and "
        "external commit (snapshot-queue wait) vs total latency."
    ),
    protocols=("sss",),
    node_counts=(20,),
    key_counts=(5_000,),
    read_only_fractions=(0.5,),
    replication_degree=2,
    expectation="Pre-commit wait is roughly 30% of the total update latency.",
)

FIGURE_6 = ExperimentDefinition(
    figure="fig6",
    description=(
        "SSS vs ROCOCO vs 2PC-baseline without replication, 5k keys, at 20% and "
        "80% read-only."
    ),
    protocols=("sss", "rococo", "2pc"),
    node_counts=(5, 10, 15, 20),
    key_counts=(5_000,),
    read_only_fractions=(0.2, 0.8),
    replication_degree=1,
    expectation=(
        "At 20% read-only ROCOCO slightly ahead of SSS (SSS within ~13%), both "
        "ahead of 2PC; at 80% read-only SSS ahead of ROCOCO and ~3x ahead of 2PC."
    ),
)

FIGURE_7 = ExperimentDefinition(
    figure="fig7",
    description=(
        "Throughput with 80% read-only transactions and 50% access locality "
        "(replication degree 2), SSS vs 2PC-baseline vs Walter."
    ),
    protocols=("sss", "2pc", "walter"),
    node_counts=(5, 10, 15, 20),
    key_counts=(5_000, 10_000),
    read_only_fractions=(0.8,),
    replication_degree=2,
    locality_fraction=0.5,
    expectation=(
        "SSS well ahead of 2PC (paper: >3.5x) but unable to close the gap to "
        "Walter under locality-induced snapshot-queue contention."
    ),
)

FIGURE_8 = ExperimentDefinition(
    figure="fig8",
    description=(
        "Speedup of SSS over ROCOCO and 2PC-baseline at 15 nodes, 80% read-only, "
        "as the read-only transaction size grows from 2 to 16 keys."
    ),
    protocols=("sss", "rococo", "2pc"),
    node_counts=(15,),
    key_counts=(5_000, 10_000),
    read_only_fractions=(0.8,),
    replication_degree=1,
    read_only_txn_keys=(2, 4, 8, 16),
    expectation=(
        "SSS/ROCOCO speedup grows with the read-only size (paper: 1.2x -> 2.2x); "
        "SSS/2PC grows more slowly."
    ),
)

ALL_EXPERIMENTS: Dict[str, ExperimentDefinition] = {
    definition.figure: definition
    for definition in (
        FIGURE_3,
        FIGURE_4A,
        FIGURE_4B,
        FIGURE_5,
        FIGURE_6,
        FIGURE_7,
        FIGURE_8,
    )
}


# ----------------------------------------------------------------------
# Benchmark-scale variants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchmarkScale:
    """Scaled-down sweep used by the pytest-benchmark suite.

    The structural parameters (replication degree, profiles, read-only
    percentages) are untouched; only the sweep sizes shrink so each figure's
    bench completes in tens of seconds of wall-clock time.
    """

    node_counts: Tuple[int, ...] = (4, 8)
    key_counts: Tuple[int, ...] = (600,)
    clients_per_node: int = 4
    duration_us: float = 120_000.0
    warmup_us: float = 20_000.0
    read_only_sizes: Tuple[int, ...] = (2, 4, 8, 16)
    client_sweep: Tuple[int, ...] = (1, 3, 5, 10)


DEFAULT_BENCH_SCALE = BenchmarkScale()


def benchmark_points(
    definition: ExperimentDefinition,
    scale: Optional[BenchmarkScale] = None,
    seed: int = 1,
):
    """Expand a figure definition into independent sweep datapoints.

    Returns :class:`repro.harness.runner.ExperimentPoint` objects (one per
    protocol x node count x key count x read-only fraction x read-only size)
    labelled with their grid coordinates, ready for
    :func:`repro.harness.runner.run_points` to fan out across CPU cores.
    """
    from repro.harness.runner import ExperimentPoint

    scale = scale or benchmark_scale_for(definition)
    points = []
    for protocol in definition.protocols:
        for n_nodes in scale.node_counts:
            for n_keys in scale.key_counts:
                for fraction in definition.read_only_fractions:
                    for ro_keys in definition.read_only_txn_keys:
                        config = ClusterConfig(
                            n_nodes=n_nodes,
                            n_keys=n_keys,
                            replication_degree=min(definition.replication_degree, n_nodes),
                            clients_per_node=scale.clients_per_node,
                            seed=seed,
                        )
                        workload = definition.workload(fraction, ro_keys)
                        points.append(
                            ExperimentPoint(
                                protocol=protocol,
                                config=config,
                                workload=workload,
                                duration_us=scale.duration_us,
                                warmup_us=scale.warmup_us,
                                label=(protocol, n_nodes, n_keys, fraction, ro_keys),
                            )
                        )
    return points


def benchmark_scale_for(definition: ExperimentDefinition) -> BenchmarkScale:
    """Return the default scaled-down sweep for a figure definition."""
    if definition.figure in ("fig4b", "fig5"):
        # Latency figures are measured on a single (largest) node count.
        return replace(DEFAULT_BENCH_SCALE, node_counts=(8,))
    if definition.figure == "fig8":
        return replace(DEFAULT_BENCH_SCALE, node_counts=(6,))
    return DEFAULT_BENCH_SCALE
