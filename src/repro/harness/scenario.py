"""One cheap scenario probe: run, check, and summarize as a signal vector.

:func:`run_scenario` is the scoring primitive of the coverage-guided
scenario searcher (:mod:`repro.search`): it runs one (protocol, config,
workload) combination for a tiny duration with full history recording,
runs the protocol's own contract checks, and collapses everything the
fault/traffic planes can reveal into three deterministic artifacts:

* a **signal vector** — a flat ``{name: float}`` dict of the quantities a
  scenario can get wrong (contract violations, stalled clients, quiescence
  leaks, commit-gap stalls, availability dips, shed load, latency
  inflection);
* a **coverage signature** — a sorted tuple of discrete atoms naming which
  code paths and plan-shape combinations the run exercised (protocol
  counters with log2 magnitude buckets, fault x traffic phase combinations,
  cluster shape), which is what lets a corpus judge "did this mutant reach
  anything new?";
* a **failure list** — the categories in which the run violated its
  contract (``consistency``, ``stall``, ``leak``, ``readonly-abort``, or
  ``exception:<Type>`` when the run itself crashed).

Determinism is part of the contract: the same inputs produce the identical
outcome object across processes and ``PYTHONHASHSEED`` values (pinned by
``tests/integration/test_search_end_to_end.py``), which is what makes repro
bundles replayable and corpus decisions stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.common.errors import ConfigurationError

#: Failure categories a scenario run can report (exceptions are reported as
#: ``exception:<RootType>`` and are open-ended).
FAILURE_CATEGORIES = ("consistency", "stall", "leak", "readonly-abort")

#: A commit gap only counts as a stall once it exceeds all of: an absolute
#: floor, a fraction of the run, and a multiple of the run's own mean commit
#: spacing (so low-rate open-loop scenarios do not alarm on Poisson gaps).
STALL_GAP_FLOOR_US = 10_000.0
STALL_GAP_RUN_FRACTION = 0.35
STALL_GAP_MEAN_MULTIPLE = 20.0

#: Grace window after a fault heals before a commit gap starts counting as
#: "excess": recovery legitimately tracks the fault-mode retry cadence
#: (``crash_resubscribe_us``; see BENCH_recovery), so a gap is only a stall
#: signal where it is *not* explained by an active fault or its direct
#: aftermath.
FAULT_GRACE_US = 5_000.0


@dataclass(frozen=True)
class ScenarioOutcome:
    """Everything the searcher needs to know about one scenario run."""

    signal: Dict[str, float] = field(default_factory=dict)
    coverage: Tuple[str, ...] = ()
    failures: Tuple[str, ...] = ()
    failure_detail: Tuple[str, ...] = ()
    error: Optional[str] = None
    #: Merged :class:`~repro.trace.recorder.TraceResult` when the scenario
    #: was run with tracing (replay ``--trace``); excluded from ``as_dict``
    #: and from equality, so traced and untraced outcomes stay comparable.
    trace: Optional[object] = field(default=None, compare=False)

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    def score(self) -> float:
        """Scalar severity used for corpus "raise signal" retention."""
        signal = self.signal
        return (
            100.0 * signal.get("consistency_violations", 0.0)
            + 100.0 * (1.0 if self.error else 0.0)
            + 20.0 * signal.get("stalled_clients", 0.0)
            + 20.0 * signal.get("quiescence_leaked_writers", 0.0)
            + 20.0 * signal.get("quiescence_commit_queue", 0.0)
            + 10.0 * signal.get("readonly_aborts", 0.0)
            + signal.get("excess_commit_gap_us", 0.0) / 1_000.0
            + signal.get("p99_over_p50", 0.0)
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "signal": {key: self.signal[key] for key in sorted(self.signal)},
            "coverage": list(self.coverage),
            "failures": list(self.failures),
            "failure_detail": list(self.failure_detail),
            "error": self.error,
        }


def _root_cause(exc: BaseException) -> BaseException:
    seen = set()
    while exc.__cause__ is not None and id(exc) not in seen:
        seen.add(id(exc))
        exc = exc.__cause__
    return exc


def _log2_bucket(value: int) -> int:
    return value.bit_length() if value > 0 else 0


def _fault_windows(config: ClusterConfig, horizon_us: float) -> List[Tuple[float, float]]:
    """Active fault windows (with recovery grace) of a run, merged."""
    raw = sorted(
        (fault.at_us, fault.end_us(horizon_us) + FAULT_GRACE_US)
        for fault in config.faults.faults
    )
    merged: List[Tuple[float, float]] = []
    for start, end in raw:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _excess_gap(start: float, end: float, windows: List[Tuple[float, float]]) -> float:
    """Length of ``[start, end)`` not covered by any fault window."""
    excess = end - start
    for w_start, w_end in windows:
        overlap = min(end, w_end) - max(start, w_start)
        if overlap > 0:
            excess -= overlap
    return max(excess, 0.0)


def _phase_combo_atoms(phases) -> List[str]:
    """``combo:<traffic-kind>|<fault-kinds>`` atoms from exercised phases.

    Phase labels look like ``p2:poisson@6000|crash`` (traffic + fault),
    ``p1:crash`` (fault only) or ``t0:burst@1000..6000`` (traffic only);
    rates and indices are stripped so the atom names the *shape*, not the
    numbers.
    """
    atoms = set()
    for phase in phases:
        label = phase.get("label", "")
        if ":" not in label:
            continue
        body = label.split(":", 1)[1]
        if "|" in body:
            scenario, fault_part = body.split("|", 1)
        elif body and body[0].isalpha() and "@" not in body and "[" not in body:
            scenario, fault_part = "", body
        else:
            scenario, fault_part = body, ""
        scenario_kind = scenario.split("@", 1)[0].split("[", 1)[0]
        atoms.add(f"combo:{scenario_kind or 'closed'}|{fault_part or 'fail-free'}")
    return sorted(atoms)


def run_scenario(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    duration_us: float = 20_000.0,
    drain_us: float = 30_000.0,
    trace=None,
) -> ScenarioOutcome:
    """Run one scenario and reduce it to signal + coverage + failures.

    Runs with ``warmup_us=0`` (the searcher cares about transients, not
    steady state), full history recording (the weaker protocols' contract
    checks need it; scenario durations are tiny so memory is bounded by
    construction), and an explicit drain so stalls and leaks are visible.
    A run that raises is itself a failure — the root cause type becomes an
    ``exception:<Type>`` category instead of propagating.

    ``trace`` enables the causal-tracing plane for the run
    (``run_experiment(trace=...)`` semantics); the merged trace rides on
    ``outcome.trace``.  The recorder is passive, so signal vectors and
    coverage are byte-identical with tracing on or off.
    """
    from repro.harness.runner import run_experiment

    try:
        result = run_experiment(
            protocol,
            config,
            workload,
            duration_us=duration_us,
            warmup_us=0.0,
            record_history=True,
            keep_cluster=True,
            drain_us=drain_us,
            trace=trace,
        )
    except ConfigurationError:
        # An invalid scenario is the caller's bug, not a finding.
        raise
    except Exception as exc:  # noqa: BLE001 - crashing runs are the signal
        root = _root_cause(exc)
        category = f"exception:{type(root).__name__}"
        return ScenarioOutcome(
            signal={"run_crashed": 1.0},
            coverage=(category, f"proto:{protocol}"),
            failures=(category,),
            failure_detail=(f"{type(root).__name__}: {root}",),
            error=f"{type(root).__name__}: {root}",
        )

    metrics = result.metrics
    cluster = result.cluster
    checks = cluster.check_contract()
    violations = sum(len(check.violations) for check in checks)

    history = cluster.history
    commit_times = sorted(
        txn.external_commit_time
        for txn in history.committed
        if txn.external_commit_time is not None
    )
    # Gaps are measured over the load window only: clients stop issuing at
    # ``duration_us``, so silence during the drain tail is expected, not a
    # stall.  Commits completing inside the drain still close their gap.
    windows = _fault_windows(config, duration_us)
    max_gap = 0.0
    excess_gap = 0.0
    if commit_times:
        edges = commit_times + [max(duration_us, commit_times[-1])]
        for start, end in zip(edges, edges[1:]):
            max_gap = max(max_gap, end - start)
            excess_gap = max(excess_gap, _excess_gap(start, end, windows))
    else:
        max_gap = excess_gap = duration_us
    committed = len(commit_times)
    mean_gap = (
        (commit_times[-1] - commit_times[0]) / (committed - 1)
        if committed > 1
        else duration_us
    )
    stall_threshold = max(
        STALL_GAP_FLOOR_US,
        STALL_GAP_RUN_FRACTION * duration_us,
        STALL_GAP_MEAN_MULTIPLE * mean_gap,
    )

    readonly_aborts = 0
    if protocol == "sss":
        # SSS's headline promise: read-only transactions never abort (the
        # wait-cycle breaker restarts them invisibly instead).
        readonly_aborts = sum(1 for txn in history.aborted if not txn.is_update)

    stalled = metrics.extra.get("stalled_clients", 0.0)
    leaked_writers = metrics.extra.get("quiescence_leaked_writers", 0.0)
    leaked_queue = metrics.extra.get("quiescence_commit_queue", 0.0)
    latency = metrics.latency
    p99_over_p50 = (
        latency.p99_us / latency.p50_us if latency.p50_us > 0 else 0.0
    )

    signal: Dict[str, float] = {
        "committed": float(metrics.committed),
        "aborted": float(metrics.aborted),
        "abort_rate": round(metrics.abort_rate, 6),
        "consistency_violations": float(violations),
        "stalled_clients": float(stalled),
        "quiescence_leaked_writers": float(leaked_writers),
        "quiescence_commit_queue": float(leaked_queue),
        "readonly_aborts": float(readonly_aborts),
        "max_commit_gap_us": round(max_gap, 3),
        "excess_commit_gap_us": round(excess_gap, 3),
        "stall_threshold_us": round(stall_threshold, 3),
        "p50_us": round(latency.p50_us, 3),
        "p99_us": round(latency.p99_us, 3),
        "p99_over_p50": round(p99_over_p50, 4),
        "run_crashed": 0.0,
    }
    availability_min = metrics.extra.get("availability_min")
    if availability_min is not None:
        signal["availability_min"] = float(availability_min)
    for name in ("offered", "dropped", "timed_out"):
        value = metrics.extra.get(name)
        if value is not None:
            signal[name] = float(value)

    failures: List[str] = []
    detail: List[str] = []
    if violations:
        failures.append("consistency")
        detail.extend(
            f"{check.name}: {violation}"
            for check in checks
            for violation in check.violations[:3]
        )
    is_stalled = stalled > 0 or (committed == 0) or excess_gap >= stall_threshold
    if is_stalled:
        failures.append("stall")
        detail.append(
            f"stalled_clients={stalled:g} committed={committed} "
            f"excess_gap={excess_gap:.0f}us (threshold {stall_threshold:.0f}us)"
        )
    if leaked_writers > 0 or leaked_queue > 0:
        failures.append("leak")
        detail.append(
            f"quiescence_leaked_writers={leaked_writers:g} "
            f"quiescence_commit_queue={leaked_queue:g}"
        )
    if readonly_aborts:
        failures.append("readonly-abort")
        detail.append(f"readonly_aborts={readonly_aborts}")

    atoms = {
        f"proto:{protocol}",
        f"shape:n{config.n_nodes}:rf{config.replication_degree}",
    }
    fault_kinds = {fault.kind for fault in config.faults.faults}
    if fault_kinds:
        atoms.update(f"fault:{kind}" for kind in fault_kinds)
    else:
        atoms.add("fault:none")
    if config.traffic:
        atoms.update(f"traffic:{phase.arrival.kind}" for phase in config.traffic.phases)
    else:
        atoms.add("traffic:closed")
    atoms.update(_phase_combo_atoms(metrics.phases))
    for name, value in sorted(result.node_counters.items()):
        if value > 0:
            atoms.add(f"counter:{name}:{_log2_bucket(int(value))}")
    atoms.update(f"verdict:{category}" for category in failures)

    return ScenarioOutcome(
        signal=signal,
        coverage=tuple(sorted(atoms)),
        failures=tuple(failures),
        failure_detail=tuple(detail),
        error=None,
        trace=result.trace,
    )


def stall_gap_threshold_us(duration_us: float, mean_gap_us: float) -> float:
    """The stall decision rule, exposed for tests and docs."""
    return max(
        STALL_GAP_FLOOR_US,
        STALL_GAP_RUN_FRACTION * duration_us,
        STALL_GAP_MEAN_MULTIPLE * mean_gap_us,
    )
