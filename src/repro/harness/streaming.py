"""Online (streaming) aggregation of open-loop experiment measurements.

The exact metrics path records one float per event — every arrival,
completion latency, drop, abort — and summarizes after the run.  That is
fine at benchmark scale but linear in transaction count, which is exactly
the term a million-user run cannot afford.  :class:`StreamingAccumulator`
is the O(1)-per-event replacement: the open-loop sources feed it each
outcome as it happens, and it maintains

* run-wide :class:`~repro.harness.sketch.QuantileSketch` instances for
  every latency family :class:`~repro.harness.metrics.ExperimentMetrics`
  reports (overall, update, read-only, internal, pre-commit wait);
* the windowed time series (offered / completed / shed / aborted counts
  plus a per-window latency sketch), same shape as
  :func:`~repro.harness.metrics.compute_timeseries`;
* per-phase commit/abort/offered/shed counters binned online against the
  experiment's phase windows, same shape as
  :func:`~repro.harness.metrics.compute_phase_metrics` (plus the
  offered-load fields the runner attaches for open-loop runs).

Memory is bounded by ``n_windows + n_phases + sketch buckets`` — it does
not grow with the number of transactions.  The accumulator is passive:
it never touches the simulation, so enabling streaming cannot change a
run's committed/aborted outcomes (the equivalence test in
``tests/integration/test_streaming_metrics.py`` pins counts exactly and
percentiles within the sketch tolerance).

Event-time filtering mirrors the exact path precisely: time-series bins
accept *all* events inside the horizon (including warm-up, like the raw
``*_times_us`` lists did), while the run-wide sketches and the per-phase
commit/abort counters only see measured (post-warm-up) events, like
:class:`~repro.workload.ycsb.ClientStats` did.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SECOND
from repro.harness.metrics import attach_availability
from repro.harness.sketch import QuantileSketch


class StreamingAccumulator:
    """Single shared sink for every open-loop source of one run."""

    def __init__(
        self,
        window_us: float,
        horizon_us: float,
        phase_windows: Optional[Sequence[Tuple[str, float, float]]] = None,
        relative_error: float = 0.01,
    ):
        self.window_us = float(window_us)
        self.horizon_us = float(horizon_us)
        self.relative_error = relative_error
        # Run-wide latency sketches (measured events only).
        self.latency = QuantileSketch(relative_error)
        self.update_latency = QuantileSketch(relative_error)
        self.read_only_latency = QuantileSketch(relative_error)
        self.internal_latency = QuantileSketch(relative_error)
        self.precommit_wait = QuantileSketch(relative_error)
        # Measured outcome counters.
        self.committed = 0
        self.committed_update = 0
        self.committed_read_only = 0
        self.aborted = 0
        # Time-series bins (all events inside the horizon).
        if self.window_us > 0 and self.horizon_us > 0:
            self._n_windows = max(1, math.ceil(self.horizon_us / self.window_us))
        else:
            self._n_windows = 0
        n = self._n_windows
        self._ts_offered = [0] * n
        self._ts_dropped = [0] * n
        self._ts_timed_out = [0] * n
        self._ts_aborted = [0] * n
        self._ts_completed = [0] * n
        self._ts_latency = [QuantileSketch(relative_error) for _ in range(n)]
        # Phase bins (all arrivals/shed; measured commits/aborts).
        windows = list(phase_windows or [])
        self._phase_bounds = [start for _label, start, _end in windows]
        self._phases = [
            {
                "label": label,
                "start_us": start,
                "end_us": end,
                "committed": 0,
                "aborted": 0,
                "offered": 0,
                "shed": 0,
            }
            for label, start, end in windows
        ]

    # ------------------------------------------------------------------
    # Binning helpers
    # ------------------------------------------------------------------
    def _window_of(self, t: float) -> int:
        if self._n_windows == 0 or not 0.0 <= t < self.horizon_us:
            return -1
        return min(self._n_windows - 1, int(t // self.window_us))

    def _phase_of(self, t: float) -> Optional[Dict[str, float]]:
        index = bisect_right(self._phase_bounds, t) - 1
        if index < 0:
            return None
        phase = self._phases[index]
        if phase["start_us"] <= t < phase["end_us"]:
            return phase
        return None

    # ------------------------------------------------------------------
    # Event hooks (called by the open-loop sources)
    # ------------------------------------------------------------------
    def on_arrival(self, t: float) -> None:
        if (index := self._window_of(t)) >= 0:
            self._ts_offered[index] += 1
        if (phase := self._phase_of(t)) is not None:
            phase["offered"] += 1

    def on_drop(self, t: float) -> None:
        if (index := self._window_of(t)) >= 0:
            self._ts_dropped[index] += 1
        if (phase := self._phase_of(t)) is not None:
            phase["shed"] += 1

    def on_timeout(self, t: float) -> None:
        if (index := self._window_of(t)) >= 0:
            self._ts_timed_out[index] += 1
        if (phase := self._phase_of(t)) is not None:
            phase["shed"] += 1

    def on_completion(self, t: float, latency_us: float) -> None:
        """Every commit completion inside the horizon (warm-up included)."""
        if (index := self._window_of(t)) >= 0:
            self._ts_completed[index] += 1
            self._ts_latency[index].add(latency_us)

    def on_commit(
        self,
        latency_us: float,
        commit_time_us: float,
        read_only: bool,
        internal_latency_us: Optional[float] = None,
        precommit_wait_us: Optional[float] = None,
    ) -> None:
        """A measured (post-warm-up) commit."""
        self.committed += 1
        self.latency.add(latency_us)
        if read_only:
            self.committed_read_only += 1
            self.read_only_latency.add(latency_us)
        else:
            self.committed_update += 1
            self.update_latency.add(latency_us)
            if internal_latency_us is not None:
                self.internal_latency.add(internal_latency_us)
            if precommit_wait_us is not None:
                self.precommit_wait.add(precommit_wait_us)
        if (phase := self._phase_of(commit_time_us)) is not None:
            phase["committed"] += 1

    def on_abort(self, abort_time_us: float) -> None:
        """A measured (post-warm-up) abort."""
        self.aborted += 1
        if (index := self._window_of(abort_time_us)) >= 0:
            self._ts_aborted[index] += 1
        if (phase := self._phase_of(abort_time_us)) is not None:
            phase["aborted"] += 1

    # ------------------------------------------------------------------
    # Shard merging
    # ------------------------------------------------------------------
    def merge_from(self, other: "StreamingAccumulator") -> None:
        """Fold a shard's accumulator into this one.

        Requires identical construction parameters (same window/horizon/
        phase windows), which the parallel driver guarantees by building
        every shard's accumulator from the one experiment spec.  Counters
        and bins are summed, sketches merged exactly; derived quantities
        (availability, rates) are computed at finalization only.
        """
        if (
            other._n_windows != self._n_windows
            or len(other._phases) != len(self._phases)
            or other.window_us != self.window_us
            or other.horizon_us != self.horizon_us
        ):
            raise ValueError("cannot merge streaming accumulators of different shapes")
        self.latency.merge(other.latency)
        self.update_latency.merge(other.update_latency)
        self.read_only_latency.merge(other.read_only_latency)
        self.internal_latency.merge(other.internal_latency)
        self.precommit_wait.merge(other.precommit_wait)
        self.committed += other.committed
        self.committed_update += other.committed_update
        self.committed_read_only += other.committed_read_only
        self.aborted += other.aborted
        for index in range(self._n_windows):
            self._ts_offered[index] += other._ts_offered[index]
            self._ts_dropped[index] += other._ts_dropped[index]
            self._ts_timed_out[index] += other._ts_timed_out[index]
            self._ts_aborted[index] += other._ts_aborted[index]
            self._ts_completed[index] += other._ts_completed[index]
            self._ts_latency[index].merge(other._ts_latency[index])
        for phase, other_phase in zip(self._phases, other._phases):
            for counter in ("committed", "aborted", "offered", "shed"):
                phase[counter] += other_phase[counter]

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def timeseries(self) -> List[Dict[str, float]]:
        """Same shape as :func:`~repro.harness.metrics.compute_timeseries`."""
        windows: List[Dict[str, float]] = []
        for index in range(self._n_windows):
            start = index * self.window_us
            end = min(start + self.window_us, self.horizon_us)
            width_s = max(end - start, 1e-9) / SECOND
            sketch = self._ts_latency[index]
            windows.append(
                {
                    "start_us": start,
                    "end_us": end,
                    "offered": self._ts_offered[index],
                    "offered_tps": round(self._ts_offered[index] / width_s, 1),
                    "completed": self._ts_completed[index],
                    "goodput_tps": round(self._ts_completed[index] / width_s, 1),
                    "aborted": self._ts_aborted[index],
                    "dropped": self._ts_dropped[index],
                    "timed_out": self._ts_timed_out[index],
                    "latency_p50_us": round(sketch.quantile(0.50), 1),
                    "latency_p99_us": round(sketch.quantile(0.99), 1),
                }
            )
        return windows

    def phase_metrics(self) -> List[Dict[str, float]]:
        """Same shape as the exact path's per-phase accounting."""
        phases: List[Dict[str, float]] = []
        for source in self._phases:
            phase = dict(source)
            width_us = max(phase["end_us"] - phase["start_us"], 1e-9)
            phase["throughput_tps"] = round(phase["committed"] / (width_us / SECOND), 1)
            phase["offered_tps"] = round(phase["offered"] / (width_us / SECOND), 1)
            phases.append(phase)
        if phases:
            attach_availability(phases)
        return phases


__all__ = ["StreamingAccumulator"]
