"""Aggregation of experiment measurements.

:class:`ExperimentMetrics` collapses the per-client statistics collected by
the closed-loop clients into the quantities the paper's figures report:
throughput in committed transactions per (simulated) second, abort rate,
latency mean and percentiles, and the internal-commit / pre-commit breakdown
of update transaction latency (Figure 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.config import SECOND
from repro.workload.ycsb import ClientStats


@dataclass(frozen=True)
class LatencySummary:
    """Mean and percentile summary of a latency sample (microseconds)."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return cls(count=0, mean_us=0.0, p50_us=0.0, p95_us=0.0, p99_us=0.0, max_us=0.0)
        ordered = sorted(samples)

        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
            return ordered[index]

        return cls(
            count=len(ordered),
            mean_us=sum(ordered) / len(ordered),
            p50_us=percentile(0.50),
            p95_us=percentile(0.95),
            p99_us=percentile(0.99),
            max_us=ordered[-1],
        )

    @property
    def mean_ms(self) -> float:
        return self.mean_us / 1_000.0


@dataclass
class ExperimentMetrics:
    """Aggregated outcome of one experiment run."""

    protocol: str
    n_nodes: int
    measured_duration_us: float
    committed: int = 0
    committed_update: int = 0
    committed_read_only: int = 0
    aborted: int = 0
    latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )
    update_latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )
    read_only_latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )
    internal_latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )
    precommit_wait: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_clients(
        cls,
        protocol: str,
        n_nodes: int,
        clients: Iterable[ClientStats],
        measured_duration_us: float,
        extra: Optional[Dict[str, float]] = None,
    ) -> "ExperimentMetrics":
        clients = list(clients)
        latencies: List[float] = []
        update_latencies: List[float] = []
        read_only_latencies: List[float] = []
        internal_latencies: List[float] = []
        precommit_waits: List[float] = []
        committed = committed_update = committed_read_only = aborted = 0
        for stats in clients:
            committed += stats.committed
            committed_update += stats.committed_update
            committed_read_only += stats.committed_read_only
            aborted += stats.aborted
            latencies.extend(stats.latencies_us)
            update_latencies.extend(stats.update_latencies_us)
            read_only_latencies.extend(stats.read_only_latencies_us)
            internal_latencies.extend(stats.internal_latencies_us)
            precommit_waits.extend(stats.precommit_waits_us)
        return cls(
            protocol=protocol,
            n_nodes=n_nodes,
            measured_duration_us=measured_duration_us,
            committed=committed,
            committed_update=committed_update,
            committed_read_only=committed_read_only,
            aborted=aborted,
            latency=LatencySummary.from_samples(latencies),
            update_latency=LatencySummary.from_samples(update_latencies),
            read_only_latency=LatencySummary.from_samples(read_only_latencies),
            internal_latency=LatencySummary.from_samples(internal_latencies),
            precommit_wait=LatencySummary.from_samples(precommit_waits),
            extra=dict(extra or {}),
        )

    # ------------------------------------------------------------------
    @property
    def throughput_tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.measured_duration_us <= 0:
            return 0.0
        return self.committed / (self.measured_duration_us / SECOND)

    @property
    def throughput_ktps(self) -> float:
        """Committed transactions per simulated second, in thousands."""
        return self.throughput_tps / 1_000.0

    @property
    def abort_rate(self) -> float:
        attempts = self.committed + self.aborted
        if attempts == 0:
            return 0.0
        return self.aborted / attempts

    # -------------------------------------------------- clock metadata plane
    @property
    def clock_bytes_mean(self) -> Optional[float]:
        """Mean encoded (delta-compressed) bytes per message-borne clock."""
        return self.extra.get("clock_bytes_mean")

    @property
    def clock_bytes_max(self) -> Optional[float]:
        """Largest single encoded clock, in bytes."""
        return self.extra.get("clock_bytes_max")

    @property
    def clock_compression_ratio(self) -> Optional[float]:
        """Encoded/dense byte ratio over every clock shipped (lower = better)."""
        return self.extra.get("clock_compression_ratio")

    @property
    def precommit_fraction(self) -> float:
        """Share of update-transaction latency spent between internal and
        external commit (Figure 5's red bar)."""
        if self.update_latency.count == 0 or self.update_latency.mean_us == 0:
            return 0.0
        return self.precommit_wait.mean_us / self.update_latency.mean_us

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the reports and EXPERIMENTS.md generation."""
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "throughput_ktps": round(self.throughput_ktps, 3),
            "committed": self.committed,
            "aborted": self.aborted,
            "abort_rate": round(self.abort_rate, 4),
            "latency_mean_ms": round(self.latency.mean_ms, 4),
            "update_latency_mean_ms": round(self.update_latency.mean_ms, 4),
            "read_only_latency_mean_ms": round(self.read_only_latency.mean_ms, 4),
            "precommit_fraction": round(self.precommit_fraction, 4),
            **self.extra,
        }
