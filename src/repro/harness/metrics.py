"""Aggregation of experiment measurements.

:class:`ExperimentMetrics` collapses the per-client statistics collected by
the closed-loop clients into the quantities the paper's figures report:
throughput in committed transactions per (simulated) second, abort rate,
latency mean and percentiles, and the internal-commit / pre-commit breakdown
of update transaction latency (Figure 5).

Fault-plan experiments additionally get **per-phase** accounting: the fault
plan splits the run into windows (fail-free, crash, partition, ...), and
each window reports its committed/aborted counts, throughput and
*availability* — throughput relative to the best fail-free window of the
same run, capped at 1.  Stalled clients (clients whose in-flight transaction
never completed by the post-run drain) and quiescence leaks (pre-commit
state still held at drain) arrive through ``extra`` from the runner.

Open-loop (traffic-plan) experiments reuse the same phase machinery for
their scenario phases and additionally get **time-resolved** accounting:
:func:`compute_timeseries` bins arrivals, completions and shed load into
fixed windows and summarizes each window's latency percentiles, which is
what makes "p99 under a burst" and "goodput during the ramp's collapse"
readable quantities instead of run-wide averages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.config import SECOND
from repro.workload.ycsb import ClientStats


@dataclass(frozen=True)
class LatencySummary:
    """Mean and percentile summary of a latency sample (microseconds)."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return cls(count=0, mean_us=0.0, p50_us=0.0, p95_us=0.0, p99_us=0.0, max_us=0.0)
        ordered = sorted(samples)

        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
            return ordered[index]

        return cls(
            count=len(ordered),
            mean_us=sum(ordered) / len(ordered),
            p50_us=percentile(0.50),
            p95_us=percentile(0.95),
            p99_us=percentile(0.99),
            max_us=ordered[-1],
        )

    @classmethod
    def from_sketch(cls, sketch) -> "LatencySummary":
        """Summary read back from a :class:`~repro.harness.sketch.QuantileSketch`.

        Count, mean and max are exact; the percentiles carry the sketch's
        relative-error guarantee (pinned by ``tests/unit/test_sketch.py``).
        """
        if sketch.count == 0:
            return cls(count=0, mean_us=0.0, p50_us=0.0, p95_us=0.0, p99_us=0.0, max_us=0.0)
        return cls(
            count=sketch.count,
            mean_us=sketch.mean,
            p50_us=sketch.quantile(0.50),
            p95_us=sketch.quantile(0.95),
            p99_us=sketch.quantile(0.99),
            max_us=sketch.max,
        )

    @property
    def mean_ms(self) -> float:
        return self.mean_us / 1_000.0


def compute_phase_metrics(
    phase_windows: Optional[Sequence],
    commit_times: Sequence[float],
    abort_times: Sequence[float],
) -> List[Dict[str, float]]:
    """Per-phase commit/abort/availability accounting of a fault-plan run.

    ``phase_windows`` are ``(label, start_us, end_us)`` tuples (produced by
    :meth:`repro.common.config.FaultPlan.phases`); commits/aborts are binned
    by completion time.  *Availability* of a phase is its committed
    throughput relative to the best fail-free phase of the same run, capped
    at 1 (``None`` when the run has no non-empty fail-free phase to compare
    against).  Returns ``[]`` when there are no windows (fail-free run).
    """
    if not phase_windows:
        return []
    phases: List[Dict[str, float]] = []
    for label, start, end in phase_windows:
        width_us = max(end - start, 1e-9)
        committed = sum(1 for t in commit_times if start <= t < end)
        aborted = sum(1 for t in abort_times if start <= t < end)
        phases.append(
            {
                "label": label,
                "start_us": start,
                "end_us": end,
                "committed": committed,
                "aborted": aborted,
                "throughput_tps": round(committed / (width_us / SECOND), 1),
            }
        )
    attach_availability(phases)
    return phases


def attach_availability(phases: List[Dict[str, float]]) -> None:
    """Attach per-phase availability in place (shared with the streaming path).

    Availability is each phase's committed throughput relative to the best
    phase whose label ends with ``fail-free``, capped at 1; ``None``
    everywhere when the run has no non-empty fail-free phase.
    """
    reference = max(
        (phase["throughput_tps"] for phase in phases if phase["label"].endswith("fail-free")),
        default=0.0,
    )
    for phase in phases:
        if reference > 0:
            phase["availability"] = round(min(1.0, phase["throughput_tps"] / reference), 4)
        else:
            phase["availability"] = None


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def compute_timeseries(
    window_us: float,
    horizon_us: float,
    arrivals: Sequence[float],
    completion_times: Sequence[float],
    completion_latencies: Sequence[float],
    drops: Sequence[float] = (),
    timeouts: Sequence[float] = (),
    abort_times: Sequence[float] = (),
) -> List[Dict[str, float]]:
    """Bin an open-loop run into fixed time windows.

    Every window reports offered arrivals, completed (committed)
    transactions with their latency percentiles, aborts, and shed load
    (drops + queue timeouts), each binned by the instant the event
    happened.  ``completion_times`` and ``completion_latencies`` are
    parallel sequences.  Windows cover ``[0, horizon_us)``; the last one
    may be partial and its rates are normalized by its true width.
    Events at or past the horizon (completions and queue timeouts during
    the post-run drain) are excluded — folding them into the last window
    would inflate its goodput with work that did not happen inside it.
    """
    if window_us <= 0 or horizon_us <= 0:
        return []
    n_windows = max(1, math.ceil(horizon_us / window_us))

    def bin_of(t: float) -> int:
        if not 0.0 <= t < horizon_us:
            return -1
        return min(n_windows - 1, int(t // window_us))

    offered = [0] * n_windows
    dropped = [0] * n_windows
    timed_out = [0] * n_windows
    aborted = [0] * n_windows
    latencies: List[List[float]] = [[] for _ in range(n_windows)]
    for t in arrivals:
        if (index := bin_of(t)) >= 0:
            offered[index] += 1
    for t in drops:
        if (index := bin_of(t)) >= 0:
            dropped[index] += 1
    for t in timeouts:
        if (index := bin_of(t)) >= 0:
            timed_out[index] += 1
    for t in abort_times:
        if (index := bin_of(t)) >= 0:
            aborted[index] += 1
    for t, latency in zip(completion_times, completion_latencies):
        if (index := bin_of(t)) >= 0:
            latencies[index].append(latency)
    windows: List[Dict[str, float]] = []
    for index in range(n_windows):
        start = index * window_us
        end = min(start + window_us, horizon_us)
        width_s = max(end - start, 1e-9) / SECOND
        sample = sorted(latencies[index])
        windows.append(
            {
                "start_us": start,
                "end_us": end,
                "offered": offered[index],
                "offered_tps": round(offered[index] / width_s, 1),
                "completed": len(sample),
                "goodput_tps": round(len(sample) / width_s, 1),
                "aborted": aborted[index],
                "dropped": dropped[index],
                "timed_out": timed_out[index],
                "latency_p50_us": round(_percentile(sample, 0.50), 1),
                "latency_p99_us": round(_percentile(sample, 0.99), 1),
            }
        )
    return windows


@dataclass
class ExperimentMetrics:
    """Aggregated outcome of one experiment run."""

    protocol: str
    n_nodes: int
    measured_duration_us: float
    committed: int = 0
    committed_update: int = 0
    committed_read_only: int = 0
    aborted: int = 0
    latency: LatencySummary = field(default_factory=lambda: LatencySummary.from_samples(()))
    update_latency: LatencySummary = field(default_factory=lambda: LatencySummary.from_samples(()))
    read_only_latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )
    internal_latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )
    precommit_wait: LatencySummary = field(default_factory=lambda: LatencySummary.from_samples(()))
    extra: Dict[str, float] = field(default_factory=dict)
    phases: List[Dict[str, float]] = field(default_factory=list)
    """Per-phase accounting of fault-plan and traffic-scenario runs
    (empty for plain fail-free closed-loop runs)."""
    timeseries: List[Dict[str, float]] = field(default_factory=list)
    """Windowed time series of an open-loop run (see
    :func:`compute_timeseries`); empty for closed-loop runs."""

    # ------------------------------------------------------------------
    @classmethod
    def from_clients(
        cls,
        protocol: str,
        n_nodes: int,
        clients: Iterable[ClientStats],
        measured_duration_us: float,
        extra: Optional[Dict[str, float]] = None,
        phase_windows: Optional[Sequence] = None,
        timeseries: Optional[List[Dict[str, float]]] = None,
    ) -> "ExperimentMetrics":
        clients = list(clients)
        latencies: List[float] = []
        update_latencies: List[float] = []
        read_only_latencies: List[float] = []
        internal_latencies: List[float] = []
        precommit_waits: List[float] = []
        commit_times: List[float] = []
        abort_times: List[float] = []
        committed = committed_update = committed_read_only = aborted = 0
        for stats in clients:
            committed += stats.committed
            committed_update += stats.committed_update
            committed_read_only += stats.committed_read_only
            aborted += stats.aborted
            latencies.extend(stats.latencies_us)
            update_latencies.extend(stats.update_latencies_us)
            read_only_latencies.extend(stats.read_only_latencies_us)
            internal_latencies.extend(stats.internal_latencies_us)
            precommit_waits.extend(stats.precommit_waits_us)
            commit_times.extend(stats.commit_times_us)
            abort_times.extend(stats.abort_times_us)
        phases = compute_phase_metrics(phase_windows, commit_times, abort_times)
        metrics_extra = dict(extra or {})
        if phases:
            availabilities = [
                phase["availability"]
                for phase in phases
                if phase.get("availability") is not None
            ]
            if availabilities:
                metrics_extra.setdefault("availability_min", round(min(availabilities), 4))
        return cls(
            protocol=protocol,
            n_nodes=n_nodes,
            measured_duration_us=measured_duration_us,
            committed=committed,
            committed_update=committed_update,
            committed_read_only=committed_read_only,
            aborted=aborted,
            latency=LatencySummary.from_samples(latencies),
            update_latency=LatencySummary.from_samples(update_latencies),
            read_only_latency=LatencySummary.from_samples(read_only_latencies),
            internal_latency=LatencySummary.from_samples(internal_latencies),
            precommit_wait=LatencySummary.from_samples(precommit_waits),
            extra=metrics_extra,
            phases=phases,
            timeseries=list(timeseries or []),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_streaming(
        cls,
        protocol: str,
        n_nodes: int,
        accumulator,
        measured_duration_us: float,
        extra: Optional[Dict[str, float]] = None,
    ) -> "ExperimentMetrics":
        """Aggregate from a :class:`~repro.harness.streaming.StreamingAccumulator`.

        The streaming twin of :meth:`from_clients`: counts are exact,
        latency summaries come from the accumulator's quantile sketches,
        and the phase/time-series tables were binned online — no
        per-transaction record was ever retained.
        """
        phases = accumulator.phase_metrics()
        metrics_extra = dict(extra or {})
        if phases:
            availabilities = [
                phase["availability"]
                for phase in phases
                if phase.get("availability") is not None
            ]
            if availabilities:
                metrics_extra.setdefault("availability_min", round(min(availabilities), 4))
        return cls(
            protocol=protocol,
            n_nodes=n_nodes,
            measured_duration_us=measured_duration_us,
            committed=accumulator.committed,
            committed_update=accumulator.committed_update,
            committed_read_only=accumulator.committed_read_only,
            aborted=accumulator.aborted,
            latency=LatencySummary.from_sketch(accumulator.latency),
            update_latency=LatencySummary.from_sketch(accumulator.update_latency),
            read_only_latency=LatencySummary.from_sketch(accumulator.read_only_latency),
            internal_latency=LatencySummary.from_sketch(accumulator.internal_latency),
            precommit_wait=LatencySummary.from_sketch(accumulator.precommit_wait),
            extra=metrics_extra,
            phases=phases,
            timeseries=accumulator.timeseries(),
        )

    # ------------------------------------------------------------------
    @property
    def throughput_tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.measured_duration_us <= 0:
            return 0.0
        return self.committed / (self.measured_duration_us / SECOND)

    @property
    def throughput_ktps(self) -> float:
        """Committed transactions per simulated second, in thousands."""
        return self.throughput_tps / 1_000.0

    @property
    def abort_rate(self) -> float:
        attempts = self.committed + self.aborted
        if attempts == 0:
            return 0.0
        return self.aborted / attempts

    # -------------------------------------------------- clock metadata plane
    @property
    def clock_bytes_mean(self) -> Optional[float]:
        """Mean encoded (delta-compressed) bytes per message-borne clock."""
        return self.extra.get("clock_bytes_mean")

    @property
    def clock_bytes_max(self) -> Optional[float]:
        """Largest single encoded clock, in bytes."""
        return self.extra.get("clock_bytes_max")

    @property
    def clock_compression_ratio(self) -> Optional[float]:
        """Encoded/dense byte ratio over every clock shipped (lower = better)."""
        return self.extra.get("clock_compression_ratio")

    # ---------------------------------------------------------- traffic plane
    @property
    def offered_tps(self) -> Optional[float]:
        """Offered load of an open-loop run (arrivals per simulated second)."""
        return self.extra.get("offered_tps")

    @property
    def goodput_tps(self) -> Optional[float]:
        """Committed transactions per simulated second under open loop.

        Distinct from ``throughput_tps`` only in intent: under open loop
        the difference between *offered* and *goodput* is the system
        falling behind, which closed-loop runs cannot express.
        """
        return self.extra.get("goodput_tps")

    @property
    def dropped(self) -> Optional[float]:
        """Arrivals shed because the admission queue was full."""
        return self.extra.get("dropped")

    @property
    def timed_out(self) -> Optional[float]:
        """Queued arrivals abandoned unissued after ``queue_timeout_us``."""
        return self.extra.get("timed_out")

    # ------------------------------------------------------------ fault plane
    @property
    def availability_min(self) -> Optional[float]:
        """Lowest per-phase availability of a fault-plan run."""
        return self.extra.get("availability_min")

    @property
    def stalled_clients(self) -> Optional[float]:
        """Clients whose in-flight transaction never completed by drain."""
        return self.extra.get("stalled_clients")

    @property
    def quiescence_leaked_writers(self) -> Optional[float]:
        """Update transactions still held in snapshot queues at drain.

        This is the ROADMAP's known liveness issue made measurable: a
        fail-free run that drains to quiescence must report zero here; a
        non-zero value means pre-commit state leaked (the 4-party stall
        pattern, or a fault that severed a Remove/Decide chain).
        """
        return self.extra.get("quiescence_leaked_writers")

    # ------------------------------------------------------------ trace plane
    @property
    def traced_txns(self) -> float:
        """Sampled transactions kept by a traced run (0 when untraced)."""
        return self.extra.get("trace.txns", 0.0)

    @property
    def trace_critical_path_us(self) -> Dict[str, float]:
        """Critical-path attribution histogram of a traced run.

        Maps span name (``wait.lock``, ``rpc.prepare``, ``phase.execute``,
        the residual ``run`` bucket, ...) to total microseconds that span
        kind spent *on the critical path* of sampled transactions — the
        ``trace.crit_us.*`` keys the runner folds into ``extra``, with the
        prefix stripped.  Empty for untraced runs.
        """
        prefix = "trace.crit_us."
        return {
            key[len(prefix) :]: value
            for key, value in self.extra.items()
            if key.startswith(prefix)
        }

    @property
    def trace_dominant(self) -> Dict[str, float]:
        """Per-span-name count of transactions it dominated (``trace.dominant.*``)."""
        prefix = "trace.dominant."
        return {
            key[len(prefix) :]: value
            for key, value in self.extra.items()
            if key.startswith(prefix)
        }

    @property
    def precommit_fraction(self) -> float:
        """Share of update-transaction latency spent between internal and
        external commit (Figure 5's red bar)."""
        if self.update_latency.count == 0 or self.update_latency.mean_us == 0:
            return 0.0
        return self.precommit_wait.mean_us / self.update_latency.mean_us

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the reports and EXPERIMENTS.md generation."""
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "throughput_ktps": round(self.throughput_ktps, 3),
            "committed": self.committed,
            "aborted": self.aborted,
            "abort_rate": round(self.abort_rate, 4),
            "latency_mean_ms": round(self.latency.mean_ms, 4),
            "update_latency_mean_ms": round(self.update_latency.mean_ms, 4),
            "read_only_latency_mean_ms": round(self.read_only_latency.mean_ms, 4),
            "precommit_fraction": round(self.precommit_fraction, 4),
            **self.extra,
        }
