"""Experiment runner.

:func:`run_experiment` builds a cluster for the requested protocol, starts
``clients_per_node`` closed-loop clients on every node, runs the simulation
for a warm-up window followed by a measurement window, and aggregates the
client statistics into :class:`~repro.harness.metrics.ExperimentMetrics`.

:func:`find_saturation_throughput` is the Figure 4(a) procedure: it sweeps
the number of clients per node and reports the best throughput achieved —
"the number of clients per node differs per reported datapoint".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.cluster import build_cluster
from repro.harness.metrics import ExperimentMetrics
from repro.workload.profiles import WorkloadGenerator
from repro.workload.ycsb import ClientStats, closed_loop_client


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    protocol: str
    config: ClusterConfig
    workload: WorkloadConfig
    metrics: ExperimentMetrics
    clients: List[ClientStats] = field(default_factory=list)
    node_counters: Dict[str, int] = field(default_factory=dict)
    cluster: Optional[object] = None

    @property
    def throughput_ktps(self) -> float:
        return self.metrics.throughput_ktps


def run_experiment(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    duration_us: float = 200_000.0,
    warmup_us: float = 40_000.0,
    record_history: bool = False,
    keep_cluster: bool = False,
    keys: Optional[Sequence[object]] = None,
) -> ExperimentResult:
    """Run one (protocol, configuration, workload) experiment.

    Parameters
    ----------
    duration_us:
        Total simulated time, including the warm-up window.
    warmup_us:
        Simulated time during which client statistics are not recorded (the
        system fills its pipelines and reaches steady state).
    record_history:
        Record every committed transaction for consistency checking (slows
        the run down and grows memory; off for benchmarks).
    keep_cluster:
        Keep the cluster object on the result (tests use it to inspect node
        state); off by default so large runs can be garbage collected.
    """
    config.validate()
    workload.validate()
    cluster = build_cluster(protocol, config=config, keys=keys, record_history=record_history)

    all_stats: List[ClientStats] = []
    for node_id in range(config.n_nodes):
        for client_index in range(config.clients_per_node):
            session = cluster.session(node_id)
            rng = cluster.sim.rng.stream(f"workload.n{node_id}.c{client_index}")
            generator = WorkloadGenerator(
                workload,
                cluster.keys,
                rng,
                placement=cluster.placement,
                node_id=node_id,
            )
            stats = ClientStats(node_id=node_id, client_index=client_index)
            all_stats.append(stats)
            cluster.spawn(
                closed_loop_client(
                    session,
                    generator,
                    stats,
                    deadline_us=duration_us,
                    warmup_us=warmup_us,
                    think_time_us=workload.think_time_us,
                ),
                name=f"client-{node_id}-{client_index}",
            )

    cluster.run(until=duration_us)
    measured = max(duration_us - warmup_us, 1.0)
    extra: Dict[str, float] = {}
    counters = cluster.total_counters()
    if "starvation_backoffs" in counters:
        extra["starvation_backoffs"] = counters["starvation_backoffs"]
    metrics = ExperimentMetrics.from_clients(
        protocol=protocol,
        n_nodes=config.n_nodes,
        clients=all_stats,
        measured_duration_us=measured,
        extra=extra,
    )
    return ExperimentResult(
        protocol=protocol,
        config=config,
        workload=workload,
        metrics=metrics,
        clients=all_stats,
        node_counters=dict(counters),
        cluster=cluster if keep_cluster else None,
    )


def run_trials(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    trials: int = 1,
    **kwargs,
) -> List[ExperimentResult]:
    """Run ``trials`` independent repetitions with derived seeds."""
    results = []
    for trial in range(trials):
        trial_config = replace(config, seed=config.seed + 1_000 * trial)
        results.append(run_experiment(protocol, trial_config, workload, **kwargs))
    return results


def average_throughput_ktps(results: Sequence[ExperimentResult]) -> float:
    """Mean throughput over a list of trial results."""
    if not results:
        return 0.0
    return sum(result.throughput_ktps for result in results) / len(results)


def find_saturation_throughput(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    client_counts: Sequence[int] = (1, 3, 5, 10, 15),
    **kwargs,
) -> ExperimentResult:
    """Figure 4(a): best throughput over a sweep of clients per node."""
    best: Optional[ExperimentResult] = None
    for clients in client_counts:
        swept = replace(config, clients_per_node=clients)
        result = run_experiment(protocol, swept, workload, **kwargs)
        if best is None or result.throughput_ktps > best.throughput_ktps:
            best = result
    assert best is not None
    best.metrics.extra["saturation_clients_per_node"] = float(
        best.config.clients_per_node
    )
    return best
