"""Experiment runner.

:func:`run_experiment` builds a cluster for the requested protocol, starts
its clients, runs the simulation for a warm-up window followed by a
measurement window, and aggregates the client statistics into
:class:`~repro.harness.metrics.ExperimentMetrics`.  The client plane is
chosen by the configuration: an empty
:class:`~repro.traffic.plan.TrafficPlan` (the default) starts
``clients_per_node`` closed-loop clients per node — byte-identical to the
historical behaviour — while a non-empty plan starts one open-loop
arrival source per node instead (see :mod:`repro.workload.openloop`) and
additionally produces time-resolved metrics and per-scenario-phase
summaries.

:func:`find_saturation_throughput` is the Figure 4(a) procedure: it sweeps
the number of clients per node and reports the best throughput achieved —
"the number of clients per node differs per reported datapoint".  The
sweep's datapoints are independent simulations and fan out across CPU
cores like every other sweep (:func:`run_points`).
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.harness.cluster import build_cluster
from repro.harness.metrics import ExperimentMetrics, compute_timeseries
from repro.harness.streaming import StreamingAccumulator
from repro.workload.openloop import aggregate_open_loop, install_open_loop
from repro.workload.profiles import WorkloadGenerator
from repro.workload.ycsb import ClientStats, closed_loop_client


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    protocol: str
    config: ClusterConfig
    workload: WorkloadConfig
    metrics: ExperimentMetrics
    clients: List[ClientStats] = field(default_factory=list)
    node_counters: Dict[str, int] = field(default_factory=dict)
    cluster: Optional[object] = None
    #: Merged :class:`~repro.trace.recorder.TraceResult` when the run was
    #: traced (``trace=`` argument), else ``None``.
    trace: Optional[object] = None

    @property
    def throughput_ktps(self) -> float:
        return self.metrics.throughput_ktps


def run_experiment(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    duration_us: float = 200_000.0,
    warmup_us: float = 40_000.0,
    record_history: bool = False,
    keep_cluster: bool = False,
    keys: Optional[Sequence[object]] = None,
    drain_us: Optional[float] = None,
    streaming_metrics: bool = False,
    engine: str = "serial",
    shards: Optional[int] = None,
    parallel_mode: str = "process",
    trace=None,
) -> ExperimentResult:
    """Run one (protocol, configuration, workload) experiment.

    Parameters
    ----------
    duration_us:
        Total simulated time, including the warm-up window.
    warmup_us:
        Simulated time during which client statistics are not recorded (the
        system fills its pipelines and reaches steady state).
    record_history:
        ``True`` records every committed transaction for post-hoc
        consistency checking (slows the run down and grows memory;
        off for benchmarks).  ``"windowed"`` records through the
        online :class:`~repro.consistency.window.WindowedHistoryRecorder`
        instead — bounded memory, verdicts as the run progresses.  A
        recorder instance is used as-is (custom epoch/retention bounds).
    keep_cluster:
        Keep the cluster object on the result (tests use it to inspect node
        state); off by default so large runs can be garbage collected.
    drain_us:
        Extra simulated time after clients stop issuing, letting in-flight
        transactions finish so stalls and quiescence leaks can be measured.
        Defaults to 0 for fail-free runs (byte-identical to the historical
        behaviour) and to 25 ms when the config carries a fault plan.
    streaming_metrics:
        Aggregate measurements online through a
        :class:`~repro.harness.streaming.StreamingAccumulator` instead of
        retaining per-transaction records: memory stays O(windows + sketch
        buckets) regardless of transaction count, at the cost of
        sketch-accurate (±1%) latency percentiles.  Open-loop runs keep
        their windowed time series; closed-loop runs stream the run-wide
        sketches and phase counters (no time series, matching the exact
        path).
    engine:
        ``"serial"`` (default) runs the single event loop.  ``"parallel"``
        runs the node-sharded conservative engine
        (:mod:`repro.harness.parallel`): the cluster's nodes split over
        ``shards`` worker processes that exchange messages at
        lookahead-sized window barriers — byte-identical results, scaled
        across cores.  Closed-loop only; ``record_history`` must be
        ``True``/``False``.
    shards:
        Shard count for ``engine="parallel"`` (default: up to 4, capped at
        the node count).  Each shard is one worker process, so sweeps
        fanning out via :func:`run_points` budget ``shards × pool workers``
        against the CPU count.
    parallel_mode:
        ``"process"`` (default) runs one worker process per shard;
        ``"inline"`` runs every shard in-process (debugging, equivalence
        tests — same results, no parallel speed-up).
    trace:
        Causal-tracing plane (see :mod:`repro.trace` and
        ``docs/OBSERVABILITY.md``).  ``None``/``False`` (default) disables
        tracing — zero overhead beyond one pointer check per instrumented
        site.  ``True`` traces every transaction, a string is shorthand for
        "trace everything and write the Perfetto JSON to this path", and a
        :class:`~repro.trace.spec.TraceSpec` selects sampling
        (``sample_every`` / ``slower_than_us`` / ``txn_ids``) and the output
        path.  The merged :class:`~repro.trace.recorder.TraceResult` lands
        on ``ExperimentResult.trace`` and the critical-path attribution
        histogram in ``metrics.extra`` (``trace.*`` keys).
    """
    if engine == "parallel":
        from repro.harness.parallel import run_parallel_experiment

        return run_parallel_experiment(
            protocol,
            config,
            workload,
            duration_us=duration_us,
            warmup_us=warmup_us,
            record_history=record_history,
            keep_cluster=keep_cluster,
            keys=keys,
            drain_us=drain_us,
            streaming_metrics=streaming_metrics,
            shards=shards,
            mode=parallel_mode,
            trace=trace,
        )
    if engine != "serial":
        raise ConfigurationError(f"unknown engine {engine!r}; expected 'serial' or 'parallel'")
    if shards is not None:
        raise ConfigurationError("shards only applies to engine='parallel'")
    config.validate()
    workload.validate()
    if drain_us is None:
        drain_us = 25_000.0 if config.faults else 0.0
    cluster = build_cluster(protocol, config=config, keys=keys, record_history=record_history)
    recorder = cluster.attach_tracer(trace)

    all_stats: List[ClientStats] = []
    sessions = []
    sources = []
    sink: Optional[StreamingAccumulator] = None
    phase_windows = _experiment_phase_windows(config, duration_us)
    if config.traffic:
        # Open loop: the traffic plan's arrival sources drive the run;
        # closed-loop clients (and clients_per_node) do not apply.
        if streaming_metrics:
            sink = StreamingAccumulator(
                window_us=config.traffic.window_us,
                horizon_us=duration_us,
                phase_windows=phase_windows,
            )
        sources = install_open_loop(
            cluster, workload, duration_us=duration_us, warmup_us=warmup_us, sink=sink
        )
    else:
        if streaming_metrics:
            # Closed-loop streaming: run-wide sketches and online phase
            # counters; no windowed time series (window_us=0), matching the
            # exact closed-loop path, which never produced one.
            sink = StreamingAccumulator(
                window_us=0.0, horizon_us=duration_us, phase_windows=phase_windows
            )
        for node_id in range(config.n_nodes):
            for client_index in range(config.clients_per_node):
                session = cluster.session(node_id)
                sessions.append(session)
                rng = cluster.sim.rng.stream(f"workload.n{node_id}.c{client_index}")
                generator = WorkloadGenerator(
                    workload,
                    cluster.keys,
                    rng,
                    placement=cluster.placement,
                    node_id=node_id,
                )
                stats = ClientStats(node_id=node_id, client_index=client_index, sink=sink)
                all_stats.append(stats)
                # unit=node_id charges each client's scheduling to its
                # node's execution unit — the serial half of the engine
                # equivalence contract (see repro.harness.parallel).
                cluster.spawn(
                    closed_loop_client(
                        session,
                        generator,
                        stats,
                        deadline_us=duration_us,
                        warmup_us=warmup_us,
                        think_time_us=workload.think_time_us,
                    ),
                    name=f"client-{node_id}-{client_index}",
                    unit=node_id,
                )

    wall_start = time.perf_counter()
    events_before = cluster.sim.processed_events
    cluster.run(until=duration_us)
    if drain_us > 0:
        # Clients stop issuing at ``duration_us``; the drain lets in-flight
        # transactions finish (or reveal themselves as stalled).
        cluster.run(until=duration_us + drain_us)
    wall_seconds = time.perf_counter() - wall_start
    measured = max(duration_us - warmup_us, 1.0)
    extra: Dict[str, float] = {}
    timeseries: List[Dict[str, float]] = []
    sorted_arrivals: List[float] = []
    sorted_shed: List[float] = []
    if sources:
        open_loop_extra, all_stats = aggregate_open_loop(sources, measured)
        extra.update(open_loop_extra)
        sessions = [session for source in sources for session in source.sessions]
        if sink is None:
            sorted_arrivals = sorted(
                t for source in sources for t in source.stats.arrival_times_us
            )
            drop_times = [t for source in sources for t in source.stats.drop_times_us]
            timeout_times = [
                t for source in sources for t in source.stats.timeout_times_us
            ]
            sorted_shed = sorted(drop_times + timeout_times)
            timeseries = compute_timeseries(
                window_us=config.traffic.window_us,
                horizon_us=duration_us,
                arrivals=sorted_arrivals,
                completion_times=[
                    t for source in sources for t in source.stats.completion_times_us
                ],
                completion_latencies=[
                    latency
                    for source in sources
                    for latency in source.stats.completion_latencies_us
                ],
                drops=drop_times,
                timeouts=timeout_times,
                abort_times=[
                    t for source in sources for t in source.stats.client.abort_times_us
                ],
            )
    counters = cluster.total_counters()
    if "starvation_backoffs" in counters:
        extra["starvation_backoffs"] = counters["starvation_backoffs"]
    if drain_us > 0:
        # Fault-plane accounting: clients whose in-flight transaction never
        # completed, and pre-commit state still held at quiescence (the
        # ROADMAP's known liveness leak, now a first-class metric).
        extra["stalled_clients"] = float(
            sum(1 for session in sessions if session.current is not None)
        )
        leaked_writers = 0
        leaked_commit_queue = 0
        for node in cluster.nodes:
            queued = getattr(node, "queued_writer_count", None)
            if queued is not None:
                leaked_writers += queued()
            commit_queue = getattr(node, "commit_queue", None)
            if commit_queue is not None:
                leaked_commit_queue += len(commit_queue)
        extra["quiescence_leaked_writers"] = float(leaked_writers)
        extra["quiescence_commit_queue"] = float(leaked_commit_queue)
    if cluster.sim.fault_log:
        extra["fault_events"] = float(len(cluster.sim.fault_log))
    # Machine-readable performance accounting for the benchmark JSON output.
    extra["sim_events"] = float(cluster.sim.processed_events - events_before)
    extra["wall_seconds"] = wall_seconds
    # Clock-metadata accounting: what the transport's per-sender delta
    # codecs actually charged for message-borne vector clocks (the paper's
    # metadata-compression story, Section III-A).
    network = getattr(cluster, "network", None)
    if network is not None:
        clock_stats = network.clock_stats()
        clocks = clock_stats["clocks_encoded"]
        if clocks:
            encoded = clock_stats["encoded_bytes_total"]
            messages_sent = network.stats.total_sent
            extra["clocks_encoded"] = float(clocks)
            extra["clock_bytes_mean"] = round(encoded / clocks, 2)
            extra["clock_bytes_max"] = float(clock_stats["encoded_bytes_max"])
            extra["clock_bytes_per_msg"] = round(
                encoded / messages_sent if messages_sent else 0.0, 2
            )
            extra["clock_compression_ratio"] = round(encoded / clock_stats["dense_bytes_total"], 4)
    trace_result = None
    if recorder is not None:
        from repro.trace import (
            analyze_trace,
            attribution_extra,
            merge_trace_payloads,
            write_chrome_trace,
        )

        trace_result = merge_trace_payloads(recorder.spec, [recorder.payload()])
        paths = analyze_trace(trace_result)
        extra.update(attribution_extra(paths, trace_result))
        if recorder.spec.path:
            write_chrome_trace(recorder.spec.path, trace_result, paths)
    if sink is not None:
        # Streaming path: sketches and online bins instead of raw samples
        # (the per-phase offered/shed accounting was binned online too).
        metrics = ExperimentMetrics.from_streaming(
            protocol=protocol,
            n_nodes=config.n_nodes,
            accumulator=sink,
            measured_duration_us=measured,
            extra=extra,
        )
    else:
        metrics = ExperimentMetrics.from_clients(
            protocol=protocol,
            n_nodes=config.n_nodes,
            clients=all_stats,
            measured_duration_us=measured,
            extra=extra,
            phase_windows=phase_windows,
            timeseries=timeseries,
        )
        if sources and metrics.phases:
            # Per-scenario-phase offered-load accounting: goodput per phase
            # is only meaningful next to what was asked of the system then.
            for phase in metrics.phases:
                start, end = phase["start_us"], phase["end_us"]
                offered = bisect_left(sorted_arrivals, end) - bisect_left(sorted_arrivals, start)
                phase["offered"] = offered
                phase["offered_tps"] = round(offered / max((end - start) / 1_000_000.0, 1e-9), 1)
                phase["shed"] = bisect_left(sorted_shed, end) - bisect_left(sorted_shed, start)
    return ExperimentResult(
        protocol=protocol,
        config=config,
        workload=workload,
        metrics=metrics,
        clients=all_stats,
        node_counters=dict(counters),
        cluster=cluster if keep_cluster else None,
        trace=trace_result,
    )


def _experiment_phase_windows(
    config: ClusterConfig, duration_us: float
) -> Optional[List[Tuple[str, float, float]]]:
    """Phase windows of a run: fault windows, scenario windows, or both.

    Fault-only runs keep the exact windows (and labels) of
    :meth:`~repro.common.config.FaultPlan.phases`, so historical fault
    experiments are untouched.  Traffic-only runs use the scenario phases.
    When both planes are active the cut points merge and each window is
    labelled ``p<i>:<scenario>|<fault-kinds>`` — the fault part still ends
    with ``fail-free`` outside fault windows, which is what the
    availability reference in
    :func:`~repro.harness.metrics.compute_phase_metrics` keys on.
    """
    fault_windows = config.faults.phases(duration_us) if config.faults else []
    traffic_windows = config.traffic.phase_windows(duration_us) if config.traffic else []
    if not traffic_windows:
        return fault_windows or None
    if not fault_windows:
        return [(label, start, end) for label, start, end, _ in traffic_windows]
    cuts = {0.0, duration_us}
    for _, start, end, _ in traffic_windows:
        cuts.update((start, end))
    for fault in config.faults.faults:
        cuts.add(min(fault.at_us, duration_us))
        cuts.add(min(fault.end_us(duration_us), duration_us))
    ordered = sorted(cut for cut in cuts if 0.0 <= cut <= duration_us)
    merged: List[Tuple[str, float, float]] = []
    for index, (start, end) in enumerate(zip(ordered, ordered[1:])):
        if end - start <= 0:
            continue
        active = sorted(
            {
                fault.kind
                for fault in config.faults.faults
                if fault.at_us < end and fault.end_us(duration_us) > start
            }
        )
        fault_label = "+".join(active) if active else "fail-free"
        scenario = next(
            (
                label.split(":", 1)[1]
                for label, t_start, t_end, _ in traffic_windows
                if t_start < end and t_end > start
            ),
            None,
        )
        if scenario is not None:
            merged.append((f"p{index}:{scenario}|{fault_label}", start, end))
        else:
            merged.append((f"p{index}:{fault_label}", start, end))
    return merged


@dataclass(frozen=True)
class ExperimentPoint:
    """One picklable datapoint of a sweep, for the parallel runner."""

    protocol: str
    config: ClusterConfig
    workload: WorkloadConfig
    duration_us: float = 200_000.0
    warmup_us: float = 40_000.0
    label: object = None
    """Opaque tag (figure coordinates, sweep indices) echoed with the result."""
    record_history: object = False
    """History plane for the point (``run_experiment`` semantics).  When
    truthy the worker additionally runs the protocol's contract checks
    in-process — clusters cannot cross the process boundary, so the verdict
    travels back in ``metrics.extra`` (``consistency_ok`` /
    ``consistency_violations``)."""
    drain_us: Optional[float] = None
    streaming_metrics: bool = False
    engine: str = "serial"
    """``"serial"`` or ``"parallel"`` (the node-sharded engine).  Parallel
    points spawn ``shards`` worker processes *each*, so :func:`run_points`
    shrinks its pool to keep ``shards × pool workers`` within the CPU
    count."""
    shards: Optional[int] = None


def _point_shards(point: ExperimentPoint) -> int:
    """How many worker processes one point occupies while running."""
    if point.engine != "parallel":
        return 1
    if point.shards is not None:
        return max(1, min(point.shards, point.config.n_nodes))
    from repro.harness.parallel import default_shards

    return default_shards(point.config.n_nodes)


def _run_point_worker(point: ExperimentPoint) -> Tuple[object, ExperimentResult]:
    """Module-level worker so ProcessPoolExecutor can pickle it."""
    record_history = point.record_history
    result = run_experiment(
        point.protocol,
        point.config,
        point.workload,
        duration_us=point.duration_us,
        warmup_us=point.warmup_us,
        record_history=record_history,
        keep_cluster=bool(record_history),
        drain_us=point.drain_us,
        streaming_metrics=point.streaming_metrics,
        engine=point.engine,
        shards=point.shards if point.engine == "parallel" else None,
    )
    if record_history and result.cluster is not None:
        checks = result.cluster.check_contract()
        violations = sum(len(check.violations) for check in checks)
        result.metrics.extra["consistency_ok"] = float(all(check.ok for check in checks))
        result.metrics.extra["consistency_violations"] = float(violations)
        if violations:
            detail = "; ".join(
                f"{check.name}: {check.violations[0]}"
                for check in checks
                if check.violations
            )
            result.metrics.extra["consistency_detail"] = detail  # type: ignore[assignment]
        # The cluster cannot cross the process boundary back to the parent.
        result.cluster = None
    return point.label, result


def default_parallelism() -> int:
    """Worker count for parallel sweeps.

    ``REPRO_BENCH_PARALLEL`` overrides the default (``0``/``1`` disables
    parallelism, ``N`` uses N workers); otherwise all-but-one CPU is used so
    the host stays responsive.
    """
    raw = os.environ.get("REPRO_BENCH_PARALLEL")
    if raw is not None and raw.strip():
        return max(1, int(raw))
    return max(1, (os.cpu_count() or 2) - 1)


def run_points(
    points: Sequence[ExperimentPoint],
    max_workers: Optional[int] = None,
) -> List[Tuple[object, ExperimentResult]]:
    """Run independent experiment datapoints, fanned out across CPU cores.

    Every datapoint is an isolated simulation with its own seed, so the
    results are byte-identical to a serial run regardless of scheduling;
    only wall-clock time changes.  Results are returned in input order.
    With one worker (or a single point) everything runs in-process, which
    keeps debugging and profiling simple.

    Points using the parallel engine spawn their own shard processes, so
    the pool shrinks to keep ``max point shards × pool workers`` within
    the CPU count (``REPRO_BENCH_PARALLEL`` still caps the pool
    explicitly; it is applied after the shard budget).
    """
    explicit_cap = max_workers is not None or bool(
        (os.environ.get("REPRO_BENCH_PARALLEL") or "").strip()
    )
    if max_workers is None:
        max_workers = default_parallelism()
    widest = max((_point_shards(point) for point in points), default=1)
    if widest > 1 and not explicit_cap:
        max_workers = min(max_workers, max(1, (os.cpu_count() or 2) // widest))
    max_workers = min(max_workers, len(points)) or 1
    if max_workers <= 1 or len(points) <= 1:
        return [_run_point_worker(point) for point in points]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_run_point_worker, points))


def run_trials(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    trials: int = 1,
    **kwargs,
) -> List[ExperimentResult]:
    """Run ``trials`` independent repetitions with derived seeds."""
    results = []
    for trial in range(trials):
        trial_config = replace(config, seed=config.seed + 1_000 * trial)
        results.append(run_experiment(protocol, trial_config, workload, **kwargs))
    return results


def average_throughput_ktps(results: Sequence[ExperimentResult]) -> float:
    """Mean throughput over a list of trial results."""
    if not results:
        return 0.0
    return sum(result.throughput_ktps for result in results) / len(results)


def find_saturation_throughput(
    protocol: str,
    config: ClusterConfig,
    workload: WorkloadConfig,
    client_counts: Sequence[int] = (1, 3, 5, 10, 15),
    duration_us: float = 200_000.0,
    warmup_us: float = 40_000.0,
    max_workers: Optional[int] = None,
    **kwargs,
) -> ExperimentResult:
    """Figure 4(a): best throughput over a sweep of clients per node.

    Each client count is an independent simulation, so the sweep fans out
    across CPU cores via :func:`run_points`; results (including which
    count wins, ties broken toward the earliest count in ``client_counts``)
    are identical to the historical serial loop.  Extra ``run_experiment``
    keyword arguments force the serial path, since the parallel points
    cannot carry them.
    """
    if kwargs:
        results = [
            (
                clients,
                run_experiment(
                    protocol,
                    replace(config, clients_per_node=clients),
                    workload,
                    duration_us=duration_us,
                    warmup_us=warmup_us,
                    **kwargs,
                ),
            )
            for clients in client_counts
        ]
    else:
        points = [
            ExperimentPoint(
                protocol=protocol,
                config=replace(config, clients_per_node=clients),
                workload=workload,
                duration_us=duration_us,
                warmup_us=warmup_us,
                label=clients,
            )
            for clients in client_counts
        ]
        results = run_points(points, max_workers=max_workers)
    best: Optional[ExperimentResult] = None
    for _clients, result in results:
        if best is None or result.throughput_ktps > best.throughput_ktps:
            best = result
    assert best is not None
    best.metrics.extra["saturation_clients_per_node"] = float(best.config.clients_per_node)
    return best
