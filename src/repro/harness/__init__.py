"""Experiment harness.

The harness turns a (protocol, cluster configuration, workload) triple into
the numbers the paper reports: committed transactions per second, abort
rates, latency percentiles and the internal/external commit breakdown.

* :mod:`repro.harness.cluster` — protocol registry and cluster builder.
* :mod:`repro.harness.runner` — run one experiment (closed-loop clients,
  warm-up, measurement window) and the saturation search used by Figure 4(a).
* :mod:`repro.harness.metrics` — aggregation of client statistics.
* :mod:`repro.harness.sketch` — deterministic mergeable quantile sketches.
* :mod:`repro.harness.streaming` — online aggregation for open-loop runs
  (bounded memory at heavy traffic).
* :mod:`repro.harness.experiments` — the per-figure experiment definitions
  (workload and sweep parameters for Figures 3 through 8).
* :mod:`repro.harness.reporting` — plain-text tables mirroring the paper's
  figures, used by the benchmarks and EXPERIMENTS.md.
* :mod:`repro.harness.scenario` — one-shot scenario probe returning the
  signal vector and coverage signature consumed by :mod:`repro.search`.
"""

from repro.harness.cluster import PROTOCOLS, build_cluster
from repro.harness.metrics import ExperimentMetrics, LatencySummary
from repro.harness.runner import ExperimentResult, run_experiment, find_saturation_throughput
from repro.harness.reporting import format_series, format_table
from repro.harness.scenario import ScenarioOutcome, run_scenario
from repro.harness.sketch import QuantileSketch
from repro.harness.streaming import StreamingAccumulator

__all__ = [
    "ExperimentMetrics",
    "ExperimentResult",
    "LatencySummary",
    "PROTOCOLS",
    "QuantileSketch",
    "ScenarioOutcome",
    "StreamingAccumulator",
    "build_cluster",
    "find_saturation_throughput",
    "format_series",
    "format_table",
    "run_experiment",
    "run_scenario",
]
