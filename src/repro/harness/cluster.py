"""Harness-side view of the protocol registry.

The registry itself lives in :mod:`repro.protocols.registry` — one
name -> cluster-factory map shared by the harness, the benchmarks and the
examples (it used to be split between ``baselines.PROTOCOL_CLUSTERS`` and a
harness-side dict that special-cased ``"sss"``).  This module re-exports it
under the historical names so existing imports keep working.
"""

from __future__ import annotations

from repro.protocols.registry import REGISTRY, build_cluster, ensure_registry

ensure_registry()

PROTOCOLS = REGISTRY
"""Protocol name -> cluster facade class (alias of ``repro.protocols.REGISTRY``)."""

__all__ = ["PROTOCOLS", "build_cluster"]
