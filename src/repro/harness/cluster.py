"""Protocol registry and cluster builder.

Every protocol in the repository exposes the same cluster facade (sessions,
spawn, run, history), so the harness only needs a name-to-class map plus a
small builder that applies the experiment's configuration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.rococo import RococoCluster
from repro.baselines.twopc import TwoPCCluster
from repro.baselines.walter import WalterCluster
from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.core.cluster import SSSCluster

PROTOCOLS: Dict[str, type] = {
    "sss": SSSCluster,
    "2pc": TwoPCCluster,
    "walter": WalterCluster,
    "rococo": RococoCluster,
}
"""Protocol name -> cluster facade class."""


def build_cluster(
    protocol: str,
    config: Optional[ClusterConfig] = None,
    keys: Optional[Sequence[object]] = None,
    record_history: bool = False,
    **kwargs,
):
    """Instantiate the cluster facade for ``protocol``.

    History recording defaults to *off* for benchmark runs (it retains every
    committed transaction, which is useful for correctness checks but not for
    throughput measurements); tests and examples pass
    ``record_history=True``.
    """
    try:
        cluster_class = PROTOCOLS[protocol]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; expected one of {sorted(PROTOCOLS)}"
        ) from None
    return cluster_class(
        config=config, keys=keys, record_history=record_history, **kwargs
    )
