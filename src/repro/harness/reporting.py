"""Plain-text reporting of experiment results.

The benchmarks print, for every reproduced figure, a table whose rows mirror
the series the paper plots (protocol per line, one column per x-axis value).
The same formatting helpers are used by the examples and by the script that
refreshes ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[str, Sequence[object]],
    value_format: str = "{:.1f}",
) -> str:
    """Render a small fixed-width table.

    Parameters
    ----------
    title:
        Heading line (e.g. ``"Figure 3(b): throughput (KTx/s), 50% read-only"``).
    columns:
        X-axis labels (e.g. node counts).
    rows:
        Mapping of series name (protocol) to one value per column.
    """
    header_cells = ["series"] + [str(column) for column in columns]
    body_rows: List[List[str]] = []
    for name, values in rows.items():
        rendered = []
        for value in values:
            if value is None:
                rendered.append("-")
            elif isinstance(value, str):
                rendered.append(value)
            else:
                rendered.append(value_format.format(value))
        body_rows.append([name] + rendered)

    widths = [
        max(len(row[index]) for row in [header_cells] + body_rows)
        for index in range(len(header_cells))
    ]

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, separator, render_row(header_cells), separator]
    lines.extend(render_row(row) for row in body_rows)
    lines.append(separator)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One-line series rendering used in log output."""
    points = ", ".join(f"{x}:{y:.1f}" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def format_clock_metadata(metrics) -> str:
    """One-line clock-metadata summary of an experiment's metrics.

    Reports what the wire actually carried for vector clocks — mean/max
    encoded bytes per clock and the achieved compression ratio against the
    dense ``8 * width`` representation — alongside the usual throughput
    line.  Returns an explanatory placeholder for runs without clock-bearing
    messages (e.g. a protocol without vector clocks).
    """
    mean = metrics.clock_bytes_mean
    if mean is None:
        return "clock metadata: none shipped"
    ratio = metrics.clock_compression_ratio
    return (
        f"clock metadata: mean {mean:.1f} B/clock, "
        f"max {metrics.clock_bytes_max:.0f} B, "
        f"compression {ratio:.2f}x dense"
    )


def speedup_rows(
    baseline: Mapping[object, float], others: Mapping[str, Mapping[object, float]]
) -> Dict[str, List[Optional[float]]]:
    """Compute per-column speedups of ``baseline`` over each series in ``others``."""
    columns = list(baseline)
    rows: Dict[str, List[Optional[float]]] = {}
    for name, series in others.items():
        row: List[Optional[float]] = []
        for column in columns:
            other = series.get(column)
            base = baseline.get(column)
            if other in (None, 0) or base is None:
                row.append(None)
            else:
                row.append(base / other)
        rows[name] = row
    return rows


def dump_results_markdown(
    title: str,
    columns: Sequence[object],
    rows: Mapping[str, Sequence[object]],
    value_format: str = "{:.1f}",
) -> str:
    """Markdown rendering of the same table (used for EXPERIMENTS.md)."""
    lines = [f"### {title}", ""]
    header = "| series | " + " | ".join(str(column) for column in columns) + " |"
    divider = "|" + "---|" * (len(columns) + 1)
    lines.extend([header, divider])
    for name, values in rows.items():
        cells = []
        for value in values:
            if value is None:
                cells.append("-")
            elif isinstance(value, str):
                cells.append(value)
            else:
                cells.append(value_format.format(value))
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)
