"""Deterministic, mergeable quantile sketches for streaming metrics.

The streaming harness cannot keep one float per transaction — a
million-transaction run would spend more memory on latency lists than on
the simulation itself.  :class:`QuantileSketch` replaces the raw sample
list with a t-digest-style summary: a bounded set of buckets from which
any quantile can be read back with a *guaranteed relative error*.

Unlike an actual t-digest (whose centroids depend on insertion order and
compression timing), the buckets here are **fixed geometric intervals**
(the DDSketch construction): value ``v`` lands in bucket
``ceil(log(v) / log(gamma))`` with ``gamma = (1 + eps) / (1 - eps)``, so
every value in a bucket is within relative error ``eps`` of the bucket's
midpoint.  That choice buys three properties the harness pins with tests:

* **Determinism** — the sketch of a sample is a pure function of its
  values (no randomness, no insertion-order dependence, no dict-ordering
  dependence: bucket keys are ints and are sorted before any read).
* **Exact mergeability** — merging is per-bucket integer addition, so
  merging per-node sketches is associative and commutative and yields
  *bit-identical* counts (and therefore bit-identical quantiles) no
  matter how the merge tree is shaped.
* **Bounded memory** — latencies spanning ``[0.1us, 10s]`` fit in at most
  ``log(1e8) / log(gamma)`` buckets (~920 at the default 1% error), a few
  tens of kilobytes regardless of how many samples were added.

Quantiles use the same rank rule as
:meth:`repro.harness.metrics.LatencySummary.from_samples`
(``ceil(q * n)``-th smallest), so exact and sketched summaries are
comparable one-to-one; the pinned tolerance lives in
``tests/unit/test_sketch.py``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


class QuantileSketch:
    """Log-bucketed quantile sketch with relative-error guarantee.

    Parameters
    ----------
    relative_error:
        Maximum relative error of :meth:`quantile` answers (default 1%).
        All sketches that are merged together must share this value.
    """

    #: Values at or below this (microseconds) collapse into one underflow
    #: bucket; smaller latencies are below the simulation's resolution.
    MIN_VALUE = 1e-3

    __slots__ = ("relative_error", "_log_gamma", "count", "total", "min", "max", "buckets")

    def __init__(self, relative_error: float = 0.01):
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error must be in (0, 1), got {relative_error}")
        self.relative_error = relative_error
        self._log_gamma = math.log((1.0 + relative_error) / (1.0 - relative_error))
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.MIN_VALUE:
            index = -(2**30)  # dedicated underflow bucket
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + count

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (exact: per-bucket addition)."""
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge sketches with different relative_error "
                f"({self.relative_error} vs {other.relative_error})"
            )
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Value at quantile ``fraction``, within ``relative_error``.

        Uses the ``ceil(fraction * n)``-th-smallest rank rule of
        :meth:`~repro.harness.metrics.LatencySummary.from_samples`.
        """
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, math.ceil(fraction * self.count)))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                if index == -(2**30):
                    return max(self.min, 0.0)
                # Bucket i holds (gamma^(i-1), gamma^i]; the midpoint
                # 2 * gamma^i / (gamma + 1) is within relative_error of
                # every value in the bucket.
                gamma = math.exp(self._log_gamma)
                estimate = 2.0 * math.exp(index * self._log_gamma) / (gamma + 1.0)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts add up)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (bucket keys sorted for stable output)."""
        return {
            "relative_error": self.relative_error,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [[index, self.buckets[index]] for index in sorted(self.buckets)],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QuantileSketch":
        sketch = cls(relative_error=data["relative_error"])
        sketch.count = data["count"]
        sketch.total = data["total"]
        if sketch.count:
            sketch.min = data["min"]
            sketch.max = data["max"]
        sketch.buckets = {int(index): int(count) for index, count in data["buckets"]}
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QuantileSketch n={self.count} buckets={len(self.buckets)} "
            f"eps={self.relative_error}>"
        )


def merge_sketches(
    sketches: Iterable[QuantileSketch], relative_error: float = 0.01
) -> QuantileSketch:
    """Merge ``sketches`` into a fresh sketch (empty input gives an empty sketch)."""
    sketches = list(sketches)
    merged = QuantileSketch(
        relative_error=sketches[0].relative_error if sketches else relative_error
    )
    for sketch in sketches:
        merged.merge(sketch)
    return merged


__all__: List[str] = ["QuantileSketch", "merge_sketches"]
