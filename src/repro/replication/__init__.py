"""Key placement and partial replication.

SSS "does not make any assumption on the data clustering policy; simply every
shared key can be stored in one or more nodes, depending upon the chosen
replication degree" and assumes "a local look-up function that matches keys
with nodes".  This package implements that look-up function.
"""

from repro.replication.placement import KeyPlacement, hash_placement

__all__ = ["KeyPlacement", "hash_placement"]
