"""The look-up function mapping keys to their replica nodes.

:class:`KeyPlacement` deterministically assigns each key to
``replication_degree`` distinct nodes.  The default placement hashes the key
to a starting node and takes the following ``r - 1`` nodes round-robin, which
spreads load evenly and gives every node an equal share of primaries —
matching the paper's "no predefined partitioning scheme" model while staying
a pure local computation (no directory service required).

The placement also answers the locality queries used by the Figure 7
experiment (keys that have a replica on a given node), and provides balance
statistics used by tests.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId


def _stable_hash(key: object) -> int:
    """Deterministic 64-bit hash of a key (independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash_placement(key: object, n_nodes: int, replication_degree: int) -> Tuple[NodeId, ...]:
    """Replica set of ``key``: hash-selected primary plus successors."""
    primary = _stable_hash(key) % n_nodes
    return tuple((primary + offset) % n_nodes for offset in range(replication_degree))


class KeyPlacement:
    """Deterministic key-to-replicas mapping shared by every node.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the cluster.
    replication_degree:
        Number of replicas per key (1 disables replication, as in the
        ROCOCO comparison experiments).
    keys:
        Optional concrete key space; providing it precomputes the mapping and
        the per-node key lists used by locality-aware workloads.
    """

    def __init__(
        self,
        n_nodes: int,
        replication_degree: int,
        keys: Sequence[object] = (),
    ):
        if n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        if not 1 <= replication_degree <= n_nodes:
            raise ConfigurationError("replication_degree must be between 1 and n_nodes")
        self.n_nodes = n_nodes
        self.replication_degree = replication_degree
        self._cache: Dict[object, Tuple[NodeId, ...]] = {}
        self._local_keys: Dict[NodeId, List[object]] = {
            node: [] for node in range(n_nodes)
        }
        for key in keys:
            replicas = self.replicas(key)
            for node in replicas:
                self._local_keys[node].append(key)

    # ------------------------------------------------------------- look-up
    def replicas(self, key: object) -> Tuple[NodeId, ...]:
        """Nodes storing ``key`` (primary first)."""
        if key not in self._cache:
            self._cache[key] = hash_placement(key, self.n_nodes, self.replication_degree)
        return self._cache[key]

    def replicas_of(self, keys) -> Tuple[NodeId, ...]:
        """Union of the replica sets of ``keys`` (sorted, deduplicated)."""
        nodes = set()
        for key in keys:
            nodes.update(self.replicas(key))
        return tuple(sorted(nodes))

    def primary(self, key: object) -> NodeId:
        """First replica of ``key`` (ROCOCO's preferred node, Walter's
        preferred site)."""
        return self.replicas(key)[0]

    def is_replica(self, node: NodeId, key: object) -> bool:
        return node in self.replicas(key)

    # ------------------------------------------------------------- locality
    def local_keys(self, node: NodeId) -> List[object]:
        """Keys that have a replica on ``node`` (requires ``keys`` at init)."""
        return list(self._local_keys.get(node, []))

    # ------------------------------------------------------------- statistics
    def load_per_node(self) -> Dict[NodeId, int]:
        """Number of keys replicated on each node (requires ``keys`` at init)."""
        return {node: len(keys) for node, keys in self._local_keys.items()}

    def balance_ratio(self) -> float:
        """Max/min keys per node; 1.0 is perfectly balanced."""
        loads = [len(keys) for keys in self._local_keys.values() if keys]
        if not loads:
            return 1.0
        return max(loads) / max(1, min(loads))
