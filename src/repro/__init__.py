"""Reproduction of *SSS: Scalable Key-Value Store with External Consistent
and Abort-free Read-only Transactions* (ICDCS 2019).

The top-level package re-exports the entry points most users need:

* :class:`~repro.core.cluster.SSSCluster` — build a simulated SSS deployment
  and run transactions against it.
* :class:`~repro.common.config.ClusterConfig` /
  :class:`~repro.common.config.WorkloadConfig` — experiment configuration.
* :func:`~repro.consistency.checkers.check_external_consistency` — verify a
  recorded history against the paper's correctness criterion.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the full system
inventory and the per-figure experiment index.
"""

from repro.common.config import ClusterConfig, NetworkConfig, WorkloadConfig
from repro.consistency.checkers import (
    check_external_consistency,
    check_serializability,
    check_snapshot_reads,
)
from repro.core.cluster import SSSCluster
from repro.core.session import Session

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "NetworkConfig",
    "SSSCluster",
    "Session",
    "WorkloadConfig",
    "__version__",
    "check_external_consistency",
    "check_serializability",
    "check_snapshot_reads",
]
