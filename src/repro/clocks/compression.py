"""Wire compression of vector clocks.

Section III-A of the paper notes that shipping full vector clocks on every
message "might appear as a barrier to achieve high performance.  To alleviate
these costs we adopt metadata compression."  The codec below implements the
standard trick for that setting: the two peers of a channel remember the last
clock exchanged and only the entries that changed are shipped as
``(index, value)`` deltas, falling back to the dense representation when a
majority of entries changed.

The codec is self-contained and stateless apart from the per-peer reference
clock.  It is wired into the transport's wire-size accounting — every
message-borne clock goes through :meth:`VCCodec.clock_bytes`, so
``Network.stats.bytes_sent`` and the benchmark JSON reflect delta-compressed
clocks rather than the naive ``8 * vc.size`` — and it is exercised by
unit/property tests that round-trip captured protocol clock traffic.
"""

from __future__ import annotations

from operator import ne as _ne
from typing import Dict, List, Optional, Tuple, Union

from repro.clocks.vector_clock import VectorClock

DenseEncoding = Tuple[str, Tuple[int, ...]]
DeltaEncoding = Tuple[str, Tuple[Tuple[int, int], ...]]
Encoding = Union[DenseEncoding, DeltaEncoding]


class VCCodec:
    """Delta codec for vector clocks exchanged with a set of peers.

    One codec instance lives on each node; the peer key is typically the
    remote node identifier.  Encoding and decoding must observe the same
    sequence of clocks per peer (which holds for FIFO channels).

    ``size`` may be ``None`` ("adaptive"): the codec then accepts clocks of
    any width and treats a width change on a channel as a reference reset.
    The transport uses adaptive codecs because it carries every protocol's
    messages without knowing the cluster width up front.

    The codec keeps running totals of its encoding work (clocks encoded,
    encoded vs. dense bytes, largest encoding) so experiments can report the
    achieved compression alongside throughput; see :meth:`stats`.
    """

    DENSE = "dense"
    DELTA = "delta"

    __slots__ = (
        "size",
        "_last_sent",
        "_last_received",
        "clocks_encoded",
        "encoded_bytes_total",
        "dense_bytes_total",
        "encoded_bytes_max",
    )

    def __init__(self, size: Optional[int] = None):
        if size is not None and size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self._last_sent: Dict[object, VectorClock] = {}
        self._last_received: Dict[object, VectorClock] = {}
        # Accounting of every clock that went through clock_bytes().
        self.clocks_encoded = 0
        self.encoded_bytes_total = 0
        self.dense_bytes_total = 0
        self.encoded_bytes_max = 0

    # ------------------------------------------------------------ encoding
    def encode(self, peer: object, clock: VectorClock) -> Encoding:
        """Encode ``clock`` for transmission to ``peer``."""
        if self.size is not None and clock.size != self.size:
            raise ValueError(f"clock size {clock.size} != codec size {self.size}")
        reference = self._last_sent.get(peer)
        if reference is clock:
            # Interned clocks make the unchanged case an identity hit.
            return (self.DELTA, ())
        self._last_sent[peer] = clock
        if reference is None or reference.size != clock.size:
            return (self.DENSE, clock.entries)
        reference_entries = reference.entries
        clock_entries = clock.entries
        if reference_entries == clock_entries:
            return (self.DELTA, ())
        # A delta entry costs roughly twice a dense entry (index + value), so
        # the delta form only wins below half the width; bail out of the diff
        # scan as soon as the delta form can no longer win.
        budget = (clock.size - 1) // 2
        deltas: List[Tuple[int, int]] = []
        for index, previous in enumerate(reference_entries):
            value = clock_entries[index]
            if value != previous:
                if len(deltas) >= budget:
                    return (self.DENSE, clock_entries)
                deltas.append((index, value))
        return (self.DELTA, tuple(deltas))

    def decode(self, peer: object, encoding: Encoding) -> VectorClock:
        """Decode an encoding received from ``peer``."""
        kind, payload = encoding
        if kind == self.DENSE:
            clock = VectorClock(payload)
        elif kind == self.DELTA:
            reference = self._last_received.get(peer)
            if reference is None:
                raise ValueError(f"delta encoding from unknown peer {peer!r} (no reference clock)")
            if not payload:
                clock = reference
            else:
                entries = list(reference.entries)
                for index, value in payload:
                    entries[index] = int(value)
                clock = VectorClock._shared(tuple(entries))
        else:
            raise ValueError(f"unknown encoding kind {kind!r}")
        if self.size is not None and clock.size != self.size:
            raise ValueError("decoded clock has wrong size")
        self._last_received[peer] = clock
        return clock

    # ------------------------------------------------------------ accounting
    @staticmethod
    def encoded_size_bytes(encoding: Encoding) -> int:
        """Approximate wire size of an encoding (8 bytes per integer)."""
        kind, payload = encoding
        if kind == VCCodec.DENSE:
            return 1 + 8 * len(payload)
        return 1 + 16 * len(payload)

    def clock_bytes(self, peer: object, clock: VectorClock) -> int:
        """Encode ``clock`` for ``peer`` and return its wire size in bytes.

        This is the transport's accounting entry point (one call per clock
        per sent message); it advances the per-peer reference exactly as a
        real sender would and accumulates the codec's compression statistics.
        It computes the same size :meth:`encode` would produce, but inline —
        no encoding tuples are materialized and the interned-clock identity
        fast path costs one dict probe (the property tests pin the
        equivalence with :meth:`encode`).
        """
        entries = clock.entries
        width = len(entries)
        last = self._last_sent
        reference = last.get(peer)
        if reference is clock:
            nbytes = 1  # unchanged: empty delta
        else:
            last[peer] = clock
            if reference is None:
                nbytes = 1 + 8 * width
            else:
                reference_entries = reference.entries
                if reference_entries == entries:
                    nbytes = 1
                elif len(reference_entries) != width:
                    nbytes = 1 + 8 * width
                else:
                    # C-level diff count: one map(ne) pass beats a Python
                    # loop with early exit at every realistic clock width.
                    changed = sum(map(_ne, reference_entries, entries))
                    if changed > (width - 1) // 2:
                        nbytes = 1 + 8 * width
                    else:
                        nbytes = 1 + 16 * changed
        self.clocks_encoded += 1
        self.encoded_bytes_total += nbytes
        self.dense_bytes_total += 1 + 8 * width
        if nbytes > self.encoded_bytes_max:
            self.encoded_bytes_max = nbytes
        return nbytes

    def stats(self) -> Dict[str, float]:
        """Running totals of the codec's encoding work (see class docstring)."""
        return {
            "clocks_encoded": self.clocks_encoded,
            "encoded_bytes_total": self.encoded_bytes_total,
            "dense_bytes_total": self.dense_bytes_total,
            "encoded_bytes_max": self.encoded_bytes_max,
        }

    def reset_peer(self, peer: object) -> None:
        """Forget the reference clocks for ``peer`` (used after reconnects)."""
        self._last_sent.pop(peer, None)
        self._last_received.pop(peer, None)

    def compression_ratio(self, history: List[Encoding]) -> Optional[float]:
        """Ratio of encoded size to dense size over ``history`` (for reports).

        Requires a fixed-width codec (``size`` given at construction); the
        adaptive transport codecs report through :meth:`stats` instead.
        """
        if not history:
            return None
        if self.size is None:
            raise ValueError("compression_ratio requires a fixed-width codec")
        dense = len(history) * (1 + 8 * self.size)
        encoded = sum(self.encoded_size_bytes(encoding) for encoding in history)
        return encoded / dense
