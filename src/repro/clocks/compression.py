"""Wire compression of vector clocks.

Section III-A of the paper notes that shipping full vector clocks on every
message "might appear as a barrier to achieve high performance.  To alleviate
these costs we adopt metadata compression."  The codec below implements the
standard trick for that setting: the two peers of a channel remember the last
clock exchanged and only the entries that changed are shipped as
``(index, value)`` deltas, falling back to the dense representation when a
majority of entries changed.

The codec is self-contained and stateless apart from the per-peer reference
clock, and it is exercised by the network-size accounting (the
``size_estimate`` of messages carrying clocks) and by unit/property tests
that round-trip random clock sequences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.clocks.vector_clock import VectorClock

DenseEncoding = Tuple[str, Tuple[int, ...]]
DeltaEncoding = Tuple[str, Tuple[Tuple[int, int], ...]]
Encoding = Union[DenseEncoding, DeltaEncoding]


class VCCodec:
    """Delta codec for vector clocks exchanged with a set of peers.

    One codec instance lives on each node; the peer key is typically the
    remote node identifier.  Encoding and decoding must observe the same
    sequence of clocks per peer (which holds for FIFO channels).
    """

    DENSE = "dense"
    DELTA = "delta"

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self._last_sent: Dict[object, VectorClock] = {}
        self._last_received: Dict[object, VectorClock] = {}

    # ------------------------------------------------------------ encoding
    def encode(self, peer: object, clock: VectorClock) -> Encoding:
        """Encode ``clock`` for transmission to ``peer``."""
        if clock.size != self.size:
            raise ValueError(f"clock size {clock.size} != codec size {self.size}")
        reference = self._last_sent.get(peer)
        self._last_sent[peer] = clock
        if reference is None:
            return (self.DENSE, clock.entries)
        # A delta entry costs roughly twice a dense entry (index + value), so
        # the delta form only wins below half the width; bail out of the diff
        # scan as soon as the delta form can no longer win.
        budget = (self.size - 1) // 2
        reference_entries = reference.entries
        clock_entries = clock.entries
        if reference_entries == clock_entries:
            return (self.DELTA, ())
        deltas: List[Tuple[int, int]] = []
        for index, previous in enumerate(reference_entries):
            value = clock_entries[index]
            if value != previous:
                if len(deltas) >= budget:
                    return (self.DENSE, clock_entries)
                deltas.append((index, value))
        return (self.DELTA, tuple(deltas))

    def decode(self, peer: object, encoding: Encoding) -> VectorClock:
        """Decode an encoding received from ``peer``."""
        kind, payload = encoding
        if kind == self.DENSE:
            clock = VectorClock(payload)
        elif kind == self.DELTA:
            reference = self._last_received.get(peer)
            if reference is None:
                raise ValueError(
                    f"delta encoding from unknown peer {peer!r} (no reference clock)"
                )
            if not payload:
                clock = reference
            else:
                entries = list(reference.entries)
                for index, value in payload:
                    entries[index] = int(value)
                clock = VectorClock._wrap(tuple(entries))
        else:
            raise ValueError(f"unknown encoding kind {kind!r}")
        if clock.size != self.size:
            raise ValueError("decoded clock has wrong size")
        self._last_received[peer] = clock
        return clock

    # ------------------------------------------------------------ accounting
    @staticmethod
    def encoded_size_bytes(encoding: Encoding) -> int:
        """Approximate wire size of an encoding (8 bytes per integer)."""
        kind, payload = encoding
        if kind == VCCodec.DENSE:
            return 1 + 8 * len(payload)
        return 1 + 16 * len(payload)

    def reset_peer(self, peer: object) -> None:
        """Forget the reference clocks for ``peer`` (used after reconnects)."""
        self._last_sent.pop(peer, None)
        self._last_received.pop(peer, None)

    def compression_ratio(self, history: List[Encoding]) -> Optional[float]:
        """Ratio of encoded size to dense size over ``history`` (for reports)."""
        if not history:
            return None
        dense = len(history) * (1 + 8 * self.size)
        encoded = sum(self.encoded_size_bytes(encoding) for encoding in history)
        return encoded / dense
