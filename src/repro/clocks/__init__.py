"""Vector clocks and metadata compression.

Vector clocks are the causality-tracking backbone of SSS (and of the Walter
baseline).  :class:`~repro.clocks.vector_clock.VectorClock` implements the
entry-wise algebra used throughout the paper's pseudo-code (entry-wise max,
``<=`` / ``<`` comparison, per-entry increment), and
:mod:`repro.clocks.compression` implements the delta-based wire compression
the paper mentions as the mitigation for metadata overhead.
"""

from repro.clocks.compression import VCCodec
from repro.clocks.vector_clock import VectorClock

__all__ = ["VCCodec", "VectorClock"]
