"""The vector clock value type.

A :class:`VectorClock` is an immutable tuple of non-negative integers, one
entry per node in the system.  The operations match the ones used by the SSS
pseudo-code:

* ``vc[i]`` — read entry *i* (``T.VC[i]``, ``NodeVC[i]``);
* :meth:`merge` — entry-wise maximum (``max(commitVC, VCj)``);
* :meth:`increment` — copy with entry *i* incremented (``NodeVC[i]++``);
* :meth:`with_entry` — copy with entry *i* replaced (the ``xactVN``
  assignment in Algorithm 1, lines 21–24);
* ``<=`` and ``<`` — the partial order defined in Section IV
  (``v1 <= v2`` iff every entry of ``v1`` is <= the corresponding entry of
  ``v2``; ``v1 < v2`` additionally requires strict inequality somewhere).

Immutability is deliberate: vector clocks are used as version identifiers and
dictionary keys by the storage layer, and sharing mutable clocks between the
coordinator and participants of a 2PC round would be a correctness hazard.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple


class VectorClock:
    """Immutable fixed-width vector clock."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[int]):
        entries_tuple: Tuple[int, ...] = tuple(int(entry) for entry in entries)
        if any(entry < 0 for entry in entries_tuple):
            raise ValueError(f"vector clock entries must be >= 0: {entries_tuple}")
        self._entries = entries_tuple

    # ------------------------------------------------------------ constructors
    @classmethod
    def zeros(cls, size: int) -> "VectorClock":
        """The all-zero clock of width ``size``."""
        if size < 1:
            raise ValueError("vector clock size must be >= 1")
        return cls((0,) * size)

    # ------------------------------------------------------------ accessors
    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[int, ...]:
        return self._entries

    def __getitem__(self, index: int) -> int:
        return self._entries[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------ operations
    def merge(self, other: "VectorClock") -> "VectorClock":
        """Entry-wise maximum of the two clocks."""
        self._check_compatible(other)
        return VectorClock(
            max(a, b) for a, b in zip(self._entries, other._entries)
        )

    def increment(self, index: int, amount: int = 1) -> "VectorClock":
        """Copy of this clock with ``entries[index] += amount``."""
        if not 0 <= index < len(self._entries):
            raise IndexError(f"entry {index} out of range for size {self.size}")
        entries = list(self._entries)
        entries[index] += amount
        return VectorClock(entries)

    def with_entry(self, index: int, value: int) -> "VectorClock":
        """Copy of this clock with ``entries[index] = value``."""
        if not 0 <= index < len(self._entries):
            raise IndexError(f"entry {index} out of range for size {self.size}")
        entries = list(self._entries)
        entries[index] = int(value)
        return VectorClock(entries)

    def with_entries(self, indices: Sequence[int], value: int) -> "VectorClock":
        """Copy with every entry in ``indices`` set to ``value``.

        This is the Algorithm 1 step that sets all write-replica entries to
        the transaction version number ``xactVN``.
        """
        entries = list(self._entries)
        for index in indices:
            if not 0 <= index < len(entries):
                raise IndexError(f"entry {index} out of range for size {self.size}")
            entries[index] = int(value)
        return VectorClock(entries)

    def max_over(self, indices: Sequence[int]) -> int:
        """Maximum of the entries selected by ``indices`` (``xactVN``)."""
        if not indices:
            raise ValueError("max_over requires at least one index")
        return max(self._entries[index] for index in indices)

    # ------------------------------------------------------------ comparisons
    def _check_compatible(self, other: "VectorClock") -> None:
        if not isinstance(other, VectorClock):
            raise TypeError(f"expected VectorClock, got {type(other).__name__}")
        if other.size != self.size:
            raise ValueError(
                f"vector clock size mismatch: {self.size} vs {other.size}"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __le__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        return all(a <= b for a, b in zip(self._entries, other._entries))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self._entries != other._entries

    def __ge__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        return all(a >= b for a, b in zip(self._entries, other._entries))

    def __gt__(self, other: "VectorClock") -> bool:
        return self >= other and self._entries != other._entries

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True when neither clock is <= the other."""
        return not (self <= other) and not (other <= self)

    # ------------------------------------------------------------ display
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VC{list(self._entries)}"
