"""The vector clock value type.

A :class:`VectorClock` is an immutable tuple of non-negative integers, one
entry per node in the system.  The operations match the ones used by the SSS
pseudo-code:

* ``vc[i]`` — read entry *i* (``T.VC[i]``, ``NodeVC[i]``);
* :meth:`merge` — entry-wise maximum (``max(commitVC, VCj)``);
* :meth:`increment` — copy with entry *i* incremented (``NodeVC[i]++``);
* :meth:`with_entry` — copy with entry *i* replaced (the ``xactVN``
  assignment in Algorithm 1, lines 21–24);
* ``<=`` and ``<`` — the partial order defined in Section IV
  (``v1 <= v2`` iff every entry of ``v1`` is <= the corresponding entry of
  ``v2``; ``v1 < v2`` additionally requires strict inequality somewhere).

Immutability is deliberate: vector clocks are used as version identifiers and
dictionary keys by the storage layer, and sharing mutable clocks between the
coordinator and participants of a 2PC round would be a correctness hazard.

Sharing is what makes immutability cheap: clocks produced by the internal
constructors are *interned* in a bounded pool keyed by their entry tuple, so
the same logical clock — a commit clock merged at every replica, a node clock
echoed in every vote — is one object cluster-wide.  Interned clocks make the
identity fast paths of ``merge``/``__eq__``/``VCCodec.encode`` hit on the
dominant no-change case, and their cached hash is computed once per *value*
instead of once per copy.
"""

from __future__ import annotations

from operator import ge as _ge, le as _le
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple


class VectorClock:
    """Immutable fixed-width vector clock with copy-on-write sharing.

    The protocol hot path merges and compares clocks on every read, prepare
    and decide, so the operations avoid Python-level loops and redundant
    allocations: ``merge`` runs on C-level ``map(max, ...)`` and returns an
    existing operand when it already dominates (copy-on-write: a clock is
    only materialized when its value actually changes), the partial-order
    comparisons short-circuit through ``all(map(op, ...))``, the hash is
    computed once and cached, and internal results go through the interning
    pool (:meth:`_shared`), so equal clocks are usually the *same* object and
    downstream identity checks short-circuit.
    """

    __slots__ = ("_entries", "_hash")

    # Interning pool: entry tuple -> canonical instance.  Bounded so a long
    # simulation cannot grow it without limit; when full it is simply
    # cleared (the pool is a cache, identity is an optimization — equality
    # semantics never depend on it).
    _pool: Dict[Tuple[int, ...], "VectorClock"] = {}
    _POOL_MAX = 1 << 16
    _zeros: Dict[int, "VectorClock"] = {}

    def __init__(self, entries: Iterable[int]):
        entries_tuple: Tuple[int, ...] = tuple(int(entry) for entry in entries)
        if any(entry < 0 for entry in entries_tuple):
            raise ValueError(f"vector clock entries must be >= 0: {entries_tuple}")
        self._entries = entries_tuple
        self._hash: Optional[int] = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def _wrap(cls, entries_tuple: Tuple[int, ...]) -> "VectorClock":
        """Wrap an already-validated entry tuple without re-checking it."""
        clock = object.__new__(cls)
        clock._entries = entries_tuple
        clock._hash = None
        return clock

    @classmethod
    def _shared(cls, entries_tuple: Tuple[int, ...]) -> "VectorClock":
        """Canonical interned instance for an already-validated entry tuple."""
        pool = cls._pool
        clock = pool.get(entries_tuple)
        if clock is None:
            if len(pool) >= cls._POOL_MAX:
                pool.clear()
            clock = cls._wrap(entries_tuple)
            pool[entries_tuple] = clock
        return clock

    @classmethod
    def intern(cls, clock: "VectorClock") -> "VectorClock":
        """Return the canonical shared instance equal to ``clock``."""
        pool = cls._pool
        canonical = pool.get(clock._entries)
        if canonical is None:
            if len(pool) >= cls._POOL_MAX:
                pool.clear()
            pool[clock._entries] = clock
            return clock
        return canonical

    @classmethod
    def zeros(cls, size: int) -> "VectorClock":
        """The all-zero clock of width ``size`` (one shared instance each)."""
        clock = cls._zeros.get(size)
        if clock is None:
            if size < 1:
                raise ValueError("vector clock size must be >= 1")
            clock = cls._zeros[size] = cls._shared((0,) * size)
        return clock

    # ------------------------------------------------------------ accessors
    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[int, ...]:
        return self._entries

    def __getitem__(self, index: int) -> int:
        return self._entries[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------ operations
    def merge(self, other: "VectorClock") -> "VectorClock":
        """Entry-wise maximum of the two clocks.

        Returns the dominating operand unchanged when one already covers the
        other — merges against an up-to-date clock are the common case on
        the read path and allocate nothing.
        """
        if self is other:
            return self
        a = self._entries
        b = other._entries if isinstance(other, VectorClock) else None
        if b is None or len(a) != len(b):
            self._check_compatible(other)
        if a is b:
            return self
        merged = tuple(map(max, a, b))
        if merged == a:
            return self
        if merged == b:
            return other
        return VectorClock._shared(merged)

    def merge_many(self, others: Iterable["VectorClock"]) -> "VectorClock":
        """Entry-wise maximum of this clock and every clock in ``others``.

        Batch form of :meth:`merge`: one C-level ``map(max, ...)`` pass over
        all operands instead of one intermediate clock per pairwise merge.
        This is the vote-collection / node-VC update pattern — a coordinator
        folding a wave of proposed commit clocks, a participant advancing its
        node clock past a decision — where the pairwise chain would allocate
        ``k - 1`` throwaway tuples.
        """
        first = self._entries
        width = len(first)
        clocks = []
        operand_entries = [first]
        for other in others:
            entries = other._entries if isinstance(other, VectorClock) else None
            if entries is None or len(entries) != width:
                self._check_compatible(other)
            clocks.append(other)
            operand_entries.append(entries)
        if not clocks:
            return self
        # map(max) tolerates duplicate operands, so no dedup pass is needed.
        merged = tuple(map(max, *operand_entries))
        if merged == first:
            return self
        for other in clocks:
            if merged == other._entries:
                return other
        return VectorClock._shared(merged)

    def increment(self, index: int, amount: int = 1) -> "VectorClock":
        """Copy of this clock with ``entries[index] += amount``."""
        if not 0 <= index < len(self._entries):
            raise IndexError(f"entry {index} out of range for size {self.size}")
        entries = list(self._entries)
        entries[index] += amount
        return VectorClock._shared(tuple(entries))

    def with_entry(self, index: int, value: int) -> "VectorClock":
        """Copy of this clock with ``entries[index] = value``."""
        if not 0 <= index < len(self._entries):
            raise IndexError(f"entry {index} out of range for size {self.size}")
        value = int(value)
        if value < 0:
            raise ValueError(f"vector clock entries must be >= 0: {value}")
        if self._entries[index] == value:
            return self
        entries = list(self._entries)
        entries[index] = value
        return VectorClock._shared(tuple(entries))

    def with_entries(self, indices: Sequence[int], value: int) -> "VectorClock":
        """Copy with every entry in ``indices`` set to ``value``.

        This is the Algorithm 1 step that sets all write-replica entries to
        the transaction version number ``xactVN``.
        """
        value = int(value)
        if value < 0:
            raise ValueError(f"vector clock entries must be >= 0: {value}")
        entries = list(self._entries)
        for index in indices:
            if not 0 <= index < len(entries):
                raise IndexError(f"entry {index} out of range for size {self.size}")
            entries[index] = value
        entries_tuple = tuple(entries)
        if entries_tuple == self._entries:
            return self
        return VectorClock._shared(entries_tuple)

    def max_over(self, indices: Sequence[int]) -> int:
        """Maximum of the entries selected by ``indices`` (``xactVN``)."""
        if not indices:
            raise ValueError("max_over requires at least one index")
        return max(self._entries[index] for index in indices)

    # ------------------------------------------------------------ comparisons
    def _check_compatible(self, other: "VectorClock") -> None:
        if not isinstance(other, VectorClock):
            raise TypeError(f"expected VectorClock, got {type(other).__name__}")
        if other.size != self.size:
            raise ValueError(f"vector clock size mismatch: {self.size} vs {other.size}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, VectorClock) and self._entries == other._entries

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._entries)
            self._hash = cached
        return cached

    def __le__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        if self is other:
            return True
        return all(map(_le, self._entries, other._entries))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self._entries != other._entries

    def __ge__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        if self is other:
            return True
        return all(map(_ge, self._entries, other._entries))

    def __gt__(self, other: "VectorClock") -> bool:
        return self >= other and self._entries != other._entries

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True when neither clock is <= the other."""
        return not (self <= other) and not (other <= self)

    # ------------------------------------------------------------ display
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VC{list(self._entries)}"
