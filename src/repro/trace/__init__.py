"""Causal transaction tracing and critical-path analysis.

The trace plane answers the question the aggregate metrics cannot: *why was
this one transaction slow?*  When enabled (``run_experiment(trace=...)``),
every sampled transaction accumulates a causal record — client think/queue
time, coordinator state-machine phases, per-replica RPC rounds, message
send/deliver/handle points (with partition-held and crash-dropped messages
recorded as events), and every blocking wait (locks, commit queues,
ambiguous-writer resolution) with the awaited transaction ids as causal
links.  Crashes, restarts and recovery replay land on per-node tracks.

The plane is **zero-overhead when off**: instrumented sites guard on a
single ``sim.tracer is not None`` identity check, and the recorder is
*passive* — it never schedules events and never draws from the RNG
registry, so histories and metrics are byte-identical whether tracing is
enabled or not (pinned by ``tests/integration/test_trace_plane.py``).

Modules:

* :mod:`repro.trace.spec` — :class:`TraceSpec`, the sampling knobs;
* :mod:`repro.trace.recorder` — the per-shard recorder and the
  deterministic shard merge (engine-key tags, same pattern as
  ``ShardHistoryRecorder``);
* :mod:`repro.trace.analysis` — per-transaction critical paths and the
  phase-attribution aggregates folded into ``ExperimentMetrics.extra``;
* :mod:`repro.trace.export` — Chrome trace-event / Perfetto JSON;
* :mod:`repro.trace.schema` — structural validator (also a CLI);
* ``python -m repro.trace`` — capture a sampled trace of a small
  experiment (used by the CI benchmark-smoke job).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and workflow.
"""

from repro.trace.analysis import CriticalPath, analyze_trace, attribution_extra
from repro.trace.export import (
    export_chrome_trace,
    render_summary,
    trace_to_bytes,
    write_chrome_trace,
)
from repro.trace.recorder import TraceRecorder, TraceResult, merge_trace_payloads
from repro.trace.spec import TraceSpec

__all__ = [
    "CriticalPath",
    "TraceRecorder",
    "TraceResult",
    "TraceSpec",
    "analyze_trace",
    "attribution_extra",
    "export_chrome_trace",
    "merge_trace_payloads",
    "render_summary",
    "trace_to_bytes",
    "write_chrome_trace",
]
