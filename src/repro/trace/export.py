"""Chrome trace-event / Perfetto JSON export.

Layout (open in https://ui.perfetto.dev or ``chrome://tracing``):

* **pid 1 — "cluster"**: one thread track per node.  Message lifecycle
  points (``msg.send`` / ``msg.recv`` / ``msg.handle``) are zero-duration
  complete slices carrying flow arrows (``s``/``f`` bound by the sender-
  local delivery key) from each send to its delivery; crash/restart and
  dropped/held messages are instants; node-side waits (locks, commit
  queues, ambiguous resolution) and node-down windows are async spans —
  async because replica-side waits of different transactions overlap
  freely on one node track.

* **pid 2 — "transactions"**: one thread track per kept transaction.  The
  root complete slice spans begin → commit/abort (or the last recorded
  event for an unfinished transaction), with the protocol phases nested
  inside as complete slices and coordinator-side waits / RPC rounds as
  async spans.  Causal links (the awaited transaction ids) ride in each
  span's ``args.link``.

The output is byte-deterministic for a given trace: events are emitted in
a canonical sort order, timestamps are rounded to nanoseconds, and the
JSON is dumped with sorted keys — the determinism tests compare files
across processes, hash seeds and serial-vs-parallel engines byte for byte.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.trace.analysis import CriticalPath, analyze_trace
from repro.trace.recorder import TraceEvent, TraceResult

_PH_RANK = {"M": 0, "b": 1, "X": 2, "s": 3, "f": 4, "e": 5, "i": 6}

_CLUSTER_PID = 1
_TXN_PID = 2


def _ts(value: float) -> float:
    return round(value, 3)


class _Emitter:
    def __init__(self):
        self.events: List[dict] = []
        self._async_id = 0

    def meta(self, pid: int, tid: Optional[int], name: str, value: str) -> None:
        event = {"name": name, "ph": "M", "pid": pid, "ts": 0, "args": {"name": value}}
        if tid is not None:
            event["tid"] = tid
        self.events.append(event)

    def slice(self, pid: int, tid: int, name: str, ts: float, dur: float, args: dict) -> None:
        # Round the *endpoints*, not the duration: rounding ts and dur
        # independently lets a nested slice's rounded end drift past its
        # parent's, which the schema validator would flag as mis-nesting.
        start = _ts(ts)
        end = _ts(ts + dur)
        event = {
            "name": name,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": start,
            "dur": round(end - start, 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, pid: int, tid: int, name: str, ts: float, args: dict) -> None:
        event = {"name": name, "ph": "i", "s": "t", "pid": pid, "tid": tid, "ts": _ts(ts)}
        if args:
            event["args"] = args
        self.events.append(event)

    def async_span(
        self, pid: int, tid: int, name: str, ts: float, dur: float, args: dict
    ) -> None:
        self._async_id += 1
        ident = str(self._async_id)
        begin = {
            "name": name,
            "cat": name,
            "ph": "b",
            "id": ident,
            "pid": pid,
            "tid": tid,
            "ts": _ts(ts),
        }
        if args:
            begin["args"] = args
        self.events.append(begin)
        self.events.append(
            {
                "name": name,
                "cat": name,
                "ph": "e",
                "id": ident,
                "pid": pid,
                "tid": tid,
                "ts": _ts(ts + dur),
            }
        )

    def flow(self, pid: int, tid: int, ident: int, ts: float, start: bool) -> None:
        event = {
            "name": "msg",
            "cat": "msg",
            "ph": "s" if start else "f",
            "id": str(ident),
            "pid": pid,
            "tid": tid,
            "ts": _ts(ts),
        }
        if not start:
            event["bp"] = "e"
        self.events.append(event)


def _event_args(event: TraceEvent) -> dict:
    args = dict(event.args) if event.args else {}
    if event.link:
        args["link"] = [str(txn) for txn in event.link]
    if event.txn is not None and event.node is not None:
        args["txn"] = str(event.txn)
    return args


def _emit_node_event(emitter: _Emitter, event: TraceEvent) -> None:
    tid = event.node if event.node is not None else 0
    args = _event_args(event)
    if event.kind == "msg":
        flow = args.pop("flow", None)
        emitter.slice(_CLUSTER_PID, tid, event.name, event.ts, 0.0, args)
        if flow is not None:
            emitter.flow(_CLUSTER_PID, tid, flow, event.ts, start=event.name == "msg.send")
    elif event.kind == "span":
        emitter.async_span(_CLUSTER_PID, tid, event.name, event.ts, event.dur, args)
    else:
        emitter.instant(_CLUSTER_PID, tid, event.name, event.ts, args)


def export_chrome_trace(
    result: TraceResult, paths: Optional[List[CriticalPath]] = None
) -> dict:
    """Render ``result`` as a Chrome trace-event JSON document (a dict)."""
    if paths is None:
        paths = analyze_trace(result)
    by_txn = {path.txn: path for path in paths}
    emitter = _Emitter()

    emitter.meta(_CLUSTER_PID, None, "process_name", "cluster")
    emitter.meta(_TXN_PID, None, "process_name", "transactions")

    node_ids = {event.node for event in result.events if event.node is not None}
    for rows in result.txns.values():
        node_ids.update(event.node for event in rows if event.node is not None)
    for node in sorted(node_ids):
        emitter.meta(_CLUSTER_PID, node, "thread_name", f"node {node}")

    for event in result.events:
        _emit_node_event(emitter, event)

    for tid, (txn, rows) in enumerate(sorted(result.txns.items())):
        path = by_txn.get(txn)
        outcome = path.outcome if path is not None else "unfinished"
        if path is not None and path.end > path.begin:
            begin, end = path.begin, path.end
        else:
            begin = min(row.ts for row in rows)
            end = max(row.ts + row.dur for row in rows)
        label = f"{txn} ({outcome}, {end - begin:.0f}us)"
        emitter.meta(_TXN_PID, tid, "thread_name", label)
        root_args: Dict[str, object] = {"outcome": outcome}
        if path is not None:
            dominant, micros = path.dominant
            root_args["dominant"] = dominant
            root_args["dominant_us"] = round(micros, 3)
        emitter.slice(_TXN_PID, tid, str(txn), begin, max(end - begin, 0.0), root_args)
        summary = result.finished.get(txn)
        if summary is not None:
            for name, start, stop in summary[3]:
                if stop > start:
                    emitter.slice(_TXN_PID, tid, name, start, stop - start, {})
        for event in rows:
            if event.node is not None:
                _emit_node_event(emitter, event)
            elif event.kind == "span":
                emitter.async_span(
                    _TXN_PID, tid, event.name, event.ts, event.dur, _event_args(event)
                )
            elif event.name not in ("txn.begin", "txn.end"):
                emitter.instant(_TXN_PID, tid, event.name, event.ts, _event_args(event))

    events = emitter.events
    # Global time order (then phase rank, so a flow start precedes its step
    # even at equal timestamps) keeps per-track timestamps monotonic AND
    # cross-track orderings — flow s before f — valid in file order.
    events.sort(
        key=lambda e: (
            e["ts"],
            _PH_RANK.get(e["ph"], 9),
            e["pid"],
            e.get("tid", -1),
            json.dumps(e, sort_keys=True),
        )
    )
    return {"traceEvents": events, "otherData": {"exporter": "repro.trace", "unit": "us"}}


def trace_to_bytes(document: dict) -> bytes:
    """Canonical byte encoding (what the determinism tests compare)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("ascii")


def write_chrome_trace(
    path: str, result: TraceResult, paths: Optional[List[CriticalPath]] = None
) -> dict:
    """Export ``result`` to ``path``; returns the document."""
    document = export_chrome_trace(result, paths)
    with open(path, "wb") as handle:
        handle.write(trace_to_bytes(document))
    return document


def render_summary(result: TraceResult, paths: Optional[List[CriticalPath]] = None) -> str:
    """Human-readable critical-path summary (printed by the replay CLI)."""
    if paths is None:
        paths = analyze_trace(result)
    lines = [
        f"traced txns: {len(result.txns)} "
        f"({len(result.finished)} finished, {len(result.unfinished)} unfinished)"
    ]
    dominant_counts: Dict[str, int] = {}
    for path in paths:
        name, _ = path.dominant
        dominant_counts[name] = dominant_counts.get(name, 0) + 1
    for name in sorted(dominant_counts, key=lambda n: (-dominant_counts[n], n)):
        lines.append(f"  dominant {name}: {dominant_counts[name]} txn(s)")
    for path in paths[:10]:
        name, micros = path.dominant
        lines.append(
            f"  {path.txn}: {path.duration:.0f}us {path.outcome}, "
            f"critical path {name} ({micros:.0f}us)"
        )
    return "\n".join(lines)


__all__ = [
    "export_chrome_trace",
    "render_summary",
    "trace_to_bytes",
    "write_chrome_trace",
]
