"""Structural validation of exported Chrome trace-event JSON.

``python -m repro.trace.schema trace.json [...]`` — exit 0 when every file
is well-formed, 1 otherwise.  CI runs this over the traces exported by the
benchmark-smoke job, pinning three invariants:

* **spans nest** — complete (``X``) slices on each track form a proper
  stack (a child never outlives its parent), and every async ``b`` has a
  matching ``e`` with a non-negative duration;
* **links resolve** — every flow step (``f``) refers to a flow start
  (``s``) with the same id earlier on the timeline, and every causal
  ``args.link`` entry is a well-formed transaction id;
* **timestamps are monotonic per track** — events appear in
  non-decreasing ``ts`` order within each ``(pid, tid)`` track.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_TXN_ID = re.compile(r"^T\d+\.\d+$")

# Timestamps are microseconds rounded to nanoseconds; slice ends are
# reconstructed as ts + dur, so allow sub-nanosecond float error.
_EPS = 1e-6


def validate_trace(document: object) -> List[str]:
    """Return the list of structural problems (empty == valid)."""
    problems: List[str] = []
    if not isinstance(document, dict) or not isinstance(document.get("traceEvents"), list):
        return ["document is not an object with a traceEvents list"]
    events = document["traceEvents"]

    last_ts: Dict[Tuple[int, int], float] = {}
    stacks: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    async_open: Dict[Tuple[int, str, str], float] = {}
    flow_starts: Dict[str, float] = {}

    for index, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            problems.append(f"event {index}: missing ph")
            continue
        ph = event["ph"]
        if ph == "M":
            continue
        if "pid" not in event or "tid" not in event or "ts" not in event:
            problems.append(f"event {index}: missing pid/tid/ts ({event.get('name')!r})")
            continue
        track = (event["pid"], event["tid"])
        ts = float(event["ts"])

        previous = last_ts.get(track)
        if previous is not None and ts < previous:
            problems.append(
                f"event {index}: ts {ts} goes backwards on track {track} (after {previous})"
            )
        last_ts[track] = ts

        if ph == "X":
            dur = float(event.get("dur", 0.0))
            if dur < 0:
                problems.append(f"event {index}: negative duration {dur}")
                continue
            stack = stacks.setdefault(track, [])
            while stack and stack[-1][1] <= ts + _EPS and stack[-1][1] < ts + dur - _EPS:
                stack.pop()
            if stack and ts + dur > stack[-1][1] + _EPS:
                problems.append(
                    f"event {index}: slice {event.get('name')!r} [{ts}, {ts + dur}] "
                    f"escapes enclosing {stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}] "
                    f"on track {track}"
                )
                continue
            stack.append((ts, ts + dur, str(event.get("name"))))
        elif ph == "b":
            key = (event["pid"], str(event.get("cat")), str(event.get("id")))
            if key in async_open:
                problems.append(f"event {index}: async span {key} opened twice")
            async_open[key] = ts
        elif ph == "e":
            key = (event["pid"], str(event.get("cat")), str(event.get("id")))
            start = async_open.pop(key, None)
            if start is None:
                problems.append(f"event {index}: async end {key} without begin")
            elif ts < start:
                problems.append(f"event {index}: async span {key} ends before it begins")
        elif ph == "s":
            ident = str(event.get("id"))
            if ident in flow_starts:
                problems.append(f"event {index}: flow {ident} started twice")
            flow_starts[ident] = ts
        elif ph == "f":
            ident = str(event.get("id"))
            start = flow_starts.get(ident)
            if start is None:
                problems.append(f"event {index}: flow step {ident} without a start")
            elif ts < start:
                problems.append(f"event {index}: flow {ident} arrives before it was sent")
        elif ph != "i":
            problems.append(f"event {index}: unknown phase {ph!r}")

        args = event.get("args")
        if isinstance(args, dict):
            for link in args.get("link", ()):
                if not _TXN_ID.match(str(link)):
                    problems.append(f"event {index}: malformed causal link {link!r}")
            txn = args.get("txn")
            if txn is not None and not _TXN_ID.match(str(txn)):
                problems.append(f"event {index}: malformed txn id {txn!r}")

    for key, start in sorted(async_open.items()):
        problems.append(f"async span {key} (begun at {start}) never ended")
    return problems


def validate_file(path: Path, out=sys.stdout) -> int:
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return 1
    problems = validate_trace(document)
    if problems:
        for problem in problems[:20]:
            print(f"{path}: {problem}", file=sys.stderr)
        if len(problems) > 20:
            print(f"{path}: ... and {len(problems) - 20} more", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    tracks = {(e.get("pid"), e.get("tid")) for e in events if e.get("ph") != "M"}
    print(f"{path}: OK ({len(events)} events, {len(tracks)} tracks)", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.schema",
        description="Validate exported Chrome trace-event JSON files.",
    )
    parser.add_argument("trace", type=Path, nargs="+", help="trace JSON file(s)")
    arguments = parser.parse_args(argv)
    worst = 0
    for path in arguments.trace:
        worst = max(worst, validate_file(path))
    return worst


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())


__all__ = ["main", "validate_file", "validate_trace"]
