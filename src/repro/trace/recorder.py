"""The per-shard trace recorder and the deterministic shard merge.

A :class:`TraceRecorder` hangs off ``Simulation.tracer``.  Instrumented
sites throughout the engine, transport, runtime and protocol nodes guard on
``sim.tracer is not None`` — one identity check when tracing is off — and
otherwise record :class:`TraceEvent` rows.  The recorder is **passive**: it
never schedules events and never draws from the RNG registry, so enabling
it cannot perturb the simulation (histories stay byte-identical).

Every event is stamped with an :class:`~repro.sim.shard.EngineTagSequencer`
tag — the engine key of the event that produced it plus a within-event
counter — exactly the ``ShardHistoryRecorder`` pattern.  Each engine event
executes on exactly one shard with the key the serial engine would have
used, so concatenating per-shard event lists and sorting by tag reproduces
the serial recording order byte-for-byte (pinned by
``tests/integration/test_trace_determinism.py``).

Spans are recorded *at resolution*, not as begin/end pairs: the caller
remembers the start timestamp (a local float — free when tracing is off)
and records one event when the wait resolves, which also lets the span name
reflect the outcome (e.g. ``wait.ambiguous`` vs ``wait.ambiguous_guard``
when the guard timer fired).  A wait still unresolved at the end of the run
is simply absent; the transaction's unfinished state is visible instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.ids import TransactionId
from repro.sim.shard import EngineTagSequencer
from repro.trace.spec import TraceSpec

#: Merge tag: ``(engine event time, engine event key, within-event counter)``.
Tag = Tuple[float, int, int]

#: ``(phase name, start, end)`` rows attached to a finished transaction.
PhaseRow = Tuple[str, float, float]

#: Finished-transaction summary: ``(begin, end, outcome, phases)``.
TxnSummary = Tuple[float, float, str, Tuple[PhaseRow, ...]]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded point or interval.

    ``kind`` is one of:

    * ``"span"`` — closed interval ``[ts, ts + dur]`` (a wait, an RPC
      round, a client phase, a node-down window);
    * ``"instant"`` — a point event (crash, restart, dropped message);
    * ``"msg"`` — a message lifecycle point (send/recv/handle); ``args``
      may carry ``flow`` (the sender-local delivery key) binding the
      send to its deliveries as a flow arrow.

    ``txn`` attributes the event to a transaction (staged only when the
    spec samples it); ``node`` places it on that node's track in the
    export — events with ``node is None`` render on the transaction's own
    track.  ``link`` carries awaited transaction ids as causal links.
    """

    tag: Tag
    kind: str
    name: str
    ts: float
    dur: float
    txn: Optional[TransactionId]
    node: Optional[int]
    link: Tuple[TransactionId, ...]
    args: Optional[dict]


class TraceRecorder:
    """Accumulates trace events for one engine (one shard, or the serial run)."""

    __slots__ = ("sim", "spec", "events", "staged", "finished", "_tags")

    def __init__(self, sim, spec: TraceSpec):
        self.sim = sim
        self.spec = spec
        #: Events not attributed to any transaction (node lifecycle, client
        #: think/backoff windows) — always recorded while tracing is on.
        self.events: List[TraceEvent] = []
        #: Per-sampled-transaction event lists, in recording order.
        self.staged: Dict[TransactionId, List[TraceEvent]] = {}
        #: Transactions that reached commit/abort, with their summary.
        self.finished: Dict[TransactionId, TxnSummary] = {}
        self._tags = EngineTagSequencer(sim)

    # ------------------------------------------------------------- selection
    def wants(self, txn_id: TransactionId) -> bool:
        """Whether ``txn_id`` is sampled — cheap enough for hot paths."""
        return self.spec.selects(txn_id)

    # ------------------------------------------------------------- recording
    def _emit(
        self,
        kind: str,
        name: str,
        ts: float,
        dur: float,
        txn: Optional[TransactionId],
        node: Optional[int],
        link: Tuple[TransactionId, ...],
        args: Optional[dict],
    ) -> None:
        if txn is not None:
            if not self.spec.selects(txn):
                return
            event = TraceEvent(self._tags.next_tag(), kind, name, ts, dur, txn, node, link, args)
            self.staged.setdefault(txn, []).append(event)
        else:
            event = TraceEvent(self._tags.next_tag(), kind, name, ts, dur, txn, node, link, args)
            self.events.append(event)

    def span(
        self,
        name: str,
        start: float,
        *,
        txn: Optional[TransactionId] = None,
        node: Optional[int] = None,
        link: Sequence[TransactionId] = (),
        args: Optional[dict] = None,
        end: Optional[float] = None,
    ) -> None:
        """Record the interval ``[start, end or now]`` (at resolution)."""
        stop = self.sim.now if end is None else end
        self._emit("span", name, start, stop - start, txn, node, tuple(link), args)

    def instant(
        self,
        name: str,
        ts: Optional[float] = None,
        *,
        txn: Optional[TransactionId] = None,
        node: Optional[int] = None,
        link: Sequence[TransactionId] = (),
        args: Optional[dict] = None,
    ) -> None:
        when = self.sim.now if ts is None else ts
        self._emit("instant", name, when, 0.0, txn, node, tuple(link), args)

    def message(
        self,
        name: str,
        txn: Optional[TransactionId],
        node: int,
        *,
        flow: Optional[int] = None,
        peer: Optional[int] = None,
        kind: str = "",
    ) -> None:
        """Record a message lifecycle point on ``node``'s track, now."""
        args: dict = {}
        if flow is not None:
            args["flow"] = flow
        if peer is not None:
            args["peer"] = peer
        if kind:
            args["msg"] = kind
        self._emit("msg", name, self.sim.now, 0.0, txn, node, (), args or None)

    # ------------------------------------------------------------ txn lifecycle
    def txn_begin(self, txn_id: TransactionId, node: int) -> None:
        self._emit("instant", "txn.begin", self.sim.now, 0.0, txn_id, None, (), {"node": node})

    def txn_end(
        self,
        txn_id: TransactionId,
        outcome: str,
        begin: float,
        phases: Sequence[PhaseRow] = (),
    ) -> None:
        """Record commit/abort/teardown of ``txn_id`` at the current time."""
        if not self.spec.selects(txn_id):
            return
        end = self.sim.now
        self.finished[txn_id] = (begin, end, outcome, tuple(phases))
        self._emit("instant", "txn.end", end, 0.0, txn_id, None, (), {"outcome": outcome})

    # ---------------------------------------------------------------- payload
    def payload(self) -> Tuple[List[TraceEvent], Dict, Dict]:
        """Picklable ``(events, staged, finished)`` triple for shard reports."""
        return (self.events, self.staged, self.finished)


class TraceResult:
    """Merged, filtered trace of one experiment."""

    __slots__ = ("spec", "events", "txns", "finished")

    def __init__(
        self,
        spec: TraceSpec,
        events: List[TraceEvent],
        txns: Dict[TransactionId, List[TraceEvent]],
        finished: Dict[TransactionId, TxnSummary],
    ):
        self.spec = spec
        self.events = events
        self.txns = txns
        self.finished = finished

    @property
    def unfinished(self) -> List[TransactionId]:
        """Sampled transactions that never reached commit/abort (sorted)."""
        return sorted(txn for txn in self.txns if txn not in self.finished)


def merge_trace_payloads(spec: TraceSpec, payloads: Sequence[Tuple]) -> TraceResult:
    """Merge per-shard recorder payloads into one deterministic result.

    A transaction's events span shards (coordinator-side spans on its owner
    shard, replica waits and deliveries elsewhere), so per-transaction lists
    are concatenated across shards and sorted by engine tag; the
    ``slower_than_us`` filter is applied here — only here — so every shard
    drops or keeps a transaction consistently.  Unfinished transactions are
    always kept: in a stall they are the evidence.
    """
    events: List[TraceEvent] = []
    staged: Dict[TransactionId, List[TraceEvent]] = {}
    finished: Dict[TransactionId, TxnSummary] = {}
    for shard_events, shard_staged, shard_finished in payloads:
        events.extend(shard_events)
        for txn, rows in shard_staged.items():
            staged.setdefault(txn, []).extend(rows)
        finished.update(shard_finished)
    events.sort(key=_tag_of)

    threshold = spec.slower_than_us
    txns: Dict[TransactionId, List[TraceEvent]] = {}
    for txn in sorted(staged):
        summary = finished.get(txn)
        if threshold is not None and summary is not None:
            begin, end = summary[0], summary[1]
            if end - begin < threshold:
                continue
        rows = staged[txn]
        rows.sort(key=_tag_of)
        txns[txn] = rows
    kept_finished = {txn: finished[txn] for txn in txns if txn in finished}
    return TraceResult(spec, events, txns, kept_finished)


def _tag_of(event: TraceEvent) -> Tag:
    return event.tag


__all__ = [
    "PhaseRow",
    "Tag",
    "TraceEvent",
    "TraceRecorder",
    "TraceResult",
    "TxnSummary",
    "merge_trace_payloads",
]
