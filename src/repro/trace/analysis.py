"""Post-hoc critical-path analysis over a merged trace.

For each traced transaction the analyzer attributes every microsecond of
the lifetime ``[begin, end]`` to the most specific recorded activity
covering it, with blocking waits taking precedence over RPC rounds, which
take precedence over the coarse protocol phases:

* priority 3 — ``wait.*`` spans and client backoff (the transaction was
  *blocked*, on the linked transactions where recorded);
* priority 2 — ``rpc.*`` spans (waiting on replica round-trips);
* priority 1 — protocol phases (execute / prepare / precommit) derived
  from the transaction metadata timestamps;
* priority 0 — anything uncovered is ``run`` (compute, think, queueing
  between recorded activities).

Among same-priority overlapping spans the latest-started (innermost) wins,
so a guard-timeout wait nested inside a longer ambiguous wait is charged to
the guard, not the envelope.  The *dominant* span of a transaction is the
largest single attribution bucket — "which wait dominated commit latency".

:func:`attribution_extra` folds the per-transaction attributions into flat
``ExperimentMetrics.extra`` keys (``trace.crit_us.<name>`` sums,
``trace.dominant.<name>`` counts, ``trace.phase_us.<phase>`` sums) so the
histograms travel with every experiment result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.ids import TransactionId
from repro.trace.recorder import TraceEvent, TraceResult

#: Attribution priority classes (higher = more specific).
_PRIORITY_WAIT = 3
_PRIORITY_RPC = 2
_PRIORITY_PHASE = 1

#: The bucket for time not covered by any recorded span.
RUN_BUCKET = "run"


@dataclass(frozen=True)
class CriticalPath:
    """Attributed lifetime of one traced transaction."""

    txn: TransactionId
    begin: float
    end: float
    outcome: str  # "commit", "abort", "torn-down" or "unfinished"
    attribution: Dict[str, float] = field(default_factory=dict)
    phase_us: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.begin

    @property
    def dominant(self) -> Tuple[str, float]:
        """``(bucket name, microseconds)`` of the largest attribution."""
        if not self.attribution:
            return (RUN_BUCKET, 0.0)
        name = max(self.attribution, key=lambda key: (self.attribution[key], key))
        return (name, self.attribution[name])


def _span_priority(name: str) -> Optional[int]:
    if name.startswith("wait.") or name == "client.backoff":
        return _PRIORITY_WAIT
    if name.startswith("rpc."):
        return _PRIORITY_RPC
    return None


def _txn_path(
    txn: TransactionId,
    rows: List[TraceEvent],
    summary: Optional[tuple],
) -> CriticalPath:
    if summary is not None:
        begin, end, outcome, phases = summary
    else:
        begin = min(row.ts for row in rows)
        end = max(row.ts + row.dur for row in rows)
        outcome, phases = "unfinished", ()
        for row in rows:
            if row.name == "txn.begin":
                begin = row.ts
                break
    if end <= begin:
        return CriticalPath(txn, begin, end, outcome)

    # (start, end, priority, name) intervals clipped to the lifetime.
    intervals: List[Tuple[float, float, int, str]] = []
    for name, start, stop in phases:
        intervals.append((max(start, begin), min(stop, end), _PRIORITY_PHASE, name))
    for row in rows:
        if row.kind != "span":
            continue
        priority = _span_priority(row.name)
        if priority is None:
            continue
        start = max(row.ts, begin)
        stop = min(row.ts + row.dur, end)
        if stop > start:
            intervals.append((start, stop, priority, row.name))

    bounds = sorted({begin, end, *(i[0] for i in intervals), *(i[1] for i in intervals)})
    attribution: Dict[str, float] = {}
    phase_us: Dict[str, float] = {}
    for low, high in zip(bounds, bounds[1:]):
        if high <= begin or low >= end:
            continue
        best: Optional[Tuple[float, float, int, str]] = None
        phase_name = None
        for interval in intervals:
            if interval[0] <= low and interval[1] >= high:
                if interval[2] == _PRIORITY_PHASE:
                    phase_name = interval[3]
                # Most specific first, then innermost (latest start), then
                # name for a deterministic tie-break.
                if best is None or (interval[2], interval[0], interval[3]) > (
                    best[2],
                    best[0],
                    best[3],
                ):
                    best = interval
        width = high - low
        bucket = best[3] if best is not None else RUN_BUCKET
        attribution[bucket] = attribution.get(bucket, 0.0) + width
        if phase_name is not None:
            phase_us[phase_name] = phase_us.get(phase_name, 0.0) + width
    return CriticalPath(txn, begin, end, outcome, attribution, phase_us)


def analyze_trace(result: TraceResult) -> List[CriticalPath]:
    """Critical paths for every kept transaction, slowest first.

    Deterministic: ties broken by transaction id.
    """
    paths = [
        _txn_path(txn, rows, result.finished.get(txn)) for txn, rows in sorted(result.txns.items())
    ]
    paths.sort(key=lambda path: (-path.duration, path.txn))
    return paths


def attribution_extra(paths: List[CriticalPath], result: TraceResult) -> Dict[str, float]:
    """Flatten the analysis into ``ExperimentMetrics.extra`` keys."""
    extra: Dict[str, float] = {
        "trace.txns": float(len(result.txns)),
        "trace.unfinished": float(len(result.unfinished)),
        "trace.events": float(
            len(result.events) + sum(len(rows) for rows in result.txns.values())
        ),
    }
    for path in paths:
        for name, micros in path.attribution.items():
            key = f"trace.crit_us.{name}"
            extra[key] = extra.get(key, 0.0) + micros
        for name, micros in path.phase_us.items():
            key = f"trace.phase_us.{name}"
            extra[key] = extra.get(key, 0.0) + micros
        dominant, _ = path.dominant
        key = f"trace.dominant.{dominant}"
        extra[key] = extra.get(key, 0.0) + 1.0
    return extra


__all__ = ["RUN_BUCKET", "CriticalPath", "analyze_trace", "attribution_extra"]
