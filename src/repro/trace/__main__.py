"""Capture a sampled trace of one small experiment.

``python -m repro.trace --protocol sss --out sss.trace.json`` runs a short
closed-loop experiment with the causal-tracing plane on, writes the
Perfetto-loadable Chrome trace-event JSON, and prints the critical-path
summary.  The CI benchmark-smoke job runs this once per protocol and
validates the artifacts with ``python -m repro.trace.schema``; it is also
the quickest way to produce a trace to poke at in the Perfetto UI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.harness.runner import run_experiment
from repro.trace.export import render_summary
from repro.trace.spec import TraceSpec


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a small experiment with causal tracing and export a Perfetto trace.",
    )
    parser.add_argument("--protocol", default="sss", help="protocol registry name (default sss)")
    parser.add_argument("--out", required=True, help="output path for the Chrome trace JSON")
    parser.add_argument("--n-nodes", type=int, default=3)
    parser.add_argument("--clients-per-node", type=int, default=2)
    parser.add_argument("--n-keys", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration-us", type=float, default=10_000.0)
    parser.add_argument("--warmup-us", type=float, default=0.0)
    parser.add_argument(
        "--sample-every", type=int, default=1, help="trace every Nth transaction per client node"
    )
    parser.add_argument(
        "--slower-than-us",
        type=float,
        default=None,
        help="keep only finished transactions at least this slow (stalled ones always kept)",
    )
    arguments = parser.parse_args(argv)

    spec = TraceSpec(
        sample_every=arguments.sample_every,
        slower_than_us=arguments.slower_than_us,
        path=arguments.out,
    )
    config = ClusterConfig(
        n_nodes=arguments.n_nodes,
        n_keys=arguments.n_keys,
        clients_per_node=arguments.clients_per_node,
        seed=arguments.seed,
    )
    result = run_experiment(
        arguments.protocol,
        config,
        WorkloadConfig(),
        duration_us=arguments.duration_us,
        warmup_us=arguments.warmup_us,
        trace=spec,
    )
    print(f"trace: {arguments.out}")
    print(render_summary(result.trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())
