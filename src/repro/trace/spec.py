"""Sampling configuration for the trace plane.

A :class:`TraceSpec` decides *which* transactions get full causal records.
Selection must be computable on any shard without communication, so it is a
pure function of the transaction id: ``TransactionId`` is ``(node, seq)``
with a per-node monotonic ``seq``, which makes ``seq % sample_every`` a
deterministic, coordination-free every-Nth filter per client node.

The ``slower_than_us`` knob is applied at merge time (a transaction's
duration is only known once it finishes); transactions that never finished
— the interesting ones in a stall — are always kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Union

from repro.common.errors import ConfigurationError
from repro.common.ids import TransactionId


@dataclass(frozen=True)
class TraceSpec:
    """What to trace and where to write it.

    Parameters
    ----------
    sample_every:
        Keep every Nth transaction per client node (``seq % N == 0``).
        ``1`` traces everything; large values keep full-fidelity tracing
        viable at the 256-server parallel scale.
    slower_than_us:
        If set, drop finished transactions faster than this threshold at
        merge time.  Unfinished (stalled) transactions are always kept.
    txn_ids:
        Explicit allow-list of transaction ids (``"T<node>.<seq>"``
        strings).  When set it replaces the ``sample_every`` filter.
    path:
        If set, :func:`repro.harness.runner.run_experiment` writes the
        Chrome trace-event JSON here after the run.
    """

    sample_every: int = 1
    slower_than_us: Optional[float] = None
    txn_ids: Optional[FrozenSet[str]] = None
    path: Optional[str] = None
    _txn_keys: Optional[FrozenSet[tuple]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self):
        if self.sample_every < 1:
            raise ConfigurationError(f"trace sample_every must be >= 1, got {self.sample_every}")
        if self.slower_than_us is not None and self.slower_than_us < 0:
            raise ConfigurationError(
                f"trace slower_than_us must be >= 0, got {self.slower_than_us}"
            )
        if self.txn_ids is not None:
            keys = frozenset(_parse_txn_id(text) for text in self.txn_ids)
            object.__setattr__(self, "txn_ids", frozenset(self.txn_ids))
            object.__setattr__(self, "_txn_keys", keys)

    # ------------------------------------------------------------------
    def selects(self, txn_id: TransactionId) -> bool:
        """Whether ``txn_id`` is traced (pure function, shard-independent)."""
        if self._txn_keys is not None:
            return (txn_id.node, txn_id.seq) in self._txn_keys
        return txn_id.seq % self.sample_every == 0

    @staticmethod
    def coerce(value: Union[None, bool, str, "TraceSpec"]) -> Optional["TraceSpec"]:
        """Normalize ``run_experiment(trace=...)`` inputs.

        ``None``/``False`` disable tracing; ``True`` traces everything with
        no export path; a string is an export path with default sampling.
        """
        if value is None or value is False:
            return None
        if value is True:
            return TraceSpec()
        if isinstance(value, str):
            return TraceSpec(path=value)
        if isinstance(value, TraceSpec):
            return value
        raise ConfigurationError(
            f"trace must be a TraceSpec, a path, True/False or None, got {value!r}"
        )


def _parse_txn_id(text: str) -> tuple:
    """``"T3.17"`` -> ``(3, 17)`` (the str() form of a TransactionId)."""
    try:
        node_text, seq_text = text.lstrip("T").split(".", 1)
        return (int(node_text), int(seq_text))
    except (AttributeError, ValueError):
        raise ConfigurationError(
            f"trace txn id {text!r} is not of the form 'T<node>.<seq>'"
        ) from None


__all__ = ["TraceSpec"]
