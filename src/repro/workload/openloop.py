"""Open-loop clients: arrivals decoupled from completions.

The closed-loop clients of :mod:`repro.workload.ycsb` can only ever observe
the saturation point — each client re-issues the moment its previous
transaction answers, so offered load self-throttles to whatever the system
sustains.  The open-loop source in this module severs that feedback: a
:class:`~repro.traffic.plan.TrafficPlan` schedules arrivals on its own
clock, and the system's *response* to that offered load (goodput, latency,
queue growth, shed load) becomes the measurement.

One :class:`OpenLoopSource` runs per node, offered ``1/n`` of the plan's
cluster-wide rate on its own named random streams
(``traffic.arrivals.n<id>`` for arrival sampling, ``traffic.mix.n<id>``
for transaction specs), so runs are byte-deterministic and adding a node
never perturbs another node's stream.

Each arrival drawn while the node is at its in-flight limit
(``plan.max_pending``) waits in a bounded admission queue
(``plan.queue_limit``); beyond that it is **dropped** on the spot, and a
queued arrival that waited longer than ``plan.queue_timeout_us`` when a
slot frees is abandoned unissued (**timed out**).  Both are first-class
overload outcomes, reported next to goodput — under open loop, "the
system kept up" and "the system shed load" are different numbers, which
is the entire point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import NodeCrashedError
from repro.traffic.plan import TrafficPlan
from repro.workload.profiles import WorkloadGenerator
from repro.workload.ycsb import ClientStats, execute_spec


@dataclass
class OpenLoopStats:
    """Per-node accounting of one open-loop source.

    ``client`` aggregates the protocol-level outcomes in the same
    :class:`~repro.workload.ycsb.ClientStats` shape the closed-loop
    harness uses (so :class:`~repro.harness.metrics.ExperimentMetrics`
    consumes both paths uniformly); latencies recorded there are
    **arrival-to-answer** — they include admission-queue wait, which is
    the latency an open-loop client actually observes.

    The ``*_times_us`` lists feed the time-resolved metrics and are
    recorded over the whole run; the scalar counters respect the warm-up
    window like every other measurement.
    """

    node_id: int
    client: ClientStats = None  # type: ignore[assignment]
    offered: int = 0
    started: int = 0
    dropped: int = 0
    timed_out: int = 0
    queue_depth_max: int = 0
    queue_depth_sum: int = 0
    queue_depth_samples: int = 0
    arrival_times_us: List[float] = field(default_factory=list)
    completion_times_us: List[float] = field(default_factory=list)
    completion_latencies_us: List[float] = field(default_factory=list)
    drop_times_us: List[float] = field(default_factory=list)
    timeout_times_us: List[float] = field(default_factory=list)

    def __post_init__(self):
        if self.client is None:
            self.client = ClientStats(node_id=self.node_id, client_index=-1)


class OpenLoopSource:
    """The per-node open-loop load generator process."""

    def __init__(
        self,
        cluster,
        node_id: int,
        plan: TrafficPlan,
        workload,
        duration_us: float,
        warmup_us: float,
        sink=None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.node_id = node_id
        self.plan = plan
        self.base_workload = workload
        self.duration_us = duration_us
        self.warmup_us = warmup_us
        self.sink = sink
        """Optional :class:`~repro.harness.streaming.StreamingAccumulator`:
        when set, per-event timestamps/latencies stream into it instead of
        growing the raw ``*_times_us`` lists (O(1) memory per event).  The
        scalar counters are maintained either way."""
        self.stats = OpenLoopStats(node_id=node_id)
        self.sessions: List = []
        """Every session this source ever opened (for stall accounting)."""
        self._free: List = []
        self._pending = 0
        self._queue: deque = deque()
        self._arrival_rng = self.sim.rng.stream(f"traffic.arrivals.n{node_id}")
        self._mix_rng = self.sim.rng.stream(f"traffic.mix.n{node_id}")
        self._txn_seq = 0

    # ------------------------------------------------------------------
    def run(self):
        """Generator process: walk the plan's phases, emitting arrivals."""
        n_nodes = self.cluster.config.n_nodes
        sim = self.sim
        for _label, start, end, phase in self.plan.phase_windows(self.duration_us):
            workload = phase.workload_config(self.base_workload)
            generator = WorkloadGenerator(
                workload,
                self.cluster.keys,
                self._mix_rng,
                placement=self.cluster.placement,
                node_id=self.node_id,
            )
            process = phase.process(offset_units=self.node_id / n_nodes, rate_scale=1.0 / n_nodes)
            for at_us in process.arrivals(self._arrival_rng, start, end):
                delay = at_us - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                self._on_arrival(generator)
        return self.stats

    # ------------------------------------------------------------------
    def _on_arrival(self, generator: WorkloadGenerator) -> None:
        now = self.sim.now
        stats = self.stats
        if self.sink is None:
            stats.arrival_times_us.append(now)
        else:
            self.sink.on_arrival(now)
        measured = now >= self.warmup_us
        if measured:
            stats.offered += 1
        depth = self._pending + len(self._queue)
        if depth > stats.queue_depth_max:
            stats.queue_depth_max = depth
        stats.queue_depth_sum += depth
        stats.queue_depth_samples += 1
        spec = generator.next_spec()
        if self._pending < self.plan.max_pending:
            self._start(self._take_session(), spec, now)
        elif len(self._queue) < self.plan.queue_limit:
            self._queue.append((now, spec))
        else:
            if self.sink is None:
                stats.drop_times_us.append(now)
            else:
                self.sink.on_drop(now)
            if measured:
                stats.dropped += 1

    def _take_session(self):
        if self._free:
            return self._free.pop()
        session = self.cluster.session(self.node_id)
        session.keep_history = False
        self.sessions.append(session)
        return session

    def _start(self, session, spec, arrival_us: float) -> None:
        self._pending += 1
        if self.sim.now >= self.warmup_us:
            self.stats.started += 1
        self._txn_seq += 1
        self.cluster.spawn(
            self._txn(session, spec, arrival_us),
            name=f"openloop-{self.node_id}-{self._txn_seq}",
        )

    def _txn(self, session, spec, arrival_us: float):
        meta = None
        try:
            committed, meta = yield from execute_spec(session, spec)
        except NodeCrashedError:
            # The co-located node crash-stopped mid-transaction: under
            # constant offered load this is lost work, not back-pressure.
            committed, meta = False, session.last
        self._record(spec, arrival_us, committed, meta)
        self._release(session)

    def _record(self, spec, arrival_us: float, committed: bool, meta) -> None:
        now = self.sim.now
        stats = self.stats
        client = stats.client
        sink = self.sink
        if not committed:
            if now >= self.warmup_us:
                client.aborted += 1
                abort_time = (
                    meta.abort_time
                    if meta is not None and meta.abort_time is not None
                    else now
                )
                if sink is None:
                    client.abort_times_us.append(abort_time)
                else:
                    sink.on_abort(abort_time)
            return
        latency = now - arrival_us
        if sink is None:
            stats.completion_times_us.append(now)
            stats.completion_latencies_us.append(latency)
        else:
            sink.on_completion(now, latency)
        if now < self.warmup_us:
            return
        client.committed += 1
        commit_time = now
        if meta is not None and meta.external_commit_time is not None:
            commit_time = meta.external_commit_time
        internal = wait = None
        if not spec.read_only and meta is not None:
            internal = meta.internal_latency()
            wait = meta.precommit_wait()
        if sink is not None:
            if spec.read_only:
                client.committed_read_only += 1
            else:
                client.committed_update += 1
            sink.on_commit(latency, commit_time, spec.read_only, internal, wait)
            return
        client.latencies_us.append(latency)
        client.commit_times_us.append(commit_time)
        if spec.read_only:
            client.committed_read_only += 1
            client.read_only_latencies_us.append(latency)
        else:
            client.committed_update += 1
            client.update_latencies_us.append(latency)
            if internal is not None:
                client.internal_latencies_us.append(internal)
            if wait is not None:
                client.precommit_waits_us.append(wait)

    def _release(self, session) -> None:
        """Return a slot: serve the admission queue or park the session."""
        now = self.sim.now
        stats = self.stats
        while self._queue:
            arrival_us, spec = self._queue.popleft()
            if now - arrival_us > self.plan.queue_timeout_us:
                if self.sink is None:
                    stats.timeout_times_us.append(now)
                else:
                    self.sink.on_timeout(now)
                if now >= self.warmup_us:
                    stats.timed_out += 1
                continue
            self._pending -= 1
            tracer = self.sim.tracer
            if tracer is not None and now > arrival_us:
                # Admission-queue wait of the arrival we are about to issue;
                # the transaction id does not exist yet, so the span lives on
                # the node's track.
                tracer.span("client.queue", arrival_us, node=self.node_id, end=now)
            self._start(session, spec, arrival_us)
            return
        self._pending -= 1
        self._free.append(session)


def install_open_loop(
    cluster,
    workload,
    duration_us: float,
    warmup_us: float,
    plan: Optional[TrafficPlan] = None,
    sink=None,
) -> List[OpenLoopSource]:
    """Start one open-loop source per node; returns the sources.

    ``plan`` defaults to the cluster config's traffic plan.  The sources'
    statistics are live objects — read them after the simulation ran.
    ``sink`` (a :class:`~repro.harness.streaming.StreamingAccumulator`) is
    shared by all sources and switches them to streaming recording.
    """
    plan = plan if plan is not None else cluster.config.traffic
    sources = []
    for node_id in range(cluster.config.n_nodes):
        source = OpenLoopSource(
            cluster, node_id, plan, workload, duration_us, warmup_us, sink=sink
        )
        sources.append(source)
        cluster.spawn(source.run(), name=f"traffic-source-{node_id}")
    return sources


def aggregate_open_loop(
    sources: List[OpenLoopSource], measured_duration_us: float
) -> Tuple[dict, List[ClientStats]]:
    """Collapse per-node open-loop accounting into metrics ``extra`` fields."""
    offered = sum(source.stats.offered for source in sources)
    dropped = sum(source.stats.dropped for source in sources)
    timed_out = sum(source.stats.timed_out for source in sources)
    committed = sum(source.stats.client.committed for source in sources)
    depth_samples = sum(source.stats.queue_depth_samples for source in sources)
    depth_sum = sum(source.stats.queue_depth_sum for source in sources)
    seconds = max(measured_duration_us, 1.0) / 1_000_000.0
    extra = {
        "open_loop": 1.0,
        "offered": float(offered),
        "offered_tps": round(offered / seconds, 1),
        "goodput_tps": round(committed / seconds, 1),
        "dropped": float(dropped),
        "timed_out": float(timed_out),
        "queue_depth_max": float(
            max((source.stats.queue_depth_max for source in sources), default=0)
        ),
        "queue_depth_mean": round(depth_sum / depth_samples, 2) if depth_samples else 0.0,
    }
    clients = [source.stats.client for source in sources]
    return extra, clients
