"""Closed-loop YCSB-style clients.

The paper drives every experiment with 10 application threads (clients) per
node "injecting transactions in the system in a closed-loop (i.e., a client
issues a new request only when the previous one has returned)".
:func:`closed_loop_client` is that client as a simulation process: it draws a
transaction spec, executes it through a :class:`repro.core.session.Session`,
retries aborted transactions (counting the abort), and keeps going until the
experiment deadline.

Per-client statistics are accumulated in :class:`ClientStats`; the harness
aggregates them into the experiment metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import NodeCrashedError, SnapshotRestartError
from repro.core.metadata import TransactionMeta
from repro.core.session import Session
from repro.workload.profiles import TransactionSpec, WorkloadGenerator


@dataclass
class ClientStats:
    """Counters and samples collected by one closed-loop client."""

    node_id: int
    client_index: int
    committed: int = 0
    committed_read_only: int = 0
    committed_update: int = 0
    aborted: int = 0
    latencies_us: List[float] = field(default_factory=list)
    update_latencies_us: List[float] = field(default_factory=list)
    read_only_latencies_us: List[float] = field(default_factory=list)
    internal_latencies_us: List[float] = field(default_factory=list)
    precommit_waits_us: List[float] = field(default_factory=list)
    #: Completion timestamps, feeding the per-phase availability metrics of
    #: fault-plan experiments (one float per outcome, like the latencies).
    commit_times_us: List[float] = field(default_factory=list)
    abort_times_us: List[float] = field(default_factory=list)
    #: Optional :class:`~repro.harness.streaming.StreamingAccumulator`.
    #: When set, per-outcome samples stream into it instead of the lists
    #: above (O(1) memory per client); the scalar counters are kept either
    #: way.  Missing timestamps stream as ``-1.0``, which falls outside
    #: every time bin — mirroring the exact path, which skipped them.
    sink: Optional[object] = None

    def record(self, meta: TransactionMeta, committed: bool) -> None:
        sink = self.sink
        if sink is not None:
            self._record_streaming(sink, meta, committed)
            return
        if not committed:
            self.aborted += 1
            if meta.abort_time is not None:
                self.abort_times_us.append(meta.abort_time)
            return
        self.committed += 1
        if meta.external_commit_time is not None:
            self.commit_times_us.append(meta.external_commit_time)
        latency = meta.latency()
        if latency is not None:
            self.latencies_us.append(latency)
        if meta.is_update:
            self.committed_update += 1
            if latency is not None:
                self.update_latencies_us.append(latency)
            internal = meta.internal_latency()
            if internal is not None:
                self.internal_latencies_us.append(internal)
            wait = meta.precommit_wait()
            if wait is not None:
                self.precommit_waits_us.append(wait)
        else:
            self.committed_read_only += 1
            if latency is not None:
                self.read_only_latencies_us.append(latency)

    def _record_streaming(self, sink, meta: TransactionMeta, committed: bool) -> None:
        if not committed:
            self.aborted += 1
            sink.on_abort(meta.abort_time if meta.abort_time is not None else -1.0)
            return
        self.committed += 1
        latency = meta.latency()
        commit_time = meta.external_commit_time
        if meta.is_update:
            self.committed_update += 1
            internal = meta.internal_latency()
            wait = meta.precommit_wait()
        else:
            self.committed_read_only += 1
            internal = wait = None
        sink.on_commit(
            latency if latency is not None else 0.0,
            commit_time if commit_time is not None else -1.0,
            not meta.is_update,
            internal,
            wait,
        )
        if commit_time is not None and latency is not None:
            sink.on_completion(commit_time, latency)


def execute_spec(session: Session, spec: TransactionSpec):
    """Execute one transaction spec through ``session`` (generator).

    Returns ``(committed, meta)``.  Update transactions follow the paper's
    profile: read every key, then write back a derived value for the keys in
    the write set.

    A read-only transaction withdrawn for a snapshot restart
    (:class:`~repro.common.errors.SnapshotRestartError` — a real-time-stale
    read, or the commit-time wait-cycle breaker) is re-executed under a
    fresh id and snapshot: the restart is invisible to the client — one
    logical request, answered once, from the committed attempt — so
    read-only transactions still never abort.
    """
    attempt = 0
    while True:
        try:
            meta = session.begin(read_only=spec.read_only)
            values = {}
            for key in spec.read_keys:
                values[key] = yield from session.read(key)
            if not spec.read_only:
                for key in spec.write_keys:
                    base = values.get(key, 0)
                    base = base if isinstance(base, int) else 0
                    session.write(key, base + 1)
            committed = yield from session.commit()
        except SnapshotRestartError:
            attempt += 1
            # Staggered, growing back-off before the retry.  An immediate
            # re-read would deterministically re-create the same exclusion
            # gates and re-enter the same wait cycle in lockstep with the
            # other cycling readers (livelock).  While backing off the
            # transaction holds no queue entries and no gates, so the
            # writers it gated can drain; the per-client stagger makes the
            # cycle thin out instead of re-forming.  Deterministic: derived
            # only from the session's coordinates and the attempt count.
            timeouts = session.node.config.timeouts
            base_us = timeouts.external_done_wait_us
            # The stagger is bounded separately from the (capped)
            # exponential part so that at large node counts the cap cannot
            # flatten every client onto the same delay, which would
            # reintroduce exactly the lockstep this back-off exists to
            # break.
            stagger = ((session.node_id * 7 + session.client_index * 3) % 37) * (base_us / 4.0)
            delay = min(base_us * (2 ** min(attempt, 4)), 16_000.0) + stagger
            sim = session.node.sim
            tracer = sim.tracer
            backoff_start = sim.now if tracer is not None else 0.0
            yield sim.timeout(delay)
            if tracer is not None:
                tracer.span(
                    "client.backoff",
                    backoff_start,
                    node=session.node_id,
                    link=[meta.txn_id],
                    args={"attempt": attempt},
                )
            continue
        return committed, meta


def closed_loop_client(
    session: Session,
    generator: WorkloadGenerator,
    stats: ClientStats,
    deadline_us: float,
    warmup_us: float = 0.0,
    max_transactions: Optional[int] = None,
    think_time_us: float = 0.0,
    crash_backoff_us: float = 1_000.0,
):
    """Closed-loop client process: issue, wait, repeat until the deadline.

    Transactions whose commit attempt fails are counted as aborts and the
    client immediately moves on to a new transaction (the retried work is a
    fresh transaction, which is how the paper's abort rates are reported).
    Statistics are only recorded after ``warmup_us`` of simulated time.

    Under the fault plane, a transaction interrupted by its own node's crash
    (:class:`NodeCrashedError`) counts as an abort; the client backs off
    ``crash_backoff_us`` and reconnects, which is what lets throughput
    recover once the node restarts.
    """
    sim = session.node.sim
    session.keep_history = False
    issued = 0
    while sim.now < deadline_us:
        if max_transactions is not None and issued >= max_transactions:
            break
        spec = generator.next_spec()
        issued += 1
        try:
            committed, meta = yield from execute_spec(session, spec)
        except NodeCrashedError:
            meta = session.last
            if sim.now >= warmup_us and meta is not None:
                stats.record(meta, False)
            tracer = sim.tracer
            backoff_start = sim.now if tracer is not None else 0.0
            yield sim.timeout(crash_backoff_us)
            if tracer is not None:
                tracer.span(
                    "client.crash_backoff",
                    backoff_start,
                    node=session.node_id,
                    link=[meta.txn_id] if meta is not None else (),
                )
            continue
        if sim.now >= warmup_us:
            stats.record(meta, committed)
        if think_time_us > 0:
            tracer = sim.tracer
            think_start = sim.now if tracer is not None else 0.0
            yield sim.timeout(think_time_us)
            if tracer is not None:
                tracer.span("client.think", think_start, node=session.node_id)
    return stats
