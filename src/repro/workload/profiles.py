"""Transaction profiles: which keys a transaction reads and writes.

The paper uses two profiles — update transactions that read and write two
keys, and read-only transactions that read two or more keys.  The
:class:`WorkloadGenerator` draws a :class:`TransactionSpec` per transaction
according to the configured read-only fraction and key selector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.config import WorkloadConfig
from repro.replication.placement import KeyPlacement
from repro.workload.distributions import KeySelector, make_key_selector


@dataclass(frozen=True)
class TransactionSpec:
    """One transaction to execute: keys to read, keys to read-and-write."""

    read_only: bool
    read_keys: Tuple[object, ...]
    write_keys: Tuple[object, ...]

    @property
    def all_keys(self) -> Tuple[object, ...]:
        return tuple(dict.fromkeys(self.read_keys + self.write_keys))

    def size(self) -> int:
        return len(self.all_keys)


class WorkloadGenerator:
    """Per-client YCSB-style transaction spec generator.

    Each client owns one generator instance so its random stream is
    independent of every other client (see :class:`repro.sim.rng.RngRegistry`).
    """

    def __init__(
        self,
        workload: WorkloadConfig,
        keys: Sequence[object],
        rng: random.Random,
        placement: Optional[KeyPlacement] = None,
        node_id: Optional[int] = None,
    ):
        workload.validate()
        self.workload = workload
        self.rng = rng
        self.selector: KeySelector = make_key_selector(
            workload, keys, placement=placement, node_id=node_id
        )
        self.generated = 0

    def next_spec(self) -> TransactionSpec:
        """Draw the next transaction specification."""
        self.generated += 1
        if self.rng.random() < self.workload.read_only_fraction:
            keys = self.selector.select(self.rng, self.workload.read_only_txn_keys)
            return TransactionSpec(read_only=True, read_keys=tuple(keys), write_keys=())
        keys = self.selector.select(self.rng, self.workload.update_txn_keys)
        # The paper's update profile reads and writes the same two keys.
        return TransactionSpec(read_only=False, read_keys=tuple(keys), write_keys=tuple(keys))

    def specs(self, count: int) -> List[TransactionSpec]:
        """Draw ``count`` specifications (useful for tests and examples)."""
        return [self.next_spec() for _ in range(count)]
