"""YCSB-style workload generation.

The paper evaluates every protocol with a YCSB benchmark ported to the
key-value API: update transactions read and write two keys, read-only
transactions read two or more keys, key popularity is uniform (or locality
biased in Figure 7), and clients operate in a closed loop.

* :mod:`repro.workload.distributions` — key-popularity distributions
  (uniform, zipfian) and the locality-biased selector.
* :mod:`repro.workload.profiles` — transaction profiles (which keys are read
  and written by one transaction instance).
* :mod:`repro.workload.ycsb` — the closed-loop client process generator used
  by the harness and the examples.
* :mod:`repro.workload.openloop` — open-loop arrival sources driven by a
  :class:`~repro.traffic.plan.TrafficPlan`, with bounded pending sets and
  explicit overload accounting (drops, queue timeouts, queue depth).
"""

from repro.workload.distributions import (
    KeySelector,
    LocalityKeySelector,
    UniformKeySelector,
    ZipfianKeySelector,
    make_key_selector,
)
from repro.workload.openloop import (
    OpenLoopSource,
    OpenLoopStats,
    aggregate_open_loop,
    install_open_loop,
)
from repro.workload.profiles import TransactionSpec, WorkloadGenerator
from repro.workload.ycsb import ClientStats, closed_loop_client

__all__ = [
    "ClientStats",
    "KeySelector",
    "LocalityKeySelector",
    "OpenLoopSource",
    "OpenLoopStats",
    "TransactionSpec",
    "UniformKeySelector",
    "WorkloadGenerator",
    "ZipfianKeySelector",
    "aggregate_open_loop",
    "closed_loop_client",
    "install_open_loop",
    "make_key_selector",
]
