"""Key-popularity distributions and locality-biased selection.

Three selectors are provided:

* :class:`UniformKeySelector` — every key equally likely (the paper's default
  "transactions select accessed objects randomly with uniform distribution").
* :class:`ZipfianKeySelector` — skewed popularity with parameter ``theta``
  (standard YCSB zipfian; not used by the paper's figures but useful for
  contention studies and ablations).
* :class:`LocalityKeySelector` — with probability ``locality_fraction`` the
  key is drawn from the keys replicated on the client's local node, otherwise
  from the full key space (the Figure 7 configuration: 50 % locality).
"""

from __future__ import annotations

import bisect
import math
import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.replication.placement import KeyPlacement


class KeySelector(ABC):
    """Samples distinct keys for one transaction."""

    @abstractmethod
    def select(self, rng: random.Random, count: int) -> List[object]:
        """Return ``count`` distinct keys."""

    def _distinct(self, rng: random.Random, count: int, draw) -> List[object]:
        """Draw distinct keys using ``draw()`` with a resampling loop."""
        chosen: List[object] = []
        seen = set()
        attempts = 0
        while len(chosen) < count and attempts < count * 50:
            key = draw()
            attempts += 1
            if key not in seen:
                seen.add(key)
                chosen.append(key)
        if len(chosen) < count:
            raise ConfigurationError(f"could not draw {count} distinct keys (key space too small?)")
        return chosen


class UniformKeySelector(KeySelector):
    """Uniformly random keys over the whole key space."""

    def __init__(self, keys: Sequence[object]):
        if not keys:
            raise ConfigurationError("key space must not be empty")
        self.keys = list(keys)

    def select(self, rng: random.Random, count: int) -> List[object]:
        if count > len(self.keys):
            raise ConfigurationError(f"cannot select {count} distinct keys from {len(self.keys)}")
        return self._distinct(rng, count, lambda: rng.choice(self.keys))


class ZipfianKeySelector(KeySelector):
    """Zipfian-popularity keys (YCSB-style, rank 1 most popular)."""

    def __init__(self, keys: Sequence[object], theta: float = 0.7):
        if not keys:
            raise ConfigurationError("key space must not be empty")
        if not 0.0 <= theta < 1.0:
            raise ConfigurationError("zipfian theta must be in [0, 1)")
        self.keys = list(keys)
        self.theta = theta
        # Cumulative distribution over ranks.
        weights = [1.0 / math.pow(rank, theta) for rank in range(1, len(keys) + 1)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        self._cumulative = cumulative

    def select(self, rng: random.Random, count: int) -> List[object]:
        if count > len(self.keys):
            raise ConfigurationError(f"cannot select {count} distinct keys from {len(self.keys)}")

        def draw():
            rank = bisect.bisect_left(self._cumulative, rng.random())
            return self.keys[min(rank, len(self.keys) - 1)]

        return self._distinct(rng, count, draw)


class LocalityKeySelector(KeySelector):
    """Mix of node-local keys and uniform global keys (Figure 7)."""

    def __init__(
        self,
        keys: Sequence[object],
        local_keys: Sequence[object],
        locality_fraction: float,
    ):
        if not keys:
            raise ConfigurationError("key space must not be empty")
        if not 0.0 <= locality_fraction <= 1.0:
            raise ConfigurationError("locality_fraction must be in [0, 1]")
        self.keys = list(keys)
        self.local_keys = list(local_keys) if local_keys else list(keys)
        self.locality_fraction = locality_fraction

    def select(self, rng: random.Random, count: int) -> List[object]:
        def draw():
            if rng.random() < self.locality_fraction:
                return rng.choice(self.local_keys)
            return rng.choice(self.keys)

        return self._distinct(rng, count, draw)


def make_key_selector(
    workload: WorkloadConfig,
    keys: Sequence[object],
    placement: Optional[KeyPlacement] = None,
    node_id: Optional[int] = None,
) -> KeySelector:
    """Build the selector matching ``workload`` for a client on ``node_id``."""
    if workload.locality_fraction > 0.0:
        if placement is None or node_id is None:
            raise ConfigurationError("locality-biased workloads need a placement and a node id")
        return LocalityKeySelector(
            keys=keys,
            local_keys=placement.local_keys(node_id),
            locality_fraction=workload.locality_fraction,
        )
    if workload.key_distribution == "zipfian":
        return ZipfianKeySelector(keys, theta=workload.zipf_theta)
    return UniformKeySelector(keys)
