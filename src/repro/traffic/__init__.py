"""The traffic plane: open-loop load generation and scenario scheduling.

The paper's harness (and PRs 1-4 of this reproduction) only ever drove the
cluster **closed-loop**: each client issues its next transaction when the
previous one answers, so the system self-throttles and the only reachable
operating point is saturation.  This package decouples arrivals from
completions:

* :mod:`repro.traffic.arrivals` — rate schedules (constant, ramp, on/off
  burst, piecewise/diurnal) and the two sampling disciplines
  (deterministic spacing, non-homogeneous Poisson via exact time warping),
  all driven by named :class:`~repro.sim.rng.RngRegistry` streams so runs
  stay byte-deterministic;
* :mod:`repro.traffic.plan` — the declarative :class:`TrafficPlan`
  scenario DSL carried by :class:`~repro.common.config.ClusterConfig`, on
  exact parity with the fault plane's ``FaultPlan`` (compact strings,
  validation, pickling, per-phase windows), including per-phase
  workload-mix overrides (shift the read-only share or move hot keys
  mid-run).

The open-loop client that consumes these plans lives in
:mod:`repro.workload.openloop`; the time-resolved metrics they feed live
in :mod:`repro.harness.metrics`.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    RateSchedule,
    RateSegment,
    burst_schedule,
    constant_schedule,
    piecewise_schedule,
    ramp_schedule,
)
from repro.traffic.plan import (
    ArrivalSpec,
    BurstArrivals,
    ConstArrivals,
    PiecewiseArrivals,
    PoissonArrivals,
    RampArrivals,
    TrafficPhase,
    TrafficPlan,
)

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "BurstArrivals",
    "ConstArrivals",
    "PiecewiseArrivals",
    "PoissonArrivals",
    "RampArrivals",
    "RateSchedule",
    "RateSegment",
    "TrafficPhase",
    "TrafficPlan",
    "burst_schedule",
    "constant_schedule",
    "piecewise_schedule",
    "ramp_schedule",
]
