"""Open-loop arrival processes.

Every traffic scenario reduces to two orthogonal choices:

* a **rate schedule** — the offered load as a function of time, built from
  piecewise-linear segments (constant rate, linear ramps, repeating on/off
  bursts, diurnal profiles);
* a **sampling discipline** — how individual arrival instants are drawn
  from that schedule: ``"deterministic"`` places an arrival exactly every
  time the schedule's cumulative expected-arrival count crosses the next
  integer (evenly spaced at constant rate), ``"poisson"`` draws unit-rate
  exponential increments of the same cumulative count, which is exactly a
  non-homogeneous Poisson process with the schedule as its intensity (time
  warping, no thinning, no rejected samples).

Both disciplines consume randomness only from the :class:`random.Random`
stream handed to :meth:`ArrivalProcess.arrivals` (deterministic sampling
consumes none at all), so arrival times are byte-reproducible from
``(seed, stream name)`` like every other source of randomness in the
simulator — see :class:`repro.sim.rng.RngRegistry`.

Rates are expressed in transactions per simulated second (tps); times in
simulated microseconds, consistent with the rest of the library.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import SECOND

SAMPLING_DISCIPLINES = ("deterministic", "poisson")


@dataclass(frozen=True)
class RateSegment:
    """One piecewise-linear segment of a rate schedule.

    The rate ramps linearly from ``rate0_tps`` to ``rate1_tps`` over
    ``duration_us``.  ``duration_us=None`` marks an infinite tail (constant
    rate; ``rate1_tps`` must equal ``rate0_tps``), which is how a finite
    schedule extends to the end of a run.
    """

    duration_us: Optional[float]
    rate0_tps: float
    rate1_tps: float

    def validate(self) -> None:
        if self.rate0_tps < 0 or self.rate1_tps < 0:
            raise ConfigurationError("segment rates must be >= 0")
        if self.duration_us is None:
            if self.rate0_tps != self.rate1_tps:
                raise ConfigurationError("an infinite tail segment must have a constant rate")
        elif self.duration_us <= 0:
            raise ConfigurationError("segment duration_us must be > 0 (or None)")

    def units(self) -> float:
        """Expected arrivals over the whole segment (inf for the tail)."""
        if self.duration_us is None:
            return math.inf if self.rate0_tps > 0 else 0.0
        mean_rate = (self.rate0_tps + self.rate1_tps) / 2.0
        return mean_rate / SECOND * self.duration_us


class RateSchedule:
    """A piecewise-linear offered-load profile.

    The schedule is a sequence of :class:`RateSegment` pieces laid end to
    end from ``t=0`` (relative to the start of the scenario phase using
    it).  With ``repeat=True`` the segment list cycles forever (on/off
    bursts, diurnal profiles); otherwise the schedule holds the last
    segment's end rate forever once the segments are exhausted.

    The only operation arrival generation needs is :meth:`advance`: the
    earliest time at which the cumulative expected-arrival count
    ``U(t) = integral of rate`` has grown by a target amount.  Constant and
    linear segments both invert in closed form, so arrival instants are
    exact — no numeric stepping, no drift.
    """

    def __init__(self, segments: Tuple[RateSegment, ...], repeat: bool = False):
        if not segments:
            raise ConfigurationError("a rate schedule needs at least one segment")
        for segment in segments:
            segment.validate()
        if repeat:
            if any(segment.duration_us is None for segment in segments):
                raise ConfigurationError("a repeating schedule cannot contain an infinite tail")
            if not any(segment.units() > 0 for segment in segments):
                raise ConfigurationError(
                    "a repeating schedule must offer a positive rate somewhere"
                )
        self.segments = tuple(segments)
        self.repeat = repeat
        self._cycle_us = sum(segment.duration_us for segment in segments) if repeat else None
        self._cycle_units = sum(segment.units() for segment in segments) if repeat else None

    # ------------------------------------------------------------------
    def rate_at(self, t_us: float) -> float:
        """Offered rate (tps) at relative time ``t_us``."""
        if t_us < 0:
            return 0.0
        if self.repeat:
            t_us = t_us % self._cycle_us
        for segment in self.segments:
            if segment.duration_us is None or t_us < segment.duration_us:
                if segment.duration_us is None:
                    return segment.rate0_tps
                frac = t_us / segment.duration_us
                return segment.rate0_tps + (segment.rate1_tps - segment.rate0_tps) * frac
            t_us -= segment.duration_us
        # Finite, non-repeating schedule: hold the final rate.
        return self.segments[-1].rate1_tps

    # ------------------------------------------------------------------
    def advance(self, t_us: float, units: float) -> float:
        """Earliest ``t' >= t_us`` with ``U(t') - U(t_us) == units``.

        Returns ``math.inf`` when the schedule can never accumulate the
        requested amount (rate fell to zero with no repeat).
        """
        if units <= 0:
            return t_us
        if self.repeat:
            return self._advance_repeating(t_us, units)
        return self._advance_once(t_us, units)

    def _advance_once(self, t_us: float, units: float) -> float:
        remaining = units
        seg_start = 0.0
        for segment in self.segments:
            if segment.duration_us is None:
                return _advance_constant(max(t_us, seg_start), remaining, segment.rate0_tps)
            seg_end = seg_start + segment.duration_us
            if t_us >= seg_end:
                seg_start = seg_end
                continue
            offset = max(t_us - seg_start, 0.0)
            landed, remaining = _advance_linear(offset, remaining, segment)
            if landed is not None:
                return seg_start + landed
            seg_start = seg_end
        # Finite schedule exhausted: hold the final rate forever.
        return _advance_constant(max(t_us, seg_start), remaining, self.segments[-1].rate1_tps)

    def _advance_repeating(self, t_us: float, units: float) -> float:
        cycle_us, cycle_units = self._cycle_us, self._cycle_units
        base = math.floor(t_us / cycle_us) * cycle_us
        rel = t_us - base
        remaining = units
        # First, finish the current (partial) cycle segment by segment.
        seg_start = 0.0
        for segment in self.segments:
            seg_end = seg_start + segment.duration_us
            if rel >= seg_end:
                seg_start = seg_end
                continue
            offset = max(rel - seg_start, 0.0)
            landed, remaining = _advance_linear(offset, remaining, segment)
            if landed is not None:
                return base + seg_start + landed
            seg_start = seg_end
        base += cycle_us
        # Then skip whole cycles at once and finish inside the last one.
        whole_cycles = math.floor(remaining / cycle_units)
        if whole_cycles > 0 and remaining - whole_cycles * cycle_units <= 0:
            whole_cycles -= 1
        base += whole_cycles * cycle_us
        remaining -= whole_cycles * cycle_units
        guard = 0
        while True:
            seg_start = 0.0
            for segment in self.segments:
                landed, remaining = _advance_linear(0.0, remaining, segment)
                if landed is not None:
                    return base + seg_start + landed
                seg_start += segment.duration_us
            base += cycle_us
            guard += 1
            if guard > 3:  # pragma: no cover - floating point safety valve
                raise ConfigurationError("repeating schedule failed to advance")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RateSchedule segments={len(self.segments)} repeat={self.repeat}>"


def _advance_constant(t_us: float, units: float, rate_tps: float) -> float:
    if rate_tps <= 0:
        return math.inf
    return t_us + units / (rate_tps / SECOND)


def _advance_linear(
    offset_us: float, units: float, segment: RateSegment
) -> Tuple[Optional[float], float]:
    """Advance inside one finite segment starting at ``offset_us`` into it.

    Returns ``(landing_offset_us, remaining_units)``: the landing offset is
    ``None`` when the segment ends before the target accumulates, with the
    leftover units to carry into the next segment.
    """
    duration = segment.duration_us
    rho0 = segment.rate0_tps / SECOND
    rho1 = segment.rate1_tps / SECOND
    slope = (rho1 - rho0) / duration
    rho_here = rho0 + slope * offset_us
    span = duration - offset_us
    available = (rho_here + rho1) / 2.0 * span
    if units > available:
        return None, units - available
    if abs(slope) < 1e-18:
        if rho_here <= 0:
            return None, units  # zero-rate segment contributes nothing
        return offset_us + units / rho_here, 0.0
    # Solve (slope/2) dt^2 + rho_here dt - units = 0 for the positive root.
    disc = rho_here * rho_here + 2.0 * slope * units
    if disc < 0:  # pragma: no cover - excluded by the availability check
        return None, units
    dt = (-rho_here + math.sqrt(disc)) / slope
    return offset_us + dt, 0.0


@dataclass(frozen=True)
class ArrivalProcess:
    """A sampling discipline bound to a rate schedule.

    ``offset_units`` shifts the deterministic arrival grid by a fraction of
    one interarrival interval.  The open-loop harness runs one process per
    node, each offered ``1/n`` of the cluster rate with
    ``offset_units=node_id/n``, so the aggregate deterministic stream is a
    perfectly even grid at the full cluster rate instead of ``n`` arrivals
    in lockstep.  Poisson sampling ignores the offset (superposed Poisson
    streams are Poisson already).
    """

    schedule: RateSchedule
    sampling: str = "poisson"
    offset_units: float = 0.0

    def __post_init__(self):
        if self.sampling not in SAMPLING_DISCIPLINES:
            raise ConfigurationError(
                f"unknown sampling discipline {self.sampling!r} "
                f"(expected one of {SAMPLING_DISCIPLINES})"
            )
        if not 0.0 <= self.offset_units < 1.0:
            raise ConfigurationError("offset_units must be in [0, 1)")

    def arrivals(self, rng: random.Random, start_us: float, end_us: float) -> Iterator[float]:
        """Yield absolute arrival times in ``[start_us, end_us)``.

        The schedule's ``t=0`` is ``start_us`` (scenario phases restart
        their schedule at the phase boundary).  Times are yielded strictly
        increasing; the iterator is exhausted at ``end_us`` or when the
        schedule's offered rate dies out.
        """
        horizon = end_us - start_us
        if horizon <= 0:
            return
        t = 0.0
        deterministic = self.sampling == "deterministic"
        first = True
        while True:
            if deterministic:
                target = 1.0 - self.offset_units if first else 1.0
            else:
                target = rng.expovariate(1.0)
            first = False
            t = self.schedule.advance(t, target)
            if t >= horizon or t == math.inf:
                return
            yield start_us + t


# ----------------------------------------------------------------------
# Schedule constructors for the four scenario primitives
# ----------------------------------------------------------------------
def constant_schedule(rate_tps: float) -> RateSchedule:
    """Flat offered load forever."""
    return RateSchedule((RateSegment(None, rate_tps, rate_tps),))


def ramp_schedule(start_tps: float, end_tps: float, over_us: float) -> RateSchedule:
    """Linear ramp from ``start_tps`` to ``end_tps`` over ``over_us``, then hold."""
    return RateSchedule(
        (
            RateSegment(over_us, start_tps, end_tps),
            RateSegment(None, end_tps, end_tps),
        )
    )


def burst_schedule(
    base_tps: float, peak_tps: float, every_us: float, for_us: float
) -> RateSchedule:
    """Repeating on/off bursts: ``peak`` for ``for_us`` out of every ``every_us``."""
    if for_us >= every_us:
        raise ConfigurationError("burst 'for' must be shorter than 'every'")
    return RateSchedule(
        (
            RateSegment(for_us, peak_tps, peak_tps),
            RateSegment(every_us - for_us, base_tps, base_tps),
        ),
        repeat=True,
    )


def piecewise_schedule(
    pieces: Tuple[Tuple[float, float, float], ...], repeat: bool = False
) -> RateSchedule:
    """Diurnal-style profile from ``(duration_us, rate0_tps, rate1_tps)`` pieces."""
    segments = tuple(RateSegment(dur, r0, r1) for dur, r0, r1 in pieces)
    if not repeat:
        last = segments[-1]
        segments = segments + (RateSegment(None, last.rate1_tps, last.rate1_tps),)
    return RateSchedule(segments, repeat=repeat)
