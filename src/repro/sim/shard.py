"""Shard-local pieces of the node-sharded conservative parallel engine.

The parallel engine (driven by :mod:`repro.harness.parallel`) partitions a
cluster's nodes over *shards*.  Each shard owns a disjoint subset of nodes
and runs an ordinary :class:`~repro.sim.engine.Simulation` over them in
bounded windows of length ``L`` — the *lookahead*, the minimum cross-node
network latency.  Because no message can arrive earlier than ``L`` after it
was sent, every event in the window ``[B, B + L)`` is already present in the
shard's own heap at time ``B``: shards therefore never wait on each other
inside a window, and only exchange cross-shard messages at window barriers
(a windowed variant of classic Chandy–Misra–Bryant null-message PDES; an
empty exchange *is* the null message, carrying only the horizon promise).

This module holds the shard-local machinery:

* :class:`ShardNetwork` — a :class:`~repro.network.transport.Network` whose
  :meth:`~repro.network.transport.Network._export` hook buffers messages for
  non-local nodes into an outbox, and which can *admit* messages imported
  from other shards at a barrier with delivery keys identical to the serial
  engine's;
* :class:`ShardHistoryRecorder` — a history recorder that tags every record
  with the engine key of the event that produced it, so per-shard histories
  merge back into exactly the serial recording order;
* the deterministic node→shard assignment and the lookahead derivation
  shared by the driver, the benchmarks and the tests.

Determinism argument (sketch): the engine's event keys are unit-local
(:mod:`repro.sim.engine`), the transport's delivery keys are sender-local,
and scripted faults run under the control unit with the full plan installed
on every shard — so each shard assigns its nodes the exact keys the serial
engine would, and a barrier admission reproduces the serial channel state.
The serial-vs-parallel digest tests in ``tests/unit/test_parallel_engine.py``
assert byte-identical histories for every protocol × fault plan.
"""

from __future__ import annotations

from heapq import heappush
from typing import List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId
from repro.consistency.history import HistoryRecorder
from repro.network.message import Message
from repro.network.transport import Network

#: One cross-shard message in flight: ``(deliver_at, skey, destination,
#: message, held)`` — exactly the transport's channel entry plus the
#: partition-held flag decided at the sender.
ExportEntry = Tuple[float, int, NodeId, Message, bool]


def shard_of(node_id: int, n_nodes: int, shards: int) -> int:
    """Deterministic node→shard assignment: contiguous balanced blocks."""
    return node_id * shards // n_nodes


def shard_node_ids(shard: int, n_nodes: int, shards: int) -> List[int]:
    """The node ids owned by ``shard`` under :func:`shard_of`."""
    return [n for n in range(n_nodes) if n * shards // n_nodes == shard]


def safe_lookahead(config) -> float:
    """The parallel engine's window length for ``config``.

    Conservative simulation may only advance a shard ``L`` past the last
    barrier before exchanging messages, where ``L`` is a lower bound on
    cross-node delivery delay: the latency model's infimum.  Link
    degradations never lower it (``factor >= 1``, ``extra >= 0`` are
    enforced by the driver), and send-side congestion only adds delay.
    """
    from repro.network.latency import UniformLatency

    network = config.network
    model = UniformLatency(base=network.base_latency_us, jitter=network.jitter_us)
    lookahead = model.min_latency()
    if lookahead <= 0.0:
        raise ConfigurationError(
            "the parallel engine requires a strictly positive minimum "
            f"cross-node latency (got {lookahead}); zero-infimum latency "
            "models cannot provide conservative lookahead"
        )
    return lookahead


class EngineTagSequencer:
    """Issues ``(time, key, sub)`` tags for deterministic shard-merge.

    ``(time, key)`` is the engine key of the event currently executing on
    ``sim`` and ``sub`` a within-event counter.  Engine keys are unique and
    totally ordered across shards (unit-local keys; control-unit keys shared
    identically by all shards), so any record stream tagged through one
    sequencer per shard can be concatenated and sorted by tag to reproduce
    the exact order a serial recorder would have appended in.  Shared by
    :class:`ShardHistoryRecorder` and the trace plane's
    :class:`repro.trace.recorder.TraceRecorder`.
    """

    __slots__ = ("sim", "_tag_time", "_tag_key", "_tag_sub")

    def __init__(self, sim):
        self.sim = sim
        self._tag_time = -1.0
        self._tag_key = -1
        self._tag_sub = 0

    def next_tag(self) -> Tuple[float, int, int]:
        sim = self.sim
        time, key = sim._ekey_time, sim._ekey_key
        if time == self._tag_time and key == self._tag_key:
            self._tag_sub += 1
        else:
            self._tag_time = time
            self._tag_key = key
            self._tag_sub = 0
        return (time, key, self._tag_sub)


class ShardHistoryRecorder(HistoryRecorder):
    """History recorder that tags records for deterministic shard-merge.

    Every committed/aborted record is stamped with an
    :class:`EngineTagSequencer` tag; sorting the concatenated per-shard
    records by tag reproduces the exact order a serial
    :class:`HistoryRecorder` would have appended them in.
    """

    def __init__(self, sim):
        super().__init__()
        self.sim = sim
        self.committed_tags: List[Tuple[float, int, int]] = []
        self.aborted_tags: List[Tuple[float, int, int]] = []
        self._tags = EngineTagSequencer(sim)

    def _next_tag(self) -> Tuple[float, int, int]:
        return self._tags.next_tag()

    def record_commit(self, meta) -> None:
        if not self.enabled:
            return
        super().record_commit(meta)
        self.committed_tags.append(self._next_tag())

    def record_abort(self, meta) -> None:
        if not self.enabled:
            return
        super().record_abort(meta)
        self.aborted_tags.append(self._next_tag())

    def clear(self) -> None:
        super().clear()
        self.committed_tags.clear()
        self.aborted_tags.clear()


def merge_shard_histories(
    parts: List[Tuple[List, List, List, List]],
) -> HistoryRecorder:
    """Merge per-shard ``(committed, committed_tags, aborted, aborted_tags)``
    quadruples into one recorder in serial append order."""
    merged = HistoryRecorder()
    committed: List[Tuple[Tuple[float, int, int], object]] = []
    aborted: List[Tuple[Tuple[float, int, int], object]] = []
    for commits, commit_tags, aborts, abort_tags in parts:
        committed.extend(zip(commit_tags, commits))
        aborted.extend(zip(abort_tags, aborts))
    committed.sort(key=lambda pair: pair[0])
    aborted.sort(key=lambda pair: pair[0])
    merged.committed.extend(record for _tag, record in committed)
    merged.aborted.extend(record for _tag, record in aborted)
    return merged


class ShardNetwork(Network):
    """Transport of one shard: local delivery plus cross-shard buffering."""

    def __init__(self, sim, config=None, latency_model=None):
        super().__init__(sim, config=config, latency_model=latency_model)
        self.outbox: List[ExportEntry] = []
        self.exported_messages = 0
        self.imported_messages = 0

    # ------------------------------------------------------------------
    def _export(
        self, deliver_at: float, skey: int, destination: NodeId, message: Message, held: bool
    ) -> None:
        self.outbox.append((deliver_at, skey, destination, message, held))
        self.exported_messages += 1

    def take_outbox(self) -> List[ExportEntry]:
        """Drain and return the pending cross-shard exports (barrier step)."""
        out = self.outbox
        self.outbox = []
        return out

    def admit(self, imports: List[ExportEntry]) -> None:
        """Deliver messages exported by other shards (called at a barrier).

        Ordinary messages enter the destination channel with their original
        sender-local key, so their delivery order is the serial one.  A
        partition-held message joins the local held set *unless* a mirrored
        heal already ran since it was sent — then the serial engine would
        have released it at that heal, at ``max(deliver_at, heal_time) ==
        deliver_at`` (cross-shard delivery times always lie at or beyond
        the barrier, hence beyond any already-executed heal).
        """
        if not imports:
            return
        sim = self.sim
        held_list = self._held
        heal_times = self._heal_times
        stats = self.stats
        for deliver_at, skey, destination, message, held in imports:
            if held and not (heal_times and heal_times[-1] > message.send_time):
                held_list.append((deliver_at, skey, destination, message))
                continue
            if held:
                stats.released += 1
            channel = self._channels[destination]
            heappush(channel.pending, (deliver_at, skey, message))
            wakes = channel.wakes
            if not wakes or deliver_at < wakes[-1]:
                wakes.append(deliver_at)
                sim.schedule_wake(deliver_at, channel.unit, channel.drain)
        self.imported_messages += len(imports)


__all__ = [
    "EngineTagSequencer",
    "ExportEntry",
    "ShardHistoryRecorder",
    "ShardNetwork",
    "merge_shard_histories",
    "safe_lookahead",
    "shard_node_ids",
    "shard_of",
]
