"""The discrete-event simulation kernel.

:class:`Simulation` owns the virtual clock and the event heap.  Everything in
the reproduction — network message delivery, protocol handler execution,
client think time, lock timeouts — is expressed as events scheduled on one
:class:`Simulation` instance, which makes runs fully deterministic and
reproducible from a single seed.

Hot-path design
---------------
The event loop executes hundreds of thousands of callbacks per simulated
second, so the kernel avoids per-event allocations wherever possible:

* heap entries are plain ``(time, key, func, arg)`` tuples — scheduling never
  allocates a closure; ``func(arg)`` is invoked directly, with a private
  sentinel marking zero-argument callables;
* the run loop hoists the heap and ``heappop`` into locals and pops exactly
  once per event (an event past the ``until`` horizon is pushed back, which
  preserves its original key and therefore the replay order);
* :class:`~repro.sim.events.Timeout` and the network transport schedule
  bound methods with their argument in the heap entry instead of lambdas.

Unit-keyed event ordering
-------------------------
Tie-breaking at equal timestamps is *unit-local* rather than global: every
event belongs to an execution unit (a node id, or the control unit ``-1``
for scripted faults) and carries a packed integer key::

    key = ((unit + 1) << 41) | (lane << 40) | useq

``lane 0`` is reserved for channel drain wake-ups (at most one per
``(time, unit)``), ``lane 1`` for ordinary events, and ``useq`` is a
monotonic per-unit counter.  At one timestamp, control events run first
(``unit -1`` packs to the smallest keys), then each unit's pending deliveries
and events in unit order.  Because the counter is per-unit, the total order
over any single unit's events depends only on that unit's own scheduling
history — which is what allows the node-sharded parallel engine
(:mod:`repro.harness.parallel`) to replay an identical order with only a
subset of units present.  Within a unit, creation order still breaks ties,
so single-unit usage behaves exactly like the old global-sequence kernel.

Histories are byte-for-byte reproducible across kernel versions for a fixed
seed (see the determinism tests in ``tests/unit/test_sim_engine.py`` and the
serial-vs-parallel equivalence tests in
``tests/unit/test_parallel_engine.py``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Condition, Event, Signal, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

# Sentinel argument marking a zero-argument callable in a heap entry.
_CALL0 = object()

#: Bit layout of the packed event key (see module docstring).
_UNIT_SHIFT = 41
_LANE1 = 1 << 40

#: The control unit that scripted fault-plane events execute under.
CTRL_UNIT = -1


class Simulation:
    """Event loop and virtual clock for one simulated cluster run.

    Parameters
    ----------
    seed:
        Root seed for the :class:`~repro.sim.rng.RngRegistry`; every random
        stream used by the cluster is derived from it.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_useq",
        "_unitp",
        "_ekey_time",
        "_ekey_key",
        "rng",
        "_crashed",
        "_event_count",
        "_deadline_buckets",
        "fault_log",
        "tracer",
    )

    def __init__(self, seed: int = 1):
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, object]] = []
        #: Per-unit monotonic sequence counters, indexed by ``unit + 1``
        #: (index 0 is the control unit).  Unit 0 exists from the start so
        #: bare ``Simulation`` usage needs no unit declarations.
        self._useq: List[int] = [0, 0]
        self._unitp = 1  # current scheduling unit, as unit + 1
        self._ekey_time: float = 0.0  # (time, key) of the executing event,
        self._ekey_key: int = 0  # exposed for shard-merge record tagging
        self.rng = RngRegistry(seed)
        self._crashed: List[Tuple[Process, BaseException]] = []
        self._event_count = 0
        self._deadline_buckets: dict[Tuple[int, float], Event] = {}
        #: Scripted fault-plane events (time, label), in scheduling order.
        self.fault_log: List[Tuple[float, str]] = []
        #: Optional :class:`repro.trace.recorder.TraceRecorder`.  ``None``
        #: (the default) keeps tracing at a single identity check per
        #: instrumented site; the kernel itself never consults it.
        self.tracer = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (useful for progress stats)."""
        return self._event_count

    # ------------------------------------------------------------------ units
    @property
    def current_unit(self) -> int:
        """The execution unit new events are currently charged to."""
        return self._unitp - 1

    def _ensure_unit(self, unitp: int) -> None:
        useqs = self._useq
        if unitp >= len(useqs):
            useqs.extend([0] * (unitp + 1 - len(useqs)))

    def declare_units(self, count: int) -> None:
        """Pre-size the per-unit counters for units ``0 .. count - 1``."""
        self._ensure_unit(count)

    def set_unit(self, unit: int) -> int:
        """Switch the scheduling unit context; returns the previous unit.

        Used by the cluster facade to charge construction-time scheduling
        (node timers, client spawns, preloads) to the owning node, and by the
        fault plane to charge a crash/restart's effects to its target node.
        The run loop overrides the context per event from the event's own
        key, so ``set_unit`` only matters outside event execution and for
        the first pushes of a control-unit callback.
        """
        prev = self._unitp - 1
        unitp = unit + 1
        self._ensure_unit(unitp)
        self._unitp = unitp
        return prev

    # --------------------------------------------------------------- creation
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event firing ``delay`` microseconds from now."""
        return Timeout(self, delay, value=value)

    def deadline(self, delay: float, granularity: float = 1_024.0) -> Event:
        """Shared coarse-grained timeout for failure detection.

        Returns an event firing at the first multiple of ``granularity`` at
        or after ``now + delay`` — i.e. up to ``granularity`` *later* than a
        :meth:`timeout` of the same delay, never earlier.  All deadlines of
        one unit landing in the same bucket share one event and one heap
        entry, so guard timers that exist only to catch crashes (2PC prepare
        timeouts: one per update transaction, ~50 ms, virtually never
        firing) do not each bloat the event heap for their whole lifetime.
        Buckets are per-unit so a shard owning a subset of nodes creates
        exactly the entries the serial engine creates for those nodes.  Use
        :meth:`timeout` when the exact expiry instant matters.
        """
        fire_at = self._now + delay
        bucket_time = fire_at - (fire_at % granularity)
        if bucket_time < fire_at:
            bucket_time += granularity
        buckets = self._deadline_buckets
        bucket_key = (self._unitp, bucket_time)
        event = buckets.get(bucket_key)
        if event is None:
            event = Event(self, name="deadline")
            buckets[bucket_key] = event
            self._push(bucket_time, self._fire_deadline, bucket_key)
        return event

    def _fire_deadline(self, bucket_key: Tuple[int, float]) -> None:
        event = self._deadline_buckets.pop(bucket_key, None)
        if event is not None and not event.triggered:
            event.succeed()

    def signal(self, name: str = "") -> Signal:
        """Create a broadcast :class:`Signal` for condition waiters."""
        return Signal(self, name=name)

    def condition(self, predicate: Callable[[], bool], signals, name: str = "") -> Condition:
        """Create a :class:`Condition` firing when ``predicate()`` is true."""
        if isinstance(signals, Signal):
            signals = [signals]
        return Condition(self, predicate, signals, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def process(self, generator, name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # -------------------------------------------------------------- scheduling
    def _push(self, time: float, func: Callable, arg) -> None:
        if time < self._now - 1e-9:
            raise SimulationError(f"cannot schedule in the past: {time} < now {self._now}")
        unitp = self._unitp
        useqs = self._useq
        useq = useqs[unitp]
        useqs[unitp] = useq + 1
        heappush(self._heap, (time, (unitp << _UNIT_SHIFT) | _LANE1 | useq, func, arg))

    def schedule_wake(self, time: float, unit: int, func: Callable) -> None:
        """Schedule a lane-0 wake-up for ``unit`` at absolute ``time``.

        Wake-ups sort *before* every ordinary event of the unit at the same
        timestamp and consume no per-unit sequence number, so a shard that
        imports a cross-shard message can schedule the destination channel's
        drain with a key identical to the one the serial engine would use.
        Callers must guarantee at most one wake per ``(time, unit)`` (the
        transport's per-channel ``wakes`` list does).
        """
        if time < self._now - 1e-9:
            raise SimulationError(f"cannot schedule in the past: {time} < now {self._now}")
        unitp = unit + 1
        self._ensure_unit(unitp)
        heappush(self._heap, (time, unitp << _UNIT_SHIFT, func, _CALL0))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run ``delay`` from now."""
        self._push(self._now + delay, self._dispatch, event)

    def _schedule_callback(
        self, event: Optional[Event], callback: Callable[[Optional[Event]], None]
    ) -> None:
        """Schedule a single callback with ``event`` as argument, at ``now``."""
        self._push(self._now, callback, event)

    def call_at(self, time: float, callback: Callable, arg=_CALL0) -> None:
        """Schedule ``callback`` at absolute ``time``.

        Without ``arg`` the callback is invoked with no arguments; passing
        ``arg`` invokes ``callback(arg)`` and saves callers a closure
        allocation on hot paths.
        """
        self._push(time, callback, arg)

    def call_after(self, delay: float, callback: Callable, arg=_CALL0) -> None:
        """Schedule ``callback`` (optionally with one argument) ``delay`` from now."""
        self._push(self._now + delay, callback, arg)

    def schedule_fault(self, at: float, callback: Callable, label: str = "") -> None:
        """Schedule a scripted fault-plane event at absolute time ``at``.

        Crash/restart/partition/slow-link events are first-class in the
        engine: they go through the same heap as every other event (so they
        interleave deterministically with protocol traffic) and are recorded
        in :attr:`fault_log` for experiment reports and tests.  Fault events
        execute under the control unit (:data:`CTRL_UNIT`), which sorts
        before every node unit at the same timestamp; a shard that installs
        the full fault plan therefore assigns the same control-unit keys the
        serial engine does, regardless of which nodes it owns.
        """
        self.fault_log.append((at, label))
        useqs = self._useq
        useq = useqs[0]
        useqs[0] = useq + 1
        heappush(self._heap, (at, _LANE1 | useq, callback, _CALL0))

    def _dispatch(self, event: Event) -> None:
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for callback in callbacks:
                callback(event)

    def _note_crashed_process(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  ``None`` runs until no
            scheduled events remain.

        Returns
        -------
        float
            The simulation time at which the loop stopped.

        Raises
        ------
        Exception
            If any process died with an uncaught exception during the run,
            the first such exception is re-raised after the loop stops, so
            protocol bugs never fail silently.
        """
        heap = self._heap
        crashed = self._crashed
        sentinel = _CALL0
        count = 0
        try:
            # A process may have crashed before its first yield (processes
            # start inline at creation), with nothing scheduled to surface it.
            if crashed:
                process, exc = crashed[0]
                raise SimulationError(
                    f"process {process.name!r} crashed at t={self._now:.1f}"
                ) from exc
            while heap:
                entry = heappop(heap)
                time, key, func, arg = entry
                if until is not None and time > until:
                    heappush(heap, entry)
                    break
                self._now = time
                self._unitp = key >> _UNIT_SHIFT
                self._ekey_time = time
                self._ekey_key = key
                count += 1
                if arg is sentinel:
                    func()
                else:
                    func(arg)
                if crashed:
                    process, exc = crashed[0]
                    raise SimulationError(
                        f"process {process.name!r} crashed at t={self._now:.1f}"
                    ) from exc
        finally:
            self._event_count += count
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_window(self, until: float) -> float:
        """Run every event *strictly before* ``until``; end with ``now == until``.

        The parallel engine's window step.  Unlike :meth:`run` (which is
        inclusive of ``until``), events at exactly ``until`` stay in the heap:
        the barrier at ``until`` may still admit cross-shard messages due at
        that instant, and their lane-0 wakes must sort before the local
        events of the same timestamp — so everything at ``until`` belongs to
        the *next* window.  The clock always lands exactly on ``until``.
        """
        heap = self._heap
        crashed = self._crashed
        sentinel = _CALL0
        count = 0
        try:
            if crashed:
                process, exc = crashed[0]
                raise SimulationError(
                    f"process {process.name!r} crashed at t={self._now:.1f}"
                ) from exc
            while heap:
                entry = heappop(heap)
                time, key, func, arg = entry
                if time >= until:
                    heappush(heap, entry)
                    break
                self._now = time
                self._unitp = key >> _UNIT_SHIFT
                self._ekey_time = time
                self._ekey_key = key
                count += 1
                if arg is sentinel:
                    func()
                else:
                    func(arg)
                if crashed:
                    process, exc = crashed[0]
                    raise SimulationError(
                        f"process {process.name!r} crashed at t={self._now:.1f}"
                    ) from exc
        finally:
            self._event_count += count
        self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")
