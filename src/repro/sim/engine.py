"""The discrete-event simulation kernel.

:class:`Simulation` owns the virtual clock and the event heap.  Everything in
the reproduction — network message delivery, protocol handler execution,
client think time, lock timeouts — is expressed as events scheduled on one
:class:`Simulation` instance, which makes runs fully deterministic and
reproducible from a single seed.

Hot-path design
---------------
The event loop executes hundreds of thousands of callbacks per simulated
second, so the kernel avoids per-event allocations wherever possible:

* heap entries are plain ``(time, seq, func, arg)`` tuples — scheduling never
  allocates a closure; ``func(arg)`` is invoked directly, with a private
  sentinel marking zero-argument callables;
* the run loop hoists the heap and ``heappop`` into locals and pops exactly
  once per event (an event past the ``until`` horizon is pushed back, which
  preserves its original sequence number and therefore the replay order);
* :class:`~repro.sim.events.Timeout` and the network transport schedule
  bound methods with their argument in the heap entry instead of lambdas.

The ``(time, seq)`` ordering and sequence-number assignment are identical to
the straightforward implementation, so histories are byte-for-byte
reproducible across kernel versions for a fixed seed (see the determinism
tests in ``tests/unit/test_sim_engine.py``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Condition, Event, Signal, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

# Sentinel argument marking a zero-argument callable in a heap entry.
_CALL0 = object()


class Simulation:
    """Event loop and virtual clock for one simulated cluster run.

    Parameters
    ----------
    seed:
        Root seed for the :class:`~repro.sim.rng.RngRegistry`; every random
        stream used by the cluster is derived from it.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_sequence",
        "rng",
        "_crashed",
        "_event_count",
        "_deadline_buckets",
        "fault_log",
    )

    def __init__(self, seed: int = 1):
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, object]] = []
        self._sequence = 0
        self.rng = RngRegistry(seed)
        self._crashed: List[Tuple[Process, BaseException]] = []
        self._event_count = 0
        self._deadline_buckets: dict[float, Event] = {}
        #: Scripted fault-plane events (time, label), in scheduling order.
        self.fault_log: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (useful for progress stats)."""
        return self._event_count

    # --------------------------------------------------------------- creation
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event firing ``delay`` microseconds from now."""
        return Timeout(self, delay, value=value)

    def deadline(self, delay: float, granularity: float = 1_024.0) -> Event:
        """Shared coarse-grained timeout for failure detection.

        Returns an event firing at the first multiple of ``granularity`` at
        or after ``now + delay`` — i.e. up to ``granularity`` *later* than a
        :meth:`timeout` of the same delay, never earlier.  All deadlines
        landing in the same bucket share one event and one heap entry, so
        guard timers that exist only to catch crashes (2PC prepare timeouts:
        one per update transaction, ~50 ms, virtually never firing) do not
        each bloat the event heap for their whole lifetime.  Use
        :meth:`timeout` when the exact expiry instant matters.
        """
        fire_at = self._now + delay
        bucket_time = fire_at - (fire_at % granularity)
        if bucket_time < fire_at:
            bucket_time += granularity
        buckets = self._deadline_buckets
        event = buckets.get(bucket_time)
        if event is None:
            event = Event(self, name="deadline")
            buckets[bucket_time] = event
            self._push(bucket_time, self._fire_deadline, bucket_time)
        return event

    def _fire_deadline(self, bucket_time: float) -> None:
        event = self._deadline_buckets.pop(bucket_time, None)
        if event is not None and not event.triggered:
            event.succeed()

    def signal(self, name: str = "") -> Signal:
        """Create a broadcast :class:`Signal` for condition waiters."""
        return Signal(self, name=name)

    def condition(self, predicate: Callable[[], bool], signals, name: str = "") -> Condition:
        """Create a :class:`Condition` firing when ``predicate()`` is true."""
        if isinstance(signals, Signal):
            signals = [signals]
        return Condition(self, predicate, signals, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def process(self, generator, name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # -------------------------------------------------------------- scheduling
    def _push(self, time: float, func: Callable, arg) -> None:
        if time < self._now - 1e-9:
            raise SimulationError(f"cannot schedule in the past: {time} < now {self._now}")
        heappush(self._heap, (time, self._sequence, func, arg))
        self._sequence += 1

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run ``delay`` from now."""
        self._push(self._now + delay, self._dispatch, event)

    def _schedule_callback(
        self, event: Optional[Event], callback: Callable[[Optional[Event]], None]
    ) -> None:
        """Schedule a single callback with ``event`` as argument, at ``now``."""
        self._push(self._now, callback, event)

    def call_at(self, time: float, callback: Callable, arg=_CALL0) -> None:
        """Schedule ``callback`` at absolute ``time``.

        Without ``arg`` the callback is invoked with no arguments; passing
        ``arg`` invokes ``callback(arg)`` and saves callers a closure
        allocation on hot paths.
        """
        self._push(time, callback, arg)

    def call_after(self, delay: float, callback: Callable, arg=_CALL0) -> None:
        """Schedule ``callback`` (optionally with one argument) ``delay`` from now."""
        self._push(self._now + delay, callback, arg)

    def schedule_fault(self, at: float, callback: Callable, label: str = "") -> None:
        """Schedule a scripted fault-plane event at absolute time ``at``.

        Crash/restart/partition/slow-link events are first-class in the
        engine: they go through the same heap as every other event (so they
        interleave deterministically with protocol traffic) and are recorded
        in :attr:`fault_log` for experiment reports and tests.
        """
        self.fault_log.append((at, label))
        self._push(at, callback, _CALL0)

    def _dispatch(self, event: Event) -> None:
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for callback in callbacks:
                callback(event)

    def _note_crashed_process(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  ``None`` runs until no
            scheduled events remain.

        Returns
        -------
        float
            The simulation time at which the loop stopped.

        Raises
        ------
        Exception
            If any process died with an uncaught exception during the run,
            the first such exception is re-raised after the loop stops, so
            protocol bugs never fail silently.
        """
        heap = self._heap
        crashed = self._crashed
        sentinel = _CALL0
        count = 0
        try:
            # A process may have crashed before its first yield (processes
            # start inline at creation), with nothing scheduled to surface it.
            if crashed:
                process, exc = crashed[0]
                raise SimulationError(
                    f"process {process.name!r} crashed at t={self._now:.1f}"
                ) from exc
            while heap:
                entry = heappop(heap)
                time, _seq, func, arg = entry
                if until is not None and time > until:
                    heappush(heap, entry)
                    break
                self._now = time
                count += 1
                if arg is sentinel:
                    func()
                else:
                    func(arg)
                if crashed:
                    process, exc = crashed[0]
                    raise SimulationError(
                        f"process {process.name!r} crashed at t={self._now:.1f}"
                    ) from exc
        finally:
            self._event_count += count
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")
