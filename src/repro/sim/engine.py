"""The discrete-event simulation kernel.

:class:`Simulation` owns the virtual clock and the event heap.  Everything in
the reproduction — network message delivery, protocol handler execution,
client think time, lock timeouts — is expressed as events scheduled on one
:class:`Simulation` instance, which makes runs fully deterministic and
reproducible from a single seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Condition, Event, Signal, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class Simulation:
    """Event loop and virtual clock for one simulated cluster run.

    Parameters
    ----------
    seed:
        Root seed for the :class:`~repro.sim.rng.RngRegistry`; every random
        stream used by the cluster is derived from it.
    """

    def __init__(self, seed: int = 1):
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.rng = RngRegistry(seed)
        self._crashed: List[Tuple[Process, BaseException]] = []
        self._event_count = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (useful for progress stats)."""
        return self._event_count

    # --------------------------------------------------------------- creation
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event firing ``delay`` microseconds from now."""
        return Timeout(self, delay, value=value)

    def signal(self, name: str = "") -> Signal:
        """Create a broadcast :class:`Signal` for condition waiters."""
        return Signal(self, name=name)

    def condition(
        self, predicate: Callable[[], bool], signals, name: str = ""
    ) -> Condition:
        """Create a :class:`Condition` firing when ``predicate()`` is true."""
        if isinstance(signals, Signal):
            signals = [signals]
        return Condition(self, predicate, signals, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def process(self, generator, name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # -------------------------------------------------------------- scheduling
    def _push(self, time: float, callback: Callable[[], None]) -> None:
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        heapq.heappush(self._heap, (time, self._sequence, callback))
        self._sequence += 1

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run ``delay`` from now."""
        self._push(self._now + delay, lambda: self._dispatch(event))

    def _schedule_callback(
        self, event: Optional[Event], callback: Callable[[Optional[Event]], None]
    ) -> None:
        """Schedule a single callback with ``event`` as argument, at ``now``."""
        self._push(self._now, lambda: callback(event))

    def call_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule an arbitrary zero-argument callable at absolute ``time``."""
        self._push(time, callback)

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule an arbitrary zero-argument callable ``delay`` from now."""
        self._push(self._now + delay, callback)

    def _dispatch(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def _note_crashed_process(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  ``None`` runs until no
            scheduled events remain.

        Returns
        -------
        float
            The simulation time at which the loop stopped.

        Raises
        ------
        Exception
            If any process died with an uncaught exception during the run,
            the first such exception is re-raised after the loop stops, so
            protocol bugs never fail silently.
        """
        while self._heap:
            time, _seq, callback = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            self._event_count += 1
            callback()
            if self._crashed:
                process, exc = self._crashed[0]
                raise SimulationError(
                    f"process {process.name!r} crashed at t={self._now:.1f}"
                ) from exc
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")
