"""Generator-based cooperative processes for the simulation engine.

A process body is a Python generator function.  Each ``yield`` hands an
awaitable (:class:`~repro.sim.events.Event` or subclass) back to the engine;
the process is resumed when that awaitable triggers, receiving the awaitable's
value as the result of the ``yield`` expression.  Yielding a plain ``float``
or ``int`` is the allocation-free equivalent of yielding a value-less
``Timeout`` of that many microseconds — the fast path used for CPU service
charges.  A process is itself an :class:`~repro.sim.events.Event` that
triggers with the generator's return value, so processes can wait for each
other.

Example
-------
::

    def client(sim, store):
        yield Timeout(sim, 10)                 # think for 10 us
        value = yield store.read("x")          # wait for a read to complete
        return value

    proc = sim.process(client(sim, store))
    sim.run()
    assert proc.value == ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.common.errors import SimulationError
from repro.sim.events import _PENDING, Condition, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class ProcessKilled(Exception):
    """Thrown into a process generator when :meth:`Process.kill` is called."""


class Process(Event):
    """A running simulation process wrapping a generator.

    The process triggers (as an event) when its generator returns or raises.
    A generator ``return value`` becomes the process's event value; an
    uncaught exception makes the process fail, which propagates to any
    process waiting on it and, if nothing waits, surfaces from
    :meth:`Simulation.run` to avoid silently swallowed errors.
    """

    __slots__ = ("generator", "_waiting_on", "_killed")

    def __init__(self, sim: "Simulation", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator (did you forget to call the "
                "generator function?)"
            )
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._killed = False
        # Start the process synchronously, advancing the generator to its
        # first yield.  Spawning is a per-message operation (every generator
        # handler dispatch creates a process), and the deferred start cost
        # one heap entry plus one event-loop round-trip per spawn; the
        # inline start runs the same code at the same simulated time, only
        # without the scheduler detour.
        self._resume(None)

    # -- engine interface ---------------------------------------------------
    def _resume(self, event: Optional[Event]) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if event is None:
                target = self.generator.send(None)
            elif event._exception is not None:
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled:
            self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - must propagate any failure
            self.fail(exc)
            self.sim._note_crashed_process(self, exc)
            return

        cls = target.__class__
        if cls is float or cls is int:
            # Plain-number yield: resume after that many microseconds.  This
            # is the allocation-free fast path for CPU service charges (no
            # Timeout event is created; the generator receives None, exactly
            # as it would from a value-less Timeout).  Count one extra
            # processed event so the events/sec metric stays comparable with
            # the reference two-pass timeout machinery.
            sim = self.sim
            sim._event_count += 1
            sim._push(sim._now + target, self._resume, None)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(f"process {self.name!r} yielded {target!r}, expected an Event")
            )
            return
        # Inlined add_callback: the common case is a pending target.
        if target._value is _PENDING and target._exception is None:
            self._waiting_on = target
            target.callbacks.append(self._resume)
        else:
            self._waiting_on = target
            self.sim._schedule_callback(target, self._resume)

    # -- public API -----------------------------------------------------------
    def kill(self) -> None:
        """Terminate the process at the next opportunity.

        The process generator receives :class:`ProcessKilled` at its current
        yield point; ``finally`` blocks run normally.  Killing an already
        finished process is a no-op.
        """
        if self.triggered or self._killed:
            return
        self._killed = True
        waiting = self._waiting_on
        if isinstance(waiting, Condition):
            waiting.cancel()
        self._waiting_on = None
        try:
            self.generator.throw(ProcessKilled())
        except (StopIteration, ProcessKilled):
            pass
        except BaseException as exc:  # noqa: BLE001
            self.fail(exc)
            self.sim._note_crashed_process(self, exc)
            return
        if not self.triggered:
            self.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the process generator has not finished."""
        return not self.triggered
