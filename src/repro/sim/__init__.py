"""Discrete-event simulation engine.

The :mod:`repro.sim` package is the lowest substrate of the reproduction.  It
provides a small but complete discrete-event simulation (DES) kernel:

* :class:`~repro.sim.engine.Simulation` — the event loop and virtual clock.
* :class:`~repro.sim.process.Process` — generator-based cooperative
  processes (protocol handlers, clients) that ``yield`` awaitable primitives.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf`, :class:`~repro.sim.events.AllOf` —
  awaitable primitives.
* :class:`~repro.sim.events.Condition` — a re-evaluated predicate bound to a
  :class:`~repro.sim.events.Signal`, used to express the paper's
  ``wait until <predicate>`` steps.
* :class:`~repro.sim.resources.SimLock`, :class:`~repro.sim.resources.Store`
  — simulated synchronization resources.
* :class:`~repro.sim.rng.RngRegistry` — named deterministic random streams.

The engine is deterministic: given the same seed and the same sequence of
process creations, two runs produce identical event orderings.
"""

from repro.sim.engine import Simulation
from repro.sim.events import AllOf, AnyOf, Condition, Event, Signal, Timeout
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import SimLock, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Process",
    "ProcessKilled",
    "RngRegistry",
    "Signal",
    "SimLock",
    "Simulation",
    "Store",
    "Timeout",
]
