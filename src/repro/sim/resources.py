"""Simulated synchronization resources.

Two generic resources are provided on top of the event primitives:

* :class:`SimLock` — a FIFO mutual-exclusion lock whose ``acquire`` returns an
  event; used for coarse node-level critical sections (e.g. the ``atomically``
  annotation on the Decide handler in Algorithm 2).
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``;
  used to model per-node inbound message queues with priorities in the
  network layer.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class SimLock:
    """FIFO mutual exclusion lock in simulated time."""

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        """Return an event that fires when the caller holds the lock."""
        event = self.sim.event(name=f"lock-acquire:{self.name}")
        if not self._locked:
            self._locked = True
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release the lock, handing it to the next waiter if any."""
        if not self._locked:
            raise RuntimeError(f"release of unlocked SimLock {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Store:
    """Unbounded priority FIFO of items with blocking ``get``.

    Items are dequeued in ``(priority, insertion order)`` order; lower
    priority values are served first.  ``get`` returns an event that fires
    with the next item once one is available.
    """

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item, priority: int = 0) -> None:
        """Add ``item``; wake the oldest waiting getter if any."""
        self._insert(item, priority)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(self._pop())

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = self.sim.event(name=f"store-get:{self.name}")
        if self._items:
            event.succeed(self._pop())
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Optional[object]:
        """Return the next item without removing it, or ``None`` if empty."""
        if not self._items:
            return None
        return min(self._items)[2]

    # -- internals --------------------------------------------------------
    def _insert(self, item, priority: int) -> None:
        self._items.append((priority, self._seq, item))
        self._seq += 1

    def _pop(self):
        index = self._items.index(min(self._items))
        _priority, _seq, item = self._items.pop(index)
        return item
