"""Simulated synchronization resources.

Two generic resources are provided on top of the event primitives:

* :class:`SimLock` — a FIFO mutual-exclusion lock whose ``acquire`` returns an
  event; used for coarse node-level critical sections (e.g. the ``atomically``
  annotation on the Decide handler in Algorithm 2).
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``;
  used to model per-node inbound message queues with priorities in the
  network layer.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class SimLock:
    """FIFO mutual exclusion lock in simulated time."""

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        """Return an event that fires when the caller holds the lock."""
        event = self.sim.event(name=f"lock-acquire:{self.name}")
        if not self._locked:
            self._locked = True
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release the lock, handing it to the next waiter if any."""
        if not self._locked:
            raise RuntimeError(f"release of unlocked SimLock {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Store:
    """Unbounded priority FIFO of items with blocking ``get``.

    Items are dequeued in ``(priority, insertion order)`` order; lower
    priority values are served first.  ``get`` returns an event that fires
    with the next item once one is available.  The queue is a binary heap:
    every protocol message passes through a node's inbound store, and the
    previous linear-scan ``min()`` was a measurable per-message cost.
    """

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._getters: Deque[Event] = deque()
        self._get_name = f"store-get:{name}"

    def __len__(self) -> int:
        return len(self._items)

    def try_pop(self) -> Optional[object]:
        """Synchronously take the next item, or ``None`` when empty.

        Consumers that can handle an empty queue (the node dispatcher loop)
        use this to skip the event allocation and heap round-trip of
        :meth:`get` when an item is already waiting.
        """
        if self._items:
            # Still one logical dequeue event for the events/sec accounting.
            self.sim._event_count += 1
            return heappop(self._items)[2]
        return None

    def put(self, item, priority: int = 0) -> None:
        """Add ``item``; wake the oldest waiting getter if any.

        The waiting getter is fired inline: ``put`` is only ever invoked
        from event-loop callbacks (message delivery), where run-to-completion
        already holds, and the extra heap round-trip per message was a
        measurable cost.  The hand-off still counts as one processed event
        for the events/sec accounting.

        A waiting getter implies the queue is empty (``get`` only parks when
        no item exists), so the hand-off skips the heap entirely and passes
        ``item`` straight through.
        """
        if self._getters:
            getter = self._getters.popleft()
            if getter.triggered:  # pragma: no cover - defensive
                raise RuntimeError(f"store {self.name!r}: getter already triggered")
            getter._value = item
            callbacks = getter.callbacks
            if callbacks:
                getter.callbacks = []
                self.sim._event_count += 1
                for callback in callbacks:
                    callback(getter)
            return
        heappush(self._items, (priority, self._seq, item))
        self._seq += 1

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = self.sim.event(name=self._get_name)
        if self._items:
            event.succeed(heappop(self._items)[2])
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Optional[object]:
        """Return the next item without removing it, or ``None`` if empty."""
        if not self._items:
            return None
        return self._items[0][2]

    def clear(self) -> int:
        """Discard every queued item (crash semantics); returns the count.

        Parked getters stay parked: a cleared queue is simply empty, and the
        next ``put`` will wake them as usual.
        """
        dropped = len(self._items)
        self._items.clear()
        return dropped
