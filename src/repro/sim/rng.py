"""Deterministic named random streams.

Every source of randomness in a simulated cluster (network jitter, workload
key selection per client, latency sampling per channel) pulls from its own
named stream derived from the root seed.  Independent streams guarantee that
adding a new consumer of randomness does not perturb the values observed by
existing consumers, which keeps experiments comparable across code changes
and makes failures reproducible from ``(seed, stream name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 1):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it if needed.

        The stream's seed is derived by hashing ``(root_seed, name)`` so that
        streams are independent of the order in which they are first
        requested.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def derive(self, name: str) -> "RngRegistry":
        """Return a child registry whose root seed depends on ``name``.

        Useful for running several trials of one experiment: each trial gets
        ``registry.derive(f"trial-{i}")`` and therefore fully independent but
        reproducible randomness.
        """
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
