"""Awaitable primitives for the discrete-event simulation engine.

Processes (see :mod:`repro.sim.process`) communicate with the engine by
yielding instances of the classes defined here.  The design follows the
classic SimPy model: an :class:`Event` is a one-shot occurrence that carries a
value, a :class:`Timeout` is an event scheduled at ``now + delay``, and the
composite events :class:`AnyOf` / :class:`AllOf` fire when one / all of their
children have fired.

In addition to the SimPy-style primitives, the engine provides
:class:`Signal` and :class:`Condition`.  The SSS pseudo-code contains several
``wait until <predicate over mutable node state>`` steps (for example a read
request waiting until ``NLog.mostRecentVC[i] >= T.VC[i]``, or the pre-commit
phase waiting until no older read-only transaction remains in a snapshot
queue).  A :class:`Condition` binds such a predicate to one or more
:class:`Signal` objects; whenever a signal is notified the predicate is
re-evaluated and, if true, the condition fires.

All classes use ``__slots__``: protocol state mutations notify signals and
trigger events hundreds of thousands of times per run, and instance dicts
were a measurable share of the event loop's allocation volume.
:meth:`Signal.notify` returns without any allocation when no condition is
attached, which is the common case for snapshot-queue and commit-log signals
under read-dominated workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulation

# Sentinel distinguishing "not yet fired" from "fired with value None".
_PENDING = object()


class Event:
    """A one-shot occurrence inside the simulation.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    makes it *triggered* and schedules all registered callbacks to run at the
    current simulation time.  Processes waiting on the event are resumed with
    the event's value, or have the failure exception thrown into them.
    """

    __slots__ = ("sim", "name", "_value", "_exception", "callbacks")

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._value = _PENDING
        self._exception: Optional[BaseException] = None
        self.callbacks: List[Callable[["Event"], None]] = []

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self):
        """The value the event succeeded with."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering -------------------------------------------------------
    def succeed(self, value=None) -> "Event":
        """Mark the event as successful and schedule its callbacks."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event as failed; waiters get ``exception`` thrown."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event triggers.

        If the event already triggered the callback is scheduled immediately
        (still asynchronously, preserving run-to-completion semantics).
        """
        if self._value is not _PENDING or self._exception is not None:
            self.sim._schedule_callback(self, callback)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self.triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state} at t={self.sim.now:.1f}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it was created."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value=None, name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # The name stays empty unless provided: formatting a label for every
        # CPU charge and think time is pure allocation overhead (__repr__
        # falls back to the class name).
        super().__init__(sim, name=name)
        self.delay = delay
        # Schedule the bound method with the value in the heap entry; no
        # closure is allocated for this extremely common operation.
        sim.call_after(delay, self._fire, value)

    def _fire(self, value) -> None:
        if self._value is _PENDING and self._exception is None:
            self._value = value
            # _fire runs directly from the event loop at the timeout's own
            # position, so the callbacks can run inline: run-to-completion is
            # preserved without a second trip through the heap.  The firing
            # still counts as one processed event so the events/sec metric
            # stays comparable with the two-pass implementation.
            callbacks = self.callbacks
            if callbacks:
                self.callbacks = []
                self.sim._event_count += 1
                for callback in callbacks:
                    callback(self)


class AnyOf(Event):
    """Composite event that fires when *any* child event fires.

    The value is a dict mapping the already-triggered child events to their
    values at the time the composite fired.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, _child: Event) -> None:
        if self.triggered:
            return
        if _child.exception is not None:
            self.fail(_child.exception)
            return
        self.succeed(self._collect())

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.triggered and e.ok}


class AllOf(Event):
    """Composite event that fires when *all* child events have fired."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            raise SimulationError("AllOf requires at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e._value for e in self.events})


class Signal:
    """A broadcast notification channel for :class:`Condition` waiters.

    Protocol state that ``wait until`` predicates read (the node's NLog, a
    key's snapshot queue, the commit queue) owns a :class:`Signal`; every
    mutation calls :meth:`notify`, which re-evaluates all conditions bound to
    the signal.
    """

    __slots__ = ("sim", "name", "_conditions")

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._conditions: List["Condition"] = []

    def attach(self, condition: "Condition") -> None:
        self._conditions.append(condition)

    def detach(self, condition: "Condition") -> None:
        if condition in self._conditions:
            self._conditions.remove(condition)

    def notify(self) -> None:
        """Re-evaluate every attached condition, firing those now true."""
        conditions = self._conditions
        if not conditions:
            # Fast path: protocol state mutates far more often than anything
            # waits on it; skip the defensive copy entirely.
            return
        if len(conditions) == 1:
            # Single waiter: evaluating may detach it, which is safe without
            # copying because we do not continue iterating.
            conditions[0].evaluate()
            return
        # Iterate over a copy: firing a condition detaches it.
        for condition in list(conditions):
            condition.evaluate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Signal {self.name!r} waiters={len(self._conditions)}>"


class Condition(Event):
    """Event that fires as soon as ``predicate()`` becomes true.

    The predicate is evaluated once at construction time (so conditions that
    are already satisfied fire immediately) and then again every time one of
    the bound signals is notified.
    """

    __slots__ = ("predicate", "signals")

    def __init__(
        self,
        sim: "Simulation",
        predicate: Callable[[], bool],
        signals: Iterable[Signal],
        name: str = "",
    ):
        super().__init__(sim, name=name or "condition")
        self.predicate = predicate
        self.signals = list(signals)
        for signal in self.signals:
            signal.attach(self)
        self.evaluate()

    def evaluate(self) -> None:
        """Fire the condition if its predicate currently holds."""
        if self._value is not _PENDING or self._exception is not None:
            return
        if self.predicate():
            for signal in self.signals:
                signal.detach(self)
            self.succeed()

    def cancel(self) -> None:
        """Detach from all signals without firing (used on process kill)."""
        for signal in self.signals:
            signal.detach(self)
