"""Message base class and priority classes.

The SSS implementation assigns different network queues (and thus priorities)
to different message types; the paper calls out that the ``Remove`` message
has very high priority because it unblocks external commits.  The enum below
defines the priority classes used across all protocols in this repository;
lower numeric values are served first by the per-node dispatcher.

Hot-path design
---------------
One message object is allocated per protocol send — the single biggest
allocation site above the sim kernel — so the message classes are plain
``__slots__`` classes rather than dataclasses: no per-instance ``__dict__``,
no ``__post_init__`` double dispatch, and the per-type constants (priority
class, type name, fixed size component) live on the *class*, computed once
at import.  Subclasses declare their payload in ``__slots__``, override the
``priority`` class attribute, and assign payload fields in a plain
``__init__`` that chains to :meth:`Message.__init__`.
"""

from __future__ import annotations

import itertools
from enum import IntEnum
from typing import TYPE_CHECKING, Optional

from repro.common.ids import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.clocks.compression import VCCodec

_next_message_id = itertools.count().__next__


class MessagePriority(IntEnum):
    """Priority classes for protocol messages (lower = more urgent)."""

    CONTROL = 0
    """Messages that unblock other transactions (Remove, Ack, Decide)."""

    COMMIT = 1
    """2PC prepare/vote traffic."""

    READ = 2
    """Read requests and read returns."""

    BULK = 3
    """Everything else (background, warm-up, statistics)."""


class Message:
    """Base class of every protocol message exchanged between nodes.

    Attributes
    ----------
    sender:
        Node that sent the message (filled in by the transport).
    destination:
        Node the message is addressed to (filled in by the transport).
    priority:
        Priority class used by the per-node inbound queues.  A *class*
        attribute: every instance of a message type shares one priority, so
        storing it per instance would waste a slot and a store per send.
    msg_id:
        Globally unique message number, useful in traces and tests.
    send_time / deliver_time:
        Simulated timestamps stamped by the transport.

    ``type_name`` is materialized as a class attribute by
    ``__init_subclass__`` (it used to be a property, a measurable cost with
    one statistics lookup per send and per delivery).
    """

    __slots__ = (
        "sender",
        "destination",
        "msg_id",
        "send_time",
        "deliver_time",
        "reply_to",
    )

    priority = MessagePriority.BULK
    """Priority class of this message type (class-level, override per type)."""

    type_name = "Message"
    """Short message type name used for tracing and statistics."""

    base_size = 64
    """Fixed wire-size component in bytes (class-level, override per type)."""

    def __init__(self) -> None:
        self.sender: NodeId = -1
        self.destination: NodeId = -1
        self.msg_id: int = _next_message_id()
        self.send_time: float = 0.0
        self.deliver_time: float = 0.0
        self.reply_to: Optional[int] = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.type_name = cls.__name__

    def size_estimate(self, codec: Optional["VCCodec"] = None, peer: object = None) -> int:
        """Rough serialized size in bytes, used by the congestion model.

        Subclasses carrying vector clocks or value payloads override this to
        reflect the metadata cost the paper discusses (vector clocks grow
        linearly with the system size).  When the transport passes its
        per-sender ``codec`` and the destination ``peer``, clock-bearing
        subclasses account their clocks at the *delta-compressed* wire size
        (the paper's metadata-compression mitigation); without a codec the
        naive dense size ``8 * vc.size`` is used.
        """
        return self.base_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.type_name} #{self.msg_id} {self.sender}->{self.destination}>"
        )
