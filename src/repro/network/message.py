"""Message base class and priority classes.

The SSS implementation assigns different network queues (and thus priorities)
to different message types; the paper calls out that the ``Remove`` message
has very high priority because it unblocks external commits.  The enum below
defines the priority classes used across all protocols in this repository;
lower numeric values are served first by the per-node dispatcher.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.common.ids import NodeId

_message_counter = itertools.count()


class MessagePriority(enum.IntEnum):
    """Priority classes for protocol messages (lower = more urgent)."""

    CONTROL = 0
    """Messages that unblock other transactions (Remove, Ack, Decide)."""

    COMMIT = 1
    """2PC prepare/vote traffic."""

    READ = 2
    """Read requests and read returns."""

    BULK = 3
    """Everything else (background, warm-up, statistics)."""


@dataclass
class Message:
    """Base class of every protocol message exchanged between nodes.

    Attributes
    ----------
    sender:
        Node that sent the message (filled in by the transport).
    destination:
        Node the message is addressed to (filled in by the transport).
    priority:
        Priority class used by the per-node inbound queues.
    msg_id:
        Globally unique message number, useful in traces and tests.
    send_time / deliver_time:
        Simulated timestamps stamped by the transport.

    ``type_name`` is materialized as a class attribute by
    ``__init_subclass__`` (it used to be a property, a measurable cost with
    one statistics lookup per send and per delivery).
    """

    sender: NodeId = field(default=-1, init=False)
    destination: NodeId = field(default=-1, init=False)
    priority: MessagePriority = field(default=MessagePriority.BULK, init=False)
    msg_id: int = field(default_factory=_message_counter.__next__, init=False)
    send_time: float = field(default=0.0, init=False)
    deliver_time: float = field(default=0.0, init=False)
    reply_to: Optional[int] = field(default=None, init=False)

    type_name = "Message"
    """Short message type name used for tracing and statistics."""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.type_name = cls.__name__

    def size_estimate(self) -> int:
        """Rough serialized size in bytes, used by the congestion model.

        Subclasses carrying vector clocks or value payloads override this to
        reflect the metadata cost the paper discusses (vector clocks grow
        linearly with the system size).
        """
        return 64

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.type_name} #{self.msg_id} {self.sender}->{self.destination}>"
        )
