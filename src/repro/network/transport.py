"""The cluster interconnect.

:class:`Network` connects the nodes of a simulated cluster.  Sending a
message stamps it with sender/destination, charges the sender's outgoing link
(a simple M/D/1-style busy-until model that produces congestion when a node
emits messages faster than the link service rate), samples a propagation
latency and schedules delivery into the destination node's prioritized
inbound queue.

Delivery is *batched per destination*: each destination owns a
:class:`_Channel` with a heap of in-flight messages ordered by
``(deliver_time, seq)`` and a single drain callback per wake-up time.  One
drain hands every message due at that instant to the node's inbound queue,
whose priority heap then orders the batch — so a burst converging on a hot
node (vote waves, decide fan-in, congested links) costs one engine event
instead of N, the drain callback is one preallocated bound method per node
instead of a fresh closure per message, and priority ordering is preserved
exactly.

Wire-size accounting goes through a per-sender
:class:`~repro.clocks.compression.VCCodec`: clock-bearing messages charge the
delta-compressed size of their clocks (the paper's metadata compression)
rather than the naive dense ``8 * vc.size``, and the codecs' running totals
feed the per-experiment compression metrics.

Reliability model: channels are reliable unless an endpoint has crashed, in
which case messages to or from that node are dropped — exactly the paper's
crash-stop assumption ("messages are guaranteed to be eventually delivered
unless a crash happens at the sender or receiver node").

Fault plane: on top of the crash-stop model the transport exposes two
scripted degradations (driven by the declarative
:class:`~repro.common.config.FaultPlan`):

* :meth:`Network.partition` splits the nodes into groups; cross-group
  messages are *held* inside the network and released at
  :meth:`Network.heal_partition` (eventual delivery, the paper's model), or
  dropped outright in ``mode="drop"``.
* :meth:`Network.degrade_link` multiplies/inflates the propagation latency
  of one directed link (a "slow link"); :meth:`Network.restore_link` undoes
  it.

All fault state is ``None``/empty by default and checked with one truthiness
test on the send path, so fail-free runs are untouched.

Shard awareness: randomness and sequence numbers are *per sender* (stream
``network.latency.n<id>``, and a sequence key packing ``(sender, seq)`` into
one integer), so a message's delivery key depends only on its sender's own
send history — never on global send interleaving.  A node-sharded engine
(:mod:`repro.sim.shard`) can therefore compute identical delivery keys with
only a subset of nodes present; sends to nodes that are not registered
locally go through the :meth:`Network._export` hook, which subclasses
override to hand the message to the owning shard.
"""

from __future__ import annotations

from collections import defaultdict
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.clocks.compression import VCCodec
from repro.common.config import NetworkConfig
from repro.common.ids import NodeId
from repro.network.latency import LatencyModel, UniformLatency
from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.network.node import NetworkedNode


class NetworkStats:
    """Counters of network activity, aggregated per message type."""

    def __init__(self) -> None:
        self.sent: Dict[str, int] = defaultdict(int)
        self.delivered: Dict[str, int] = defaultdict(int)
        self.dropped: Dict[str, int] = defaultdict(int)
        self.bytes_sent: int = 0
        #: Messages currently (or cumulatively) held back by a partition.
        self.held: int = 0
        self.released: int = 0

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.total_sent,
            "delivered": self.total_delivered,
            "dropped": self.total_dropped,
            "bytes_sent": self.bytes_sent,
            "held": self.held,
            "released": self.released,
        }

    def merge_from(self, other: "NetworkStats") -> None:
        """Accumulate ``other`` into this instance (shard-merge path).

        Send-side counters (sent/bytes/held) and delivery-side counters
        (delivered/dropped/released) are each counted on exactly one shard
        per message, so summing per-shard stats never double-counts.
        """
        for name, count in other.sent.items():
            self.sent[name] += count
        for name, count in other.delivered.items():
            self.delivered[name] += count
        for name, count in other.dropped.items():
            self.dropped[name] += count
        self.bytes_sent += other.bytes_sent
        self.held += other.held
        self.released += other.released


class _Channel:
    """Per-destination delivery state: in-flight heap + drain scheduling.

    ``wakes`` is the strictly decreasing list of outstanding drain wake-up
    times: a new wake is only scheduled when it is *earlier* than every
    outstanding one, so the tail is always the next wake to fire and a drain
    retires exactly its own tail entry.
    """

    __slots__ = ("network", "node", "unit", "pending", "wakes", "drain")

    def __init__(self, network: "Network", node: "NetworkedNode"):
        self.network = network
        self.node = node
        self.unit = node.node_id
        self.pending: List[Tuple[float, int, Message]] = []
        self.wakes: List[float] = []
        # Preallocated bound method: one drain callback object per node for
        # the whole run instead of one per scheduled delivery.
        self.drain = self._drain

    def _drain(self) -> None:
        """Deliver every in-flight message due at this destination now."""
        network = self.network
        now = network.sim.now
        wakes = self.wakes
        if wakes and wakes[-1] <= now:
            wakes.pop()
        pending = self.pending
        if not pending:
            return
        if pending[0][0] <= now:
            stats = network.stats
            node = self.node
            tracer = network.sim.tracer
            if network._crashed and node.node_id in network._crashed:
                dropped = stats.dropped
                while pending and pending[0][0] <= now:
                    message = heappop(pending)[2]
                    dropped[message.type_name] += 1
                    if tracer is not None:
                        tracer.message(
                            "msg.dropped",
                            getattr(message, "txn_id", None),
                            self.unit,
                            kind=message.type_name,
                        )
            elif len(pending) == 1:
                # Singleton fast path: the only in-flight message is due.
                _at, skey, message = pending.pop()
                message.deliver_time = now
                stats.delivered[message.type_name] += 1
                if tracer is not None:
                    tracer.message(
                        "msg.recv",
                        getattr(message, "txn_id", None),
                        self.unit,
                        flow=skey,
                        kind=message.type_name,
                    )
                node.enqueue(message)
                return
            else:
                delivered = stats.delivered
                enqueue = node.enqueue
                while pending and pending[0][0] <= now:
                    _at, skey, message = heappop(pending)
                    message.deliver_time = now
                    delivered[message.type_name] += 1
                    if tracer is not None:
                        tracer.message(
                            "msg.recv",
                            getattr(message, "txn_id", None),
                            self.unit,
                            flow=skey,
                            kind=message.type_name,
                        )
                    enqueue(message)
        if pending:
            head_time = pending[0][0]
            if not wakes or wakes[-1] > head_time:
                # No outstanding wake covers the new head; schedule one at
                # its exact delivery time.
                wakes.append(head_time)
                network.sim.schedule_wake(head_time, self.unit, self.drain)


class Network:
    """Reliable asynchronous message transport between cluster nodes."""

    def __init__(
        self,
        sim: "Simulation",
        config: Optional[NetworkConfig] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.latency_model = latency_model or UniformLatency(
            base=self.config.base_latency_us, jitter=self.config.jitter_us
        )
        self._nodes: Dict[NodeId, "NetworkedNode"] = {}
        self._crashed: set[NodeId] = set()
        # Fault plane: active partition (node -> group id, None = connected),
        # messages held back by a buffering partition, and per-directed-link
        # latency degradations.  All empty by default.
        self._partition: Optional[Dict[NodeId, int]] = None
        self._partition_mode: str = "buffer"
        self._held: List[Tuple[float, int, NodeId, Message]] = []
        #: Simulated times of past heals, newest last.  A shard that imports
        #: a partition-held message after the heal already ran locally uses
        #: this to release it directly (see ShardNetwork.admit).
        self._heal_times: List[float] = []
        self._degraded: Dict[Tuple[NodeId, NodeId], Tuple[float, float]] = {}
        self._link_busy_until: Dict[NodeId, float] = defaultdict(float)
        # Per-sender latency streams and sequence counters: a message's
        # delivery key must depend only on its sender's own history so that
        # shards reproduce it without observing other senders' traffic.
        self._rngs: Dict[NodeId, "random.Random"] = {}
        self._seqs: Dict[NodeId, int] = {}
        self.stats = NetworkStats()
        # Per-sender codec for delta-compressed clock accounting (adaptive
        # width: the transport carries every protocol's messages).
        self._codecs: Dict[NodeId, VCCodec] = {}
        self._channels: Dict[NodeId, _Channel] = {}
        # Full-cluster membership for partition mapping; defaults to the
        # locally registered nodes (see declare_node_ids).
        self._all_node_ids: Optional[List[NodeId]] = None
        rate = self.config.bandwidth_msgs_per_us
        self._link_service_us = 1.0 / rate if rate > 0 else 0.0

    # ---------------------------------------------------------------- nodes
    def register(self, node: "NetworkedNode") -> None:
        """Attach ``node`` to the network; its id must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node
        self._channels[node.node_id] = _Channel(self, node)

    def node(self, node_id: NodeId) -> "NetworkedNode":
        return self._nodes[node_id]

    def declare_node_ids(self, node_ids: Iterable[NodeId]) -> None:
        """Declare the full cluster membership.

        A shard registers only the nodes it owns, but partition groups are
        defined over the whole cluster; the declared membership keeps the
        implicit "every unnamed node" partition group identical on every
        shard (and on the serial engine).
        """
        self._all_node_ids = sorted(node_ids)

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self._nodes)

    # --------------------------------------------------------------- crashes
    def crash(self, node_id: NodeId) -> None:
        """Mark ``node_id`` as crashed; its traffic is dropped from now on."""
        self._crashed.add(node_id)

    def recover(self, node_id: NodeId) -> None:
        """Clear the crashed flag (crash-recovery experiments only)."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: NodeId) -> bool:
        return node_id in self._crashed

    # ------------------------------------------------------------- partitions
    def partition(self, groups: Iterable[Iterable[NodeId]], mode: str = "buffer") -> None:
        """Split the cluster into ``groups``; cross-group traffic is cut.

        ``mode="buffer"`` holds cross-partition messages inside the network
        and releases them at :meth:`heal_partition` — the paper's
        eventual-delivery model.  ``mode="drop"`` loses them.  Registered
        nodes not named in any group form one implicit extra group together.
        Replaces any previously active partition.
        """
        mapping: Dict[NodeId, int] = {}
        group_count = 0
        for group_count, group in enumerate(groups, start=1):
            for node_id in group:
                mapping[node_id] = group_count - 1
        members = self._all_node_ids if self._all_node_ids is not None else self._nodes
        for node_id in members:
            mapping.setdefault(node_id, group_count)
        self._partition = mapping
        self._partition_mode = mode

    def heal_partition(self) -> None:
        """Reconnect the cluster; release every held cross-partition message.

        Held messages re-enter their destination channels with their original
        sequence numbers (so order among them is preserved) at their original
        delivery time or ``now``, whichever is later.
        """
        self._partition = None
        self._heal_times.append(self.sim.now)
        if not self._held:
            return
        held = self._held
        self._held = []
        held.sort()
        sim = self.sim
        now = sim.now
        stats = self.stats
        touched: Dict[NodeId, _Channel] = {}
        for deliver_at, seq, destination, message in held:
            channel = self._channels[destination]
            at = deliver_at if deliver_at > now else now
            heappush(channel.pending, (at, seq, message))
            touched[destination] = channel
            stats.released += 1
        for channel in touched.values():
            head_time = channel.pending[0][0]
            wakes = channel.wakes
            if not wakes or wakes[-1] > head_time:
                wakes.append(head_time)
                sim.schedule_wake(head_time, channel.unit, channel.drain)

    def is_partitioned(self, sender: NodeId, destination: NodeId) -> bool:
        """True when an active partition separates the two nodes."""
        partition = self._partition
        if partition is None:
            return False
        return partition.get(sender) != partition.get(destination)

    # ----------------------------------------------------------- link quality
    def degrade_link(
        self, src: NodeId, dst: NodeId, factor: float = 1.0, extra_us: float = 0.0
    ) -> None:
        """Degrade the directed ``src -> dst`` link.

        Every subsequent message on the link has its propagation latency
        multiplied by ``factor`` and increased by ``extra_us``.
        """
        self._degraded[(src, dst)] = (factor, extra_us)

    def restore_link(self, src: NodeId, dst: NodeId) -> None:
        """Remove any degradation of the directed ``src -> dst`` link."""
        self._degraded.pop((src, dst), None)

    # ---------------------------------------------------------------- sending
    def send(self, sender: NodeId, destination: NodeId, message: Message) -> None:
        """Send ``message`` from ``sender`` to ``destination``.

        Local sends (``sender == destination``) skip the propagation latency
        but still pay the dispatcher's handling cost, mirroring a loopback
        fast path.
        """
        message.sender = sender
        message.destination = destination
        sim = self.sim
        now = sim.now
        message.send_time = now
        stats = self.stats
        tracer = sim.tracer
        type_name = message.type_name
        stats.sent[type_name] += 1
        codec = self._codecs.get(sender)
        if codec is None:
            codec = self._codecs[sender] = VCCodec()
        stats.bytes_sent += message.size_estimate(codec, destination)

        if self._crashed and (sender in self._crashed or destination in self._crashed):
            stats.dropped[type_name] += 1
            if tracer is not None:
                tracer.message(
                    "msg.dropped",
                    getattr(message, "txn_id", None),
                    sender,
                    peer=destination,
                    kind=type_name,
                )
            return

        # Outgoing-link congestion: each message occupies the link for
        # 1/bandwidth microseconds and queues FIFO behind the link's
        # busy-until horizon — negligible at low load, and the source of
        # the saturation knees in the paper's throughput curves once a
        # node emits messages faster than its link drains them.
        service = self._link_service_us
        if service:
            busy = self._link_busy_until
            start = busy[sender]
            if start < now:
                start = now
            deliver_at = start + service
            busy[sender] = deliver_at
        else:
            deliver_at = now
        if sender != destination:
            rng = self._rngs.get(sender)
            if rng is None:
                rng = self._rngs[sender] = sim.rng.stream(f"network.latency.n{sender}")
            latency = self.latency_model.sample(rng)
            if self._degraded:
                degradation = self._degraded.get((sender, destination))
                if degradation is not None:
                    latency = latency * degradation[0] + degradation[1]
            deliver_at += latency

        # Globally unique, sender-local delivery key: ties at one delivery
        # instant break by (sender, per-sender seq) rather than by global
        # send order, which every shard can reproduce independently.
        seq = self._seqs.get(sender, 0)
        self._seqs[sender] = seq + 1
        skey = ((sender + 1) << 44) | seq

        held = False
        if self._partition is not None and sender != destination:
            partition = self._partition
            if partition.get(sender) != partition.get(destination):
                if self._partition_mode == "drop":
                    stats.dropped[type_name] += 1
                    if tracer is not None:
                        tracer.message(
                            "msg.dropped",
                            getattr(message, "txn_id", None),
                            sender,
                            peer=destination,
                            kind=type_name,
                        )
                    return
                # Eventual delivery: hold the message until the heal.  Held
                # messages live at the *destination* side so a mirrored heal
                # releases them with purely local state.
                stats.held += 1
                held = True

        if tracer is not None:
            # One lifecycle point per send: ``msg.send`` (or ``msg.held``
            # when a buffering partition intercepts it) with the sender-
            # local delivery key as the flow id binding it to the delivery.
            tracer.message(
                "msg.held" if held else "msg.send",
                getattr(message, "txn_id", None),
                sender,
                flow=skey,
                peer=destination,
                kind=type_name,
            )

        channel = self._channels.get(destination)
        if channel is None:
            self._export(deliver_at, skey, destination, message, held)
            return
        if held:
            self._held.append((deliver_at, skey, destination, message))
            return
        heappush(channel.pending, (deliver_at, skey, message))
        wakes = channel.wakes
        if not wakes or deliver_at < wakes[-1]:
            wakes.append(deliver_at)
            sim.schedule_wake(deliver_at, channel.unit, channel.drain)

    def _export(
        self, deliver_at: float, skey: int, destination: NodeId, message: Message, held: bool
    ) -> None:
        """Hand a message addressed to an unregistered node to its owner.

        The base network owns every node, so reaching this hook is a
        routing bug; :class:`~repro.sim.shard.ShardNetwork` overrides it to
        buffer the message for cross-shard delivery.
        """
        raise KeyError(destination)

    def broadcast(self, sender: NodeId, destinations: Iterable[NodeId], message_factory) -> None:
        """Send one message per destination, created by ``message_factory()``.

        A factory is required (rather than one shared message instance)
        because the transport mutates sender/destination/timestamps on the
        message object.
        """
        for destination in destinations:
            self.send(sender, destination, message_factory())

    # ------------------------------------------------------------ clock stats
    def clock_stats(self) -> Dict[str, float]:
        """Aggregate clock-compression accounting over every sender codec.

        Returns the totals needed by the experiment reports: number of
        clocks encoded, encoded vs. dense byte totals and the largest single
        encoded clock.  Derived quantities (mean bytes per clock/message,
        compression ratio) are computed by the harness.
        """
        clocks = encoded = dense = 0
        largest = 0
        for codec in self._codecs.values():
            clocks += codec.clocks_encoded
            encoded += codec.encoded_bytes_total
            dense += codec.dense_bytes_total
            if codec.encoded_bytes_max > largest:
                largest = codec.encoded_bytes_max
        return {
            "clocks_encoded": clocks,
            "encoded_bytes_total": encoded,
            "dense_bytes_total": dense,
            "encoded_bytes_max": largest,
        }

