"""The cluster interconnect.

:class:`Network` connects the nodes of a simulated cluster.  Sending a
message stamps it with sender/destination, charges the sender's outgoing link
(a simple M/D/1-style busy-until model that produces congestion when a node
emits messages faster than the link service rate), samples a propagation
latency and schedules delivery into the destination node's prioritized
inbound queue.

Reliability model: channels are reliable unless an endpoint has crashed, in
which case messages to or from that node are dropped — exactly the paper's
crash-stop assumption ("messages are guaranteed to be eventually delivered
unless a crash happens at the sender or receiver node").
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.common.config import NetworkConfig
from repro.common.ids import NodeId
from repro.network.latency import LatencyModel, UniformLatency
from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.network.node import NetworkedNode


class NetworkStats:
    """Counters of network activity, aggregated per message type."""

    def __init__(self) -> None:
        self.sent: Dict[str, int] = defaultdict(int)
        self.delivered: Dict[str, int] = defaultdict(int)
        self.dropped: Dict[str, int] = defaultdict(int)
        self.bytes_sent: int = 0

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.total_sent,
            "delivered": self.total_delivered,
            "dropped": self.total_dropped,
            "bytes_sent": self.bytes_sent,
        }


class Network:
    """Reliable asynchronous message transport between cluster nodes."""

    def __init__(
        self,
        sim: "Simulation",
        config: Optional[NetworkConfig] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.latency_model = latency_model or UniformLatency(
            base=self.config.base_latency_us, jitter=self.config.jitter_us
        )
        self._nodes: Dict[NodeId, "NetworkedNode"] = {}
        self._crashed: set[NodeId] = set()
        self._link_busy_until: Dict[NodeId, float] = defaultdict(float)
        self._rng = sim.rng.stream("network.latency")
        self.stats = NetworkStats()

    # ---------------------------------------------------------------- nodes
    def register(self, node: "NetworkedNode") -> None:
        """Attach ``node`` to the network; its id must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: NodeId) -> "NetworkedNode":
        return self._nodes[node_id]

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self._nodes)

    # --------------------------------------------------------------- crashes
    def crash(self, node_id: NodeId) -> None:
        """Mark ``node_id`` as crashed; its traffic is dropped from now on."""
        self._crashed.add(node_id)

    def recover(self, node_id: NodeId) -> None:
        """Clear the crashed flag (crash-recovery experiments only)."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: NodeId) -> bool:
        return node_id in self._crashed

    # ---------------------------------------------------------------- sending
    def send(self, sender: NodeId, destination: NodeId, message: Message) -> None:
        """Send ``message`` from ``sender`` to ``destination``.

        Local sends (``sender == destination``) skip the propagation latency
        but still pay the dispatcher's handling cost, mirroring a loopback
        fast path.
        """
        message.sender = sender
        message.destination = destination
        message.send_time = self.sim.now
        stats = self.stats
        stats.sent[type(message).__name__] += 1
        stats.bytes_sent += message.size_estimate()

        if self._crashed and (sender in self._crashed or destination in self._crashed):
            stats.dropped[type(message).__name__] += 1
            return

        delay = self._transmission_delay(sender, message)
        if sender != destination:
            delay += self.latency_model.sample(self._rng)

        # Bound method + argument instead of a closure: one send per protocol
        # message makes this one of the hottest allocation sites.
        self.sim.call_after(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        destination = message.destination
        if destination in self._crashed:
            self.stats.dropped[type(message).__name__] += 1
            return
        message.deliver_time = self.sim.now
        self.stats.delivered[type(message).__name__] += 1
        self._nodes[destination].enqueue(message)

    def broadcast(
        self, sender: NodeId, destinations: Iterable[NodeId], message_factory
    ) -> None:
        """Send one message per destination, created by ``message_factory()``.

        A factory is required (rather than one shared message instance)
        because the transport mutates sender/destination/timestamps on the
        message object.
        """
        for destination in destinations:
            self.send(sender, destination, message_factory())

    # ------------------------------------------------------------- congestion
    def _transmission_delay(self, sender: NodeId, message: Message) -> float:
        """Queueing delay on the sender's outgoing link.

        Each message occupies the link for ``1 / bandwidth`` microseconds;
        messages queue FIFO behind the link's busy-until horizon.  With the
        default rate this is negligible at low load and grows once a node
        emits messages faster than the link drains them, producing the
        saturation knees visible in the paper's throughput curves.
        """
        rate = self.config.bandwidth_msgs_per_us
        if rate <= 0:
            return 0.0
        service = 1.0 / rate
        start = max(self.sim.now, self._link_busy_until[sender])
        self._link_busy_until[sender] = start + service
        return (start + service) - self.sim.now
