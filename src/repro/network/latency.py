"""Latency models for the simulated interconnect.

The paper's test-bed delivers a message in around 20 microseconds when the
network is not saturated.  The default model used by experiments is
:class:`UniformLatency` centred at that value; :class:`LogNormalLatency` is
provided for studying tail-latency sensitivity, and :class:`ConstantLatency`
for fully deterministic unit tests.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Samples one-way message latencies in microseconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Return one latency sample (>= 0)."""

    @abstractmethod
    def mean(self) -> float:
        """Return the model's mean latency, used for sizing timeouts."""

    def min_latency(self) -> float:
        """Infimum of :meth:`sample` — the parallel engine's safe lookahead.

        A conservative node-sharded simulation may only advance a shard to
        ``t + min_latency`` before exchanging cross-shard messages, so a
        model whose infimum is 0 (e.g. :class:`LogNormalLatency`) cannot be
        used with ``engine="parallel"``.
        """
        return 0.0


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` microseconds."""

    def __init__(self, value: float = 20.0):
        if value < 0:
            raise ValueError("latency must be >= 0")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def min_latency(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantLatency({self.value})"


class UniformLatency(LatencyModel):
    """Latency uniformly distributed in ``[base - jitter, base + jitter]``."""

    def __init__(self, base: float = 20.0, jitter: float = 4.0):
        if base < 0 or jitter < 0 or jitter > base:
            raise ValueError("require 0 <= jitter <= base")
        self.base = base
        self.jitter = jitter

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.base - self.jitter, self.base + self.jitter)

    def mean(self) -> float:
        return self.base

    def min_latency(self) -> float:
        return self.base - self.jitter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformLatency(base={self.base}, jitter={self.jitter})"


class LogNormalLatency(LatencyModel):
    """Latency with a lognormal tail, parameterised by median and sigma."""

    def __init__(self, median: float = 20.0, sigma: float = 0.3):
        if median <= 0 or sigma < 0:
            raise ValueError("require median > 0 and sigma >= 0")
        self.median = median
        self.sigma = sigma
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"
