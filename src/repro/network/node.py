"""Base class for protocol nodes.

:class:`NetworkedNode` provides the machinery every protocol node (SSS, the
2PC baseline, Walter, ROCOCO) needs:

* a prioritized inbound message queue fed by the :class:`~repro.network.transport.Network`,
* a dispatcher process that drains the queue, charging a per-message CPU
  handling cost (this is what makes a node saturate under load),
* handler registration by message class — handlers may be plain functions or
  generator functions; generator handlers are spawned as simulation
  processes so they can block on further events,
* request/response helpers that correlate replies to requests via
  ``reply_to`` and return awaitable events,
* crash-aware dispatch for the fault plane: when fault mode is enabled
  (:meth:`NetworkedNode.enable_fault_mode`, done once by the fault-plan
  installer), handler processes carry the node's *epoch* and die at their
  next scheduling point after a crash bumped it — modelling the loss of all
  in-progress work of a crash-stopped process.  Fail-free runs never enable
  fault mode and pay nothing beyond one attribute check per delivery.

Protocol subclasses register their handlers in ``__init__`` and use
``self.send`` / ``self.request`` / ``self.respond``.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Dict, Optional, Type

from repro.common.config import ServiceTimeConfig
from repro.common.errors import NodeCrashedError
from repro.common.ids import NodeId
from repro.network.message import Message
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.transport import Network
    from repro.sim.engine import Simulation


class NetworkedNode:
    """A cluster node attached to a :class:`~repro.network.transport.Network`."""

    def __init__(
        self,
        sim: "Simulation",
        network: "Network",
        node_id: NodeId,
        service: Optional[ServiceTimeConfig] = None,
    ):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.service = service or ServiceTimeConfig()
        self._inbound = Store(sim, name=f"node{node_id}.inbound")
        # message type -> (handler, is_generator_function); whether a handler
        # needs to be spawned as a process is decided once at registration
        # instead of via inspect on every delivery.
        self._handlers: Dict[Type[Message], tuple] = {}
        self._pending_replies: Dict[int, Event] = {}
        self._process_names: Dict[type, str] = {}
        self._dispatcher = sim.process(self._dispatch_loop(), name=f"node{node_id}.dispatcher")
        self.messages_handled = 0
        # Fault plane: ``crashed`` gates delivery, ``_epoch`` invalidates
        # handler processes spawned before a crash, ``_fault_mode`` keeps the
        # guard machinery entirely off the fail-free hot path.
        self.crashed = False
        self._epoch = 0
        self._fault_mode = False
        network.register(self)

    # ------------------------------------------------------------- handlers
    def register_handler(self, message_type: Type[Message], handler: Callable) -> None:
        """Register ``handler`` for messages of ``message_type``.

        The handler receives the message as its single argument.  If the
        handler is a generator function it is spawned as a new simulation
        process, allowing it to ``yield`` further events (remote calls, lock
        waits, condition waits).
        """
        self._handlers[message_type] = (handler, inspect.isgeneratorfunction(handler))

    # ------------------------------------------------------------- messaging
    def send(self, destination: NodeId, message: Message) -> None:
        """Fire-and-forget send."""
        self.network.send(self.node_id, destination, message)

    def request(self, destination: NodeId, message: Message) -> Event:
        """Send ``message`` and return an event firing with the reply.

        The reply is matched by the responder calling :meth:`respond` with
        the original request, which copies the request's ``msg_id`` into the
        response's ``reply_to`` field.  While this node is crashed (fault
        plane), the request fails immediately with
        :class:`~repro.common.errors.NodeCrashedError` so co-located client
        processes do not park forever on a reply that can never come.
        """
        event = self.sim.event(name="reply")
        if self.crashed:
            event.fail(NodeCrashedError(f"node {self.node_id} is crashed"))
            return event
        self._pending_replies[message.msg_id] = event
        self.network.send(self.node_id, destination, message)
        return event

    def respond(self, request: Message, response: Message) -> None:
        """Send ``response`` back to the sender of ``request``."""
        response.reply_to = request.msg_id
        self.network.send(self.node_id, request.sender, response)

    # ------------------------------------------------------------ inbound path
    def enqueue(self, message: Message) -> None:
        """Called by the transport when a message arrives at this node.

        The ``int()`` conversion is deliberate: the priority-flattening
        ablation benchmark hooks ``MessagePriority.__int__`` to collapse the
        priority classes.
        """
        self._inbound.put(message, priority=int(message.priority))

    def _dispatch_loop(self):
        """Drain the inbound queue, charging CPU time per message."""
        inbound = self._inbound
        handling_us = self.service.message_handling_us
        while True:
            message = inbound.try_pop()
            if message is None:
                message = yield inbound.get()
            if handling_us > 0:
                yield handling_us
            self.messages_handled += 1
            self._deliver(message)

    def _deliver(self, message: Message) -> None:
        # Fault plane: a crashed node processes nothing.  The transport
        # already drops traffic to crashed nodes; this guard covers messages
        # that were sitting in the inbound queue when the crash hit (and is
        # only ever reached in fault mode).
        if self._fault_mode and self.crashed:
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.message(
                "msg.handle",
                getattr(message, "txn_id", None),
                self.node_id,
                kind=message.type_name,
            )
        # Replies to outstanding requests complete the request event directly
        # and bypass handler dispatch.  A reply with no matching request is
        # stale — its request state died with a crash — and is dropped (a
        # fail-free run never produces one: every respond() matches exactly
        # one outstanding request).
        if message.reply_to is not None:
            pending = self._pending_replies.pop(message.reply_to, None)
            if pending is not None and not pending.triggered:
                pending.succeed(message)
            return
        entry = self._lookup_handler(type(message))
        if entry is None:
            raise LookupError(f"node {self.node_id} has no handler for {message.type_name}")
        handler, is_generator = entry
        if is_generator:
            message_type = type(message)
            name = self._process_names.get(message_type)
            if name is None:
                name = f"node{self.node_id}.{message_type.__name__}"
                self._process_names[message_type] = name
            generator = handler(message)
            if self._fault_mode:
                generator = self._epoch_guard(generator, self._epoch)
            self.sim.process(generator, name=name)
        else:
            handler(message)

    def _lookup_handler(self, message_type: Type[Message]) -> Optional[tuple]:
        entry = self._handlers.get(message_type)
        if entry is not None:
            return entry
        for klass, candidate in self._handlers.items():
            if issubclass(message_type, klass):
                # Cache the subclass resolution for subsequent deliveries.
                self._handlers[message_type] = candidate
                return candidate
        return None

    # ------------------------------------------------------------ fault plane
    def enable_fault_mode(self) -> None:
        """Arm the crash/epoch machinery (done once by the fault installer).

        Fault mode costs one attribute check per delivery plus one wrapper
        generator per handler process; it is never enabled for fail-free
        runs, whose event sequence therefore stays byte-identical.
        """
        self._fault_mode = True

    def spawn_process(self, generator, name: str = ""):
        """Spawn a node-owned simulation process.

        In fault mode the process is epoch-guarded: it dies at its next
        scheduling point once the node crashes, like the handler processes.
        Protocol code must use this (not ``sim.process``) for any background
        work that conceptually lives inside the node.
        """
        if self._fault_mode:
            generator = self._epoch_guard(generator, self._epoch)
        return self.sim.process(generator, name=name)

    def _epoch_guard(self, generator, epoch: int):
        """Forward ``generator`` transparently until the node's epoch moves.

        The wrapper adds no simulation events of its own: every value the
        inner generator yields is yielded through unchanged, and every value
        or exception the engine sends back is forwarded.  When a crash bumps
        the node epoch, the inner generator is closed at its next resumption
        (running its ``finally`` blocks) and the process ends quietly —
        in-progress handler work dies with the node.
        """
        try:
            value = next(generator)
        except StopIteration as stop:
            return stop.value
        while True:
            if self._epoch != epoch:
                generator.close()
                return None
            try:
                received = yield value
            except BaseException as thrown:  # noqa: BLE001 - forward everything
                if self._epoch != epoch:
                    generator.close()
                    return None
                try:
                    value = generator.throw(thrown)
                except StopIteration as stop:
                    return stop.value
                continue
            if self._epoch != epoch:
                generator.close()
                return None
            try:
                value = generator.send(received)
            except StopIteration as stop:
                return stop.value

    # ------------------------------------------------------------ conveniences
    def cpu(self, micros: float) -> float:
        """Return an awaitable modelling ``micros`` of local CPU work.

        The returned plain number is the engine's allocation-free timeout
        fast path; it is only meaningful when yielded from a simulation
        process.
        """
        return micros

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} id={self.node_id}>"
