"""Simulated message-passing network substrate.

The paper's system model is a set of nodes communicating through reliable
asynchronous channels, with no bound on message delay and no shared clock.
Its implementation additionally uses "multiple network queues, each for a
different message type … so we can assign priorities to different messages".

This package reproduces that substrate on top of :mod:`repro.sim`:

* :class:`~repro.network.message.Message` — base class for protocol messages
  carrying a priority class.
* :mod:`repro.network.latency` — pluggable latency models (constant, uniform
  jitter, lognormal tail).
* :class:`~repro.network.transport.Network` — the cluster interconnect with
  per-node outgoing-link congestion and crash handling.
* :class:`~repro.network.node.NetworkedNode` — base class for protocol nodes:
  prioritized inbound queues, a CPU dispatcher charging per-message service
  time, handler registration, and RPC-style request/response helpers.
"""

from repro.network.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.network.message import Message, MessagePriority
from repro.network.node import NetworkedNode
from repro.network.transport import Network

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "MessagePriority",
    "Network",
    "NetworkedNode",
    "UniformLatency",
]
