"""Auto-minimization of failing genomes.

Given a genome that fails and a predicate "does this genome still fail the
same way?", :func:`minimize_genome` shrinks it in two passes:

1. **ddmin over plan phases** — classic delta debugging over the fault
   spec list and the traffic phase list: try dropping halves, then
   quarters, ... until no single phase can be removed without losing the
   failure.  This is where most of the shrinking happens; a genome bred
   through dozens of ``add_fault``/``add_traffic_phase`` mutations usually
   needs only one or two of its phases to fail.
2. **Field-level shrinking** — greedy per-knob reduction toward the
   simplest cluster that still fails: fewer clients, fewer nodes, fewer
   keys, a shorter run, and fault windows snapped to round numbers.

Every candidate is judged by re-running the scenario, so minimization cost
is bounded by ``budget`` predicate evaluations (results are memoized by
genome key — ddmin revisits configurations).  The output is always a
genome for which the predicate held, ready to be wrapped in a repro
bundle.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.search.genome import ScenarioGenome

Predicate = Callable[[ScenarioGenome], bool]


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit


def _checked(
    predicate: Predicate, cache: Dict[str, bool], budget: _Budget
) -> Predicate:
    def check(genome: ScenarioGenome) -> bool:
        try:
            genome = genome.normalize()
            genome.validate()
        except ConfigurationError:
            return False
        key = genome.key()
        if key in cache:
            return cache[key]
        if budget.spent():
            return False
        budget.used += 1
        result = bool(predicate(genome))
        cache[key] = result
        return result

    return check


def _ddmin(
    items: List[str],
    rebuild: Callable[[List[str]], ScenarioGenome],
    check: Predicate,
) -> List[str]:
    """Minimal sublist of ``items`` for which ``check(rebuild(subset))`` holds.

    Standard ddmin: start with granularity 2, try removing each chunk; on
    success restart at granularity 2 on the smaller list, otherwise refine
    granularity up to one-chunk-per-item.
    """
    if not items or not check(rebuild(items)):
        return items
    granularity = 2
    while items:
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if not check(rebuild(candidate)):
                continue
            items = candidate
            granularity = max(granularity - 1, 2)
            reduced = True
            break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(items), granularity * 2)
    return items


def minimize_genome(
    genome: ScenarioGenome,
    predicate: Predicate,
    budget: int = 120,
) -> Tuple[ScenarioGenome, int]:
    """Shrink ``genome`` while ``predicate`` keeps holding.

    Returns ``(minimized, evaluations_used)``.  The input genome must
    satisfy the predicate; the result always does.  ``budget`` caps how
    many *distinct* candidate runs the minimizer may spend — when it runs
    out, the best genome found so far is returned.
    """
    genome = genome.normalize()
    cache: Dict[str, bool] = {}
    tracker = _Budget(budget)
    check = _checked(predicate, cache, tracker)
    if not check(genome):
        raise ConfigurationError("minimize_genome: input genome does not fail")

    # Pass 1: ddmin over the two phase lists, faults first (usually the
    # trigger), then traffic.
    faults = _ddmin(
        list(genome.fault_specs),
        lambda specs: dc_replace(genome, fault_specs=tuple(specs)),
        check,
    )
    genome = dc_replace(genome, fault_specs=tuple(faults))
    traffic = _ddmin(
        list(genome.traffic_specs),
        lambda specs: dc_replace(genome, traffic_specs=tuple(specs)),
        check,
    )
    genome = dc_replace(genome, traffic_specs=tuple(traffic))

    # Pass 2: greedy field shrinking — accept any candidate that still
    # fails, trying the most aggressive reduction first.
    def try_candidates(current: ScenarioGenome, variants) -> ScenarioGenome:
        for variant in variants:
            if variant.key() != current.key() and check(variant):
                return variant
        return current

    for clients in (1, 2):
        if genome.clients_per_node > clients:
            genome = try_candidates(
                genome, [dc_replace(genome, clients_per_node=clients)]
            )
    genome = try_candidates(
        genome,
        [
            dc_replace(genome, n_nodes=n)
            for n in (2, 3, 4)
            if n < genome.n_nodes and n >= genome.replication_degree
        ],
    )
    genome = try_candidates(
        genome,
        [
            dc_replace(genome, n_keys=keys)
            for keys in (4, 16, 60)
            if keys < genome.n_keys
        ],
    )
    genome = try_candidates(
        genome,
        [
            dc_replace(genome, duration_us=round(genome.duration_us * factor, 1))
            for factor in (0.25, 0.5)
            if genome.duration_us * factor >= 2_500.0
        ],
    )
    return genome.normalize(), tracker.used
