"""The deterministic search loop and repro-bundle writer.

One :func:`run_search` call is one fuzzing campaign:

1. **Seed phase** — load genomes from the given corpus directories (plus
   built-in per-protocol baselines when the corpus is empty), score each,
   and admit the interesting ones.
2. **Mutation loop** — repeatedly pick a retained genome, mutate it, score
   the mutant, and keep it if it adds coverage or raises signal.  The loop
   is bounded by ``budget_runs`` (deterministic; used by tests and the PR
   smoke job) and/or ``budget_minutes`` (wall clock; used by nightly CI).
3. **Findings** — the first genome to hit each ``protocol:category``
   fingerprint is auto-minimized (:mod:`repro.search.minimize`) and
   written as a repro bundle under ``out_dir`` together with a
   ``search-summary.json``.  Fingerprints listed in the known-findings
   file are still minimized and bundled but do not make the campaign
   "fail" — nightly CI fails only on findings nobody has triaged yet.

All randomness comes from one ``random.Random(search_seed)``; scoring is
deterministic per genome; so with ``budget_runs`` the whole campaign —
including which findings appear and what they minimize to — replays
exactly.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace as dc_replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.search.corpus import Corpus, load_corpus_dirs, load_known_findings
from repro.search.genome import PROTOCOL_NAMES, ScenarioGenome
from repro.search.minimize import minimize_genome
from repro.search.mutators import mutate
from repro.search.scoring import finding_fingerprint, score_genome

BUNDLE_KIND = "repro-bundle"
BUNDLE_VERSION = 1


@dataclass
class SearchSettings:
    protocols: Tuple[str, ...] = PROTOCOL_NAMES
    budget_runs: Optional[int] = None
    budget_minutes: Optional[float] = None
    search_seed: int = 0
    corpus_dirs: Tuple[Path, ...] = ()
    out_dir: Path = Path("search-out")
    known_findings_path: Optional[Path] = None
    minimize_budget: int = 120
    max_seed_evals: int = 48
    save_corpus: Optional[Path] = None

    def validate(self) -> None:
        for protocol in self.protocols:
            if protocol not in PROTOCOL_NAMES:
                raise ConfigurationError(f"unknown protocol {protocol!r}")
        if self.budget_runs is None and self.budget_minutes is None:
            raise ConfigurationError(
                "search needs a budget: --budget-runs and/or --budget-minutes"
            )


@dataclass
class Finding:
    fingerprint: str
    category: str
    detail: Tuple[str, ...]
    genome: ScenarioGenome
    minimized: ScenarioGenome
    signal: Dict[str, float]
    known: bool
    minimize_evaluations: int
    bundle_path: Optional[Path] = None

    def bundle(self, settings: SearchSettings) -> Dict[str, object]:
        return {
            "kind": BUNDLE_KIND,
            "version": BUNDLE_VERSION,
            "fingerprint": self.fingerprint,
            "category": self.category,
            "detail": list(self.detail),
            "signal": {key: self.signal[key] for key in sorted(self.signal)},
            "genome": self.minimized.to_dict(),
            "original_genome": self.genome.to_dict(),
            "search_seed": settings.search_seed,
            "minimize_evaluations": self.minimize_evaluations,
            "replay": "python -m repro.search.replay <this file>",
        }


@dataclass
class SearchSummary:
    runs: int = 0
    seed_runs: int = 0
    corpus_size: int = 0
    coverage_atoms: int = 0
    findings: List[Finding] = field(default_factory=list)
    mutator_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def new_findings(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.known]

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "seed_runs": self.seed_runs,
            "corpus_size": self.corpus_size,
            "coverage_atoms": self.coverage_atoms,
            "mutator_counts": dict(sorted(self.mutator_counts.items())),
            "findings": [
                {
                    "fingerprint": finding.fingerprint,
                    "category": finding.category,
                    "known": finding.known,
                    "bundle": str(finding.bundle_path) if finding.bundle_path else None,
                    "genome": finding.minimized.describe(),
                }
                for finding in self.findings
            ],
            "new_findings": [finding.fingerprint for finding in self.new_findings],
        }


def default_seeds(protocols: Tuple[str, ...]) -> List[ScenarioGenome]:
    """Built-in baselines: per protocol, one fail-free and one mid-run crash.

    These exist so a campaign started with an empty corpus still covers
    every protocol's happy path and simplest fault path before mutation
    takes over.
    """
    seeds: List[ScenarioGenome] = []
    for protocol in protocols:
        base = ScenarioGenome(
            protocol=protocol,
            n_nodes=3,
            n_keys=120,
            replication_degree=2,
            clients_per_node=3,
            seed=1,
            duration_us=20_000.0,
            drain_us=25_000.0,
        )
        seeds.append(base.normalize())
        seeds.append(
            dc_replace(
                base, fault_specs=("crash node=1 at=5000 for=3000",)
            ).normalize()
        )
    return seeds


def _reproduces(category: str) -> Callable[[ScenarioGenome], bool]:
    def predicate(genome: ScenarioGenome) -> bool:
        return category in score_genome(genome).failures

    return predicate


def run_search(
    settings: SearchSettings,
    log: Callable[[str], None] = lambda line: None,
) -> SearchSummary:
    settings.validate()
    rng = random.Random(settings.search_seed)
    known = set(load_known_findings(settings.known_findings_path))
    corpus = Corpus()
    summary = SearchSummary()
    seen_fingerprints: set = set()
    out_dir = Path(settings.out_dir)
    deadline = (
        time.monotonic() + settings.budget_minutes * 60.0
        if settings.budget_minutes is not None
        else None
    )

    def out_of_time() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def handle_outcome(genome: ScenarioGenome, outcome) -> None:
        reason = corpus.consider(genome, outcome)
        if reason:
            log(f"corpus[{len(corpus)}] +{reason}: {genome.describe()}")
        for category in outcome.failures:
            fingerprint = finding_fingerprint(genome, category)
            if fingerprint in seen_fingerprints:
                continue
            seen_fingerprints.add(fingerprint)
            log(f"FINDING {fingerprint}: minimizing ...")
            try:
                minimized, evaluations = minimize_genome(
                    genome, _reproduces(category), budget=settings.minimize_budget
                )
            except ConfigurationError:
                # Flaky across the minimizer's re-run (should not happen for
                # deterministic genomes); keep the original as the repro.
                minimized, evaluations = genome, 0
            # The bundle's signal/detail describe the *minimized* genome —
            # what replay will actually run — not the original trigger.
            final = outcome if minimized.key() == genome.key() else score_genome(minimized)
            finding = Finding(
                fingerprint=fingerprint,
                category=category,
                detail=final.failure_detail,
                genome=genome,
                minimized=minimized,
                signal=dict(final.signal),
                known=fingerprint in known,
                minimize_evaluations=evaluations,
            )
            slug = fingerprint.replace(":", "-").replace("/", "-")
            bundle_path = out_dir / f"bundle-{slug}.json"
            bundle_path.parent.mkdir(parents=True, exist_ok=True)
            bundle_path.write_text(
                json.dumps(finding.bundle(settings), indent=2, sort_keys=True) + "\n"
            )
            finding.bundle_path = bundle_path
            summary.findings.append(finding)
            status = "known" if finding.known else "NEW"
            log(f"FINDING {fingerprint} [{status}] -> {bundle_path}")

    # ------------------------------------------------------------------
    # Seed phase
    # ------------------------------------------------------------------
    seeds = [
        genome
        for genome in load_corpus_dirs(settings.corpus_dirs)
        if genome.protocol in settings.protocols
    ]
    if not seeds:
        seeds = default_seeds(settings.protocols)
    seeds = seeds[: settings.max_seed_evals]
    log(f"seed phase: {len(seeds)} genomes")
    for genome in seeds:
        if out_of_time():
            break
        try:
            genome.validate()
        except ConfigurationError as exc:
            log(f"seed rejected: {exc}")
            continue
        outcome = score_genome(genome)
        summary.seed_runs += 1
        summary.runs += 1
        handle_outcome(genome, outcome)

    # ------------------------------------------------------------------
    # Mutation loop
    # ------------------------------------------------------------------
    if not corpus.entries:
        # Every seed failed validation — nothing to mutate from.
        summary.corpus_size = 0
        summary.coverage_atoms = 0
        _write_summary(summary, out_dir)
        return summary

    mutation_runs = 0
    while True:
        if settings.budget_runs is not None and mutation_runs >= settings.budget_runs:
            break
        if out_of_time():
            break
        parent = rng.choice(corpus.entries).genome
        try:
            mutator_name, mutant = mutate(parent, rng)
        except ConfigurationError:
            continue
        if mutant.protocol not in settings.protocols:
            mutant = dc_replace(mutant, protocol=parent.protocol)
            if mutant.key() == parent.key():
                continue
        outcome = score_genome(mutant)
        mutation_runs += 1
        summary.runs += 1
        summary.mutator_counts[mutator_name] = summary.mutator_counts.get(mutator_name, 0) + 1
        handle_outcome(mutant, outcome)

    summary.corpus_size = len(corpus)
    summary.coverage_atoms = len(corpus.covered_atoms())
    if settings.save_corpus is not None:
        corpus.save(Path(settings.save_corpus))
        log(f"saved {len(corpus)} corpus genomes to {settings.save_corpus}")
    _write_summary(summary, out_dir)
    log(
        f"done: {summary.runs} runs, corpus {summary.corpus_size}, "
        f"{summary.coverage_atoms} atoms, {len(summary.findings)} findings "
        f"({len(summary.new_findings)} new)"
    )
    return summary


def _write_summary(summary: SearchSummary, out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "search-summary.json").write_text(
        json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n"
    )
