"""Coverage-driven corpus of interesting genomes.

The corpus is the searcher's memory: a genome earns a place by reaching a
coverage atom no retained genome has reached (``new coverage``) or by
producing a strictly higher severity score for an atom it shares with the
current best (``raised signal``).  Everything else is discarded — the
corpus stays small, and mutation energy concentrates on scenarios that
demonstrably exercise distinct protocol behavior.

On disk a corpus is a directory of ``*.genome.json`` files (one canonical
genome each) — small enough to commit (``benchmarks/search_corpus/``) and
to cache between nightly CI runs (``.github/search-corpus/``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.harness.scenario import ScenarioOutcome
from repro.search.genome import ScenarioGenome


@dataclass
class CorpusEntry:
    genome: ScenarioGenome
    coverage: Tuple[str, ...]
    score: float


@dataclass
class Corpus:
    """In-memory corpus with per-atom best-score bookkeeping."""

    entries: List[CorpusEntry] = field(default_factory=list)
    best_score_by_atom: Dict[str, float] = field(default_factory=dict)
    _keys: set = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.entries)

    def covered_atoms(self) -> Tuple[str, ...]:
        return tuple(sorted(self.best_score_by_atom))

    def consider(self, genome: ScenarioGenome, outcome: ScenarioOutcome) -> Optional[str]:
        """Admit ``genome`` if it is interesting; returns the reason or None.

        Reasons: ``"new-coverage"`` (at least one unseen atom) or
        ``"raised-signal"`` (a strictly better severity score on a known
        atom).  Either way the per-atom score table is updated, so later
        candidates are judged against the new high-water mark.
        """
        key = genome.key()
        if key in self._keys:
            return None
        score = outcome.score()
        new_atoms = [
            atom for atom in outcome.coverage if atom not in self.best_score_by_atom
        ]
        raised = any(
            score > self.best_score_by_atom.get(atom, float("-inf"))
            for atom in outcome.coverage
        )
        reason = None
        if new_atoms:
            reason = "new-coverage"
        elif raised:
            reason = "raised-signal"
        if reason is None:
            return None
        for atom in outcome.coverage:
            if score > self.best_score_by_atom.get(atom, float("-inf")):
                self.best_score_by_atom[atom] = score
        self.entries.append(CorpusEntry(genome=genome, coverage=outcome.coverage, score=score))
        self._keys.add(key)
        return reason

    # ------------------------------------------------------------------
    # Disk format: a directory of *.genome.json files.
    # ------------------------------------------------------------------
    @staticmethod
    def load_genomes(directory: Path) -> List[ScenarioGenome]:
        """Load every parseable genome under ``directory`` (sorted by name).

        Unparseable files are skipped with a stderr note rather than
        aborting the run: a stale corpus entry from an older grammar must
        not take down nightly CI.
        """
        import sys

        genomes: List[ScenarioGenome] = []
        if not directory.is_dir():
            return genomes
        for path in sorted(directory.glob("*.genome.json")):
            try:
                genome = ScenarioGenome.from_json(path.read_text())
                genome.validate()
                genomes.append(genome)
            except (ConfigurationError, ValueError, KeyError, TypeError) as exc:
                print(f"corpus: skipping {path.name}: {exc}", file=sys.stderr)
        return genomes

    def save(self, directory: Path, prefix: str = "g") -> List[Path]:
        """Write every entry as ``<prefix><index>-<protocol>.genome.json``."""
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for index, entry in enumerate(self.entries):
            path = directory / f"{prefix}{index:04d}-{entry.genome.protocol}.genome.json"
            path.write_text(entry.genome.to_json() + "\n")
            written.append(path)
        return written


def load_corpus_dirs(directories: Iterable[Path]) -> List[ScenarioGenome]:
    """Union of genomes from several corpus directories, deduplicated."""
    seen = set()
    genomes: List[ScenarioGenome] = []
    for directory in directories:
        for genome in Corpus.load_genomes(Path(directory)):
            key = genome.key()
            if key not in seen:
                seen.add(key)
                genomes.append(genome)
    return genomes


def dump_genome(genome: ScenarioGenome, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(genome.to_json() + "\n")


def load_known_findings(path: Optional[Path]) -> Tuple[str, ...]:
    """Read the suppression list (a JSON array of fingerprints)."""
    if path is None or not Path(path).is_file():
        return ()
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ConfigurationError(f"{path}: known-findings file must be a JSON array")
    return tuple(str(item) for item in data)
