"""Replay a minimized repro bundle: ``python -m repro.search.replay bundle.json``.

A bundle (written by :mod:`repro.search.driver`) carries the minimized
genome plus the finding it demonstrates.  Replay re-runs the genome
through the exact scoring path the searcher used and reports whether the
finding still reproduces:

* exit 0 — reproduced (the bundle's failure category fired again);
* exit 2 — did NOT reproduce (the bug may be fixed — or the replay
  environment differs);
* exit 1 — the bundle itself is unreadable.

Plain ``*.genome.json`` files (corpus entries) are accepted too; those
"reproduce" when the run fails in *any* category.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.search.driver import BUNDLE_KIND
from repro.search.genome import ScenarioGenome
from repro.search.scoring import score_genome


def replay_bundle(path: Path, out=sys.stdout) -> int:
    """Replay one bundle or genome file; returns the process exit code."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"replay: cannot read {path}: {exc}", file=sys.stderr)
        return 1

    expected_category: Optional[str] = None
    try:
        if isinstance(data, dict) and data.get("kind") == BUNDLE_KIND:
            genome = ScenarioGenome.from_dict(data["genome"])
            expected_category = data.get("category")
            print(f"bundle: {data.get('fingerprint')} ({path})", file=out)
        else:
            genome = ScenarioGenome.from_dict(data)
            print(f"genome: {path}", file=out)
    except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
        print(f"replay: malformed bundle {path}: {exc}", file=sys.stderr)
        return 1

    print(f"scenario: {genome.describe()}", file=out)
    outcome = score_genome(genome)
    for key in sorted(outcome.signal):
        print(f"  signal {key} = {outcome.signal[key]:g}", file=out)
    for line in outcome.failure_detail:
        print(f"  detail: {line}", file=out)

    if expected_category is not None:
        reproduced = expected_category in outcome.failures
        label = expected_category
    else:
        reproduced = outcome.failed
        label = "any failure"
    if reproduced:
        print(f"REPRODUCED: {label} (failures: {', '.join(outcome.failures)})", file=out)
        return 0
    print(
        f"NOT REPRODUCED: expected {label}, got "
        f"{', '.join(outcome.failures) or 'a clean run'}",
        file=out,
    )
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.search.replay",
        description="Re-run a minimized repro bundle and verify the finding.",
    )
    parser.add_argument("bundle", type=Path, nargs="+", help="bundle or genome JSON file(s)")
    arguments = parser.parse_args(argv)
    worst = 0
    for path in arguments.bundle:
        worst = max(worst, replay_bundle(path))
    return worst


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
