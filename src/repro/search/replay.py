"""Replay a minimized repro bundle: ``python -m repro.search.replay bundle.json``.

A bundle (written by :mod:`repro.search.driver`) carries the minimized
genome plus the finding it demonstrates.  Replay re-runs the genome
through the exact scoring path the searcher used and reports whether the
finding still reproduces:

* exit 0 — reproduced (the bundle's failure category fired again);
* exit 2 — did NOT reproduce (the bug may be fixed — or the replay
  environment differs);
* exit 1 — the bundle itself is unreadable.

Plain ``*.genome.json`` files (corpus entries) are accepted too; those
"reproduce" when the run fails in *any* category.

``--trace out.json`` additionally re-runs the genome with the causal
tracing plane on (every transaction sampled), writes a Perfetto-loadable
Chrome trace-event JSON next to the verdict, and prints the critical-path
summary — which wait dominated each slow or stalled transaction.  Tracing
is passive, so the reproduce verdict is identical with or without it.
With several bundles, each gets a derived path (``out-<stem>.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.search.driver import BUNDLE_KIND
from repro.search.genome import ScenarioGenome
from repro.search.scoring import score_genome


def replay_bundle(
    path: Path,
    out=sys.stdout,
    trace_path: Optional[Path] = None,
    trace_slower_than_us: Optional[float] = None,
) -> int:
    """Replay one bundle or genome file; returns the process exit code."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"replay: cannot read {path}: {exc}", file=sys.stderr)
        return 1

    expected_category: Optional[str] = None
    try:
        if isinstance(data, dict) and data.get("kind") == BUNDLE_KIND:
            genome = ScenarioGenome.from_dict(data["genome"])
            expected_category = data.get("category")
            print(f"bundle: {data.get('fingerprint')} ({path})", file=out)
        else:
            genome = ScenarioGenome.from_dict(data)
            print(f"genome: {path}", file=out)
    except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
        print(f"replay: malformed bundle {path}: {exc}", file=sys.stderr)
        return 1

    print(f"scenario: {genome.describe()}", file=out)
    trace_spec = None
    if trace_path is not None:
        from repro.trace import TraceSpec

        trace_spec = TraceSpec(path=str(trace_path), slower_than_us=trace_slower_than_us)
    outcome = score_genome(genome, trace=trace_spec)
    if outcome.trace is not None:
        from repro.trace import render_summary

        print(f"trace: {trace_path}", file=out)
        print(render_summary(outcome.trace), file=out)
    elif trace_path is not None:
        print("trace: run crashed before completion; no trace written", file=out)
    for key in sorted(outcome.signal):
        print(f"  signal {key} = {outcome.signal[key]:g}", file=out)
    for line in outcome.failure_detail:
        print(f"  detail: {line}", file=out)

    if expected_category is not None:
        reproduced = expected_category in outcome.failures
        label = expected_category
    else:
        reproduced = outcome.failed
        label = "any failure"
    if reproduced:
        print(f"REPRODUCED: {label} (failures: {', '.join(outcome.failures)})", file=out)
        return 0
    print(
        f"NOT REPRODUCED: expected {label}, got "
        f"{', '.join(outcome.failures) or 'a clean run'}",
        file=out,
    )
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.search.replay",
        description="Re-run a minimized repro bundle and verify the finding.",
    )
    parser.add_argument("bundle", type=Path, nargs="+", help="bundle or genome JSON file(s)")
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="OUT.json",
        help="also capture a Perfetto trace of the replay run and print its "
        "critical-path summary (with several bundles, each gets OUT-<stem>.json)",
    )
    parser.add_argument(
        "--trace-slower-than-us",
        type=float,
        default=None,
        metavar="US",
        help="keep only finished transactions at least this slow in the trace "
        "(unfinished ones are always kept) — the committed docs/traces/ "
        "artifacts use this to stay small",
    )
    arguments = parser.parse_args(argv)
    worst = 0
    for path in arguments.bundle:
        trace_path = arguments.trace
        if trace_path is not None and len(arguments.bundle) > 1:
            trace_path = trace_path.with_name(
                f"{trace_path.stem}-{Path(path).stem}{trace_path.suffix or '.json'}"
            )
        worst = max(
            worst,
            replay_bundle(
                path,
                trace_path=trace_path,
                trace_slower_than_us=arguments.trace_slower_than_us,
            ),
        )
    return worst


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
