"""Structure-aware genome mutations.

Every mutator takes ``(genome, rng)`` and returns a new
:class:`~repro.search.genome.ScenarioGenome` or ``None`` when it does not
apply (e.g. "remove a fault" on a fault-free genome).  Mutations operate on
*parsed plan objects* and re-serialize through the canonical ``to_spec``
path, so by construction a mutant's plan strings are always accepted by the
real DSL parsers — the searcher can never drift into a private dialect the
replay CLI would reject.  ``tests/unit/test_search_mutators.py`` pins this:
every mutator output re-parses and validates.

:func:`mutate` is the entry point: it shuffles the mutator table with the
search RNG, applies the first mutator that yields a *valid, different*
genome, and returns ``(mutator_name, mutant)``.  All randomness flows from
the caller's ``random.Random`` — same RNG state, same mutant.
"""

from __future__ import annotations

import random
from dataclasses import replace as dc_replace
from typing import Callable, List, Optional, Tuple

from repro.common.config import (
    CrashFault,
    FaultPlan,
    PartitionFault,
    SlowLinkFault,
)
from repro.common.errors import ConfigurationError
from repro.search.genome import PROTOCOL_NAMES, ScenarioGenome
from repro.traffic.plan import (
    BurstArrivals,
    ConstArrivals,
    PiecewiseArrivals,
    PoissonArrivals,
    RampArrivals,
    TrafficPhase,
    TrafficPlan,
)

Mutator = Callable[[ScenarioGenome, random.Random], Optional[ScenarioGenome]]

#: Node-count ceiling for cluster-resize mutations: big enough to cover every
#: replication regime the paper studies, small enough that one scenario run
#: stays cheap.
MAX_NODES = 8
MAX_CLIENTS_PER_NODE = 8
MAX_TRAFFIC_PHASES = 4
MAX_FAULTS = 4


def _faults(genome: ScenarioGenome) -> List:
    return list(FaultPlan.parse(list(genome.fault_specs)).faults)


def _phases(genome: ScenarioGenome) -> List[TrafficPhase]:
    return list(TrafficPlan.parse(list(genome.traffic_specs)).phases)


def _with_faults(genome: ScenarioGenome, faults: List) -> ScenarioGenome:
    return dc_replace(
        genome, fault_specs=tuple(fault.to_spec() for fault in faults)
    )


def _with_phases(genome: ScenarioGenome, phases: List[TrafficPhase]) -> ScenarioGenome:
    phases = _repair_phase_order(phases)
    return dc_replace(
        genome, traffic_specs=tuple(phase.to_spec() for phase in phases)
    )


def _repair_phase_order(phases: List[TrafficPhase]) -> List[TrafficPhase]:
    """Restore the plan invariants after a structural edit.

    ``until`` times must be strictly increasing and only the final phase may
    be open-ended; a retimed or inserted phase can violate either, so bump
    offending end times forward instead of rejecting the mutant.
    """
    repaired: List[TrafficPhase] = []
    previous_end = 0.0
    for index, phase in enumerate(phases):
        last = index == len(phases) - 1
        until = phase.until_us
        if until is None and not last:
            until = previous_end + 2_000.0
        if until is not None and until <= previous_end:
            until = round(previous_end + max(500.0, previous_end * 0.25), 1)
        if until is not None:
            previous_end = until
        repaired.append(dc_replace(phase, until_us=until))
    return repaired


def _jitter(rng: random.Random, value: float, low: float = 0.4, high: float = 2.2) -> float:
    return value * rng.uniform(low, high)


# ----------------------------------------------------------------------
# Fault-plane mutators
# ----------------------------------------------------------------------
def perturb_fault_timing(genome: ScenarioGenome, rng: random.Random):
    faults = _faults(genome)
    if not faults:
        return None
    index = rng.randrange(len(faults))
    fault = faults[index]
    if rng.random() < 0.5 or getattr(fault, "duration_us", None) is None:
        at = max(0.0, min(_jitter(rng, fault.at_us or 250.0), genome.duration_us * 0.95))
        faults[index] = dc_replace(fault, at_us=round(at, 1))
    else:
        duration = max(50.0, _jitter(rng, fault.duration_us))
        faults[index] = dc_replace(fault, duration_us=round(duration, 1))
    return _with_faults(genome, faults)


def move_fault_target(genome: ScenarioGenome, rng: random.Random):
    faults = _faults(genome)
    if not faults or genome.n_nodes < 2:
        return None
    index = rng.randrange(len(faults))
    fault = faults[index]
    nodes = list(range(genome.n_nodes))
    if isinstance(fault, CrashFault):
        faults[index] = dc_replace(fault, node=rng.choice(nodes))
    elif isinstance(fault, SlowLinkFault):
        src = rng.choice(nodes)
        dst = rng.choice([node for node in nodes if node != src])
        faults[index] = dc_replace(fault, src=src, dst=dst)
    else:  # PartitionFault: re-split the cluster into two random groups
        rng.shuffle(nodes)
        cut = rng.randrange(1, len(nodes))
        groups = (tuple(sorted(nodes[:cut])), tuple(sorted(nodes[cut:])))
        faults[index] = dc_replace(fault, groups=groups)
    return _with_faults(genome, faults)


def add_fault(genome: ScenarioGenome, rng: random.Random):
    faults = _faults(genome)
    if len(faults) >= MAX_FAULTS:
        return None
    at = round(rng.uniform(0.05, 0.7) * genome.duration_us, 1)
    duration = round(rng.uniform(0.05, 0.4) * genome.duration_us, 1)
    kind = rng.choice(("crash", "crash", "partition", "slowlink"))
    if kind == "crash":
        fault = CrashFault(
            node=rng.randrange(genome.n_nodes),
            at_us=at,
            duration_us=None if rng.random() < 0.15 else duration,
        )
    elif kind == "partition" and genome.n_nodes >= 2:
        nodes = list(range(genome.n_nodes))
        rng.shuffle(nodes)
        cut = rng.randrange(1, len(nodes))
        fault = PartitionFault(
            groups=(tuple(sorted(nodes[:cut])), tuple(sorted(nodes[cut:]))),
            at_us=at,
            duration_us=duration,
            mode=rng.choice(("buffer", "buffer", "drop")),
        )
    elif kind == "slowlink" and genome.n_nodes >= 2:
        src = rng.randrange(genome.n_nodes)
        dst = rng.choice([node for node in range(genome.n_nodes) if node != src])
        fault = SlowLinkFault(
            src=src,
            dst=dst,
            at_us=at,
            duration_us=duration,
            factor=rng.choice((2.0, 4.0, 8.0)),
            extra_us=rng.choice((0.0, 200.0, 1000.0)),
        )
    else:
        return None
    faults.append(fault)
    return _with_faults(genome, faults)


def remove_fault(genome: ScenarioGenome, rng: random.Random):
    faults = _faults(genome)
    if not faults:
        return None
    del faults[rng.randrange(len(faults))]
    return _with_faults(genome, faults)


# ----------------------------------------------------------------------
# Traffic-plane mutators
# ----------------------------------------------------------------------
def _random_arrival(rng: random.Random, duration_us: float):
    rate = rng.choice((500.0, 1000.0, 2000.0, 4000.0, 8000.0))
    kind = rng.choice(("const", "poisson", "poisson", "burst", "ramp"))
    if kind == "const":
        return ConstArrivals(rate_tps=rate)
    if kind == "poisson":
        return PoissonArrivals(rate_tps=rate)
    if kind == "burst":
        every = round(rng.uniform(0.1, 0.4) * duration_us, 1)
        return BurstArrivals(
            base_tps=rate / 4.0,
            peak_tps=rate * 2.0,
            every_us=every,
            for_us=round(every * rng.uniform(0.2, 0.6), 1),
        )
    return RampArrivals(
        start_tps=rate / 4.0,
        end_tps=rate,
        over_us=round(rng.uniform(0.3, 0.9) * duration_us, 1),
    )


def perturb_traffic_rate(genome: ScenarioGenome, rng: random.Random):
    phases = _phases(genome)
    if not phases:
        return None
    index = rng.randrange(len(phases))
    phase = phases[index]
    arrival = phase.arrival
    if isinstance(arrival, (ConstArrivals, PoissonArrivals)):
        arrival = dc_replace(arrival, rate_tps=round(_jitter(rng, arrival.rate_tps), 1))
    elif isinstance(arrival, BurstArrivals):
        scale = rng.uniform(0.5, 2.0)
        arrival = dc_replace(
            arrival,
            base_tps=round(arrival.base_tps * scale, 1),
            peak_tps=round(arrival.peak_tps * scale, 1),
        )
    elif isinstance(arrival, RampArrivals):
        arrival = dc_replace(arrival, end_tps=round(_jitter(rng, arrival.end_tps), 1))
    elif isinstance(arrival, PiecewiseArrivals):
        scale = rng.uniform(0.5, 2.0)
        arrival = dc_replace(
            arrival,
            pieces=tuple(
                (duration, round(rate0 * scale, 1), round(rate1 * scale, 1))
                for duration, rate0, rate1 in arrival.pieces
            ),
        )
    phases[index] = dc_replace(phase, arrival=arrival)
    return _with_phases(genome, phases)


def retime_traffic_phase(genome: ScenarioGenome, rng: random.Random):
    phases = _phases(genome)
    if not phases:
        return None
    index = rng.randrange(len(phases))
    phase = phases[index]
    until = phase.until_us or genome.duration_us * 0.5
    phases[index] = dc_replace(
        phase, until_us=round(max(100.0, _jitter(rng, until)), 1)
    )
    return _with_phases(genome, phases)


def add_traffic_phase(genome: ScenarioGenome, rng: random.Random):
    phases = _phases(genome)
    if len(phases) >= MAX_TRAFFIC_PHASES:
        return None
    until = round(rng.uniform(0.2, 0.9) * genome.duration_us, 1)
    phase = TrafficPhase(arrival=_random_arrival(rng, genome.duration_us), until_us=until)
    phases.insert(rng.randrange(len(phases) + 1), phase)
    return _with_phases(genome, phases)


def remove_traffic_phase(genome: ScenarioGenome, rng: random.Random):
    phases = _phases(genome)
    if not phases:
        return None
    del phases[rng.randrange(len(phases))]
    mutant = _with_phases(genome, phases)
    if not phases and genome.clients_per_node == 0:
        # Dropping the last phase of an open-loop genome must not leave it
        # loadless; fall back to closed-loop clients.
        mutant = dc_replace(mutant, clients_per_node=3)
    return mutant


def shift_phase_mix(genome: ScenarioGenome, rng: random.Random):
    phases = _phases(genome)
    if not phases:
        return None
    index = rng.randrange(len(phases))
    phase = phases[index]
    overrides = dict(phase.overrides)
    choice = rng.choice(("read_only", "zipf", "dist", "ro_keys", "update_keys"))
    if choice == "read_only":
        overrides[choice] = round(rng.uniform(0.0, 1.0), 2)
    elif choice == "zipf":
        overrides[choice] = rng.choice((0.5, 0.7, 0.9, 0.99))
    elif choice == "dist":
        overrides[choice] = rng.choice(("uniform", "zipfian"))
    else:
        overrides[choice] = rng.choice((1, 2, 3, 4))
    phases[index] = dc_replace(phase, overrides=tuple(sorted(overrides.items())))
    return _with_phases(genome, phases)


# ----------------------------------------------------------------------
# Workload / cluster / run mutators
# ----------------------------------------------------------------------
def shift_workload(genome: ScenarioGenome, rng: random.Random):
    choice = rng.choice(
        ("read_only_fraction", "zipf", "locality", "update_txn_keys", "read_only_txn_keys")
    )
    if choice == "read_only_fraction":
        return dc_replace(genome, read_only_fraction=round(rng.uniform(0.0, 1.0), 2))
    if choice == "zipf":
        return dc_replace(
            genome,
            key_distribution="zipfian",
            zipf_theta=rng.choice((0.5, 0.7, 0.9, 0.99)),
        )
    if choice == "locality":
        return dc_replace(genome, locality_fraction=rng.choice((0.0, 0.5, 0.9, 1.0)))
    return dc_replace(genome, **{choice: rng.choice((1, 2, 3, 4))})


def resize_cluster(genome: ScenarioGenome, rng: random.Random):
    choice = rng.choice(("n_nodes", "replication", "clients", "n_keys"))
    if choice == "n_nodes":
        n_nodes = max(2, min(MAX_NODES, genome.n_nodes + rng.choice((-1, 1, 2))))
        mutant = dc_replace(genome, n_nodes=n_nodes)
        if mutant.replication_degree > n_nodes:
            mutant = dc_replace(mutant, replication_degree=n_nodes)
        # Node-targeted faults may now point past the cluster; retarget them.
        if any(node >= n_nodes for node in _named_nodes(mutant)):
            return None
        return mutant
    if choice == "replication":
        return dc_replace(
            genome, replication_degree=rng.randint(1, genome.n_nodes)
        )
    if choice == "clients":
        clients = rng.randint(0 if genome.traffic_specs else 1, MAX_CLIENTS_PER_NODE)
        return dc_replace(genome, clients_per_node=clients)
    return dc_replace(genome, n_keys=rng.choice((4, 16, 60, 120, 500, 2000)))


def _named_nodes(genome: ScenarioGenome):
    for fault in _faults(genome):
        if isinstance(fault, CrashFault):
            yield fault.node
        elif isinstance(fault, SlowLinkFault):
            yield fault.src
            yield fault.dst
        else:
            for group in fault.groups:
                yield from group


def reseed(genome: ScenarioGenome, rng: random.Random):
    return dc_replace(genome, seed=rng.randrange(1, 1_000_000))


def switch_protocol(genome: ScenarioGenome, rng: random.Random):
    others = [name for name in PROTOCOL_NAMES if name != genome.protocol]
    return dc_replace(genome, protocol=rng.choice(others))


def retime_run(genome: ScenarioGenome, rng: random.Random):
    duration = max(5_000.0, min(60_000.0, _jitter(rng, genome.duration_us, 0.6, 1.8)))
    return dc_replace(genome, duration_us=round(duration, 1))


#: Name -> mutator, in a stable order (iteration order feeds the RNG shuffle,
#: so reordering this table changes search trajectories).
MUTATORS: Tuple[Tuple[str, Mutator], ...] = (
    ("perturb_fault_timing", perturb_fault_timing),
    ("move_fault_target", move_fault_target),
    ("add_fault", add_fault),
    ("remove_fault", remove_fault),
    ("perturb_traffic_rate", perturb_traffic_rate),
    ("retime_traffic_phase", retime_traffic_phase),
    ("add_traffic_phase", add_traffic_phase),
    ("remove_traffic_phase", remove_traffic_phase),
    ("shift_phase_mix", shift_phase_mix),
    ("shift_workload", shift_workload),
    ("resize_cluster", resize_cluster),
    ("reseed", reseed),
    ("switch_protocol", switch_protocol),
    ("retime_run", retime_run),
)


def mutate(
    genome: ScenarioGenome,
    rng: random.Random,
    attempts: int = 24,
) -> Tuple[str, ScenarioGenome]:
    """Produce one valid mutant of ``genome``; returns ``(mutator_name, mutant)``.

    Tries RNG-shuffled mutators until one yields a genome that (a) differs
    from the input and (b) passes full validation.  With the default attempt
    budget this never fails in practice — ``reseed`` alone always applies —
    but a pathological genome raises :class:`ConfigurationError` rather than
    looping forever.
    """
    table = list(MUTATORS)
    for _ in range(attempts):
        rng.shuffle(table)
        name, mutator = table[0]
        mutant = mutator(genome, rng)
        if mutant is None:
            continue
        try:
            mutant = mutant.normalize()
            mutant.validate()
        except ConfigurationError:
            continue
        if mutant.key() != genome.key():
            return name, mutant
    raise ConfigurationError(
        f"no applicable mutation found for genome after {attempts} attempts: "
        f"{genome.describe()}"
    )
