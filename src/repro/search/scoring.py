"""Run a genome through the harness and keep its outcome.

This is deliberately a thin seam between the search loop and
:func:`repro.harness.scenario.run_scenario`: the searcher, the minimizer
and the replay CLI all score genomes through this one function, so a
finding minimized by one and replayed by another is judged by identical
rules.  Determinism across processes is part of the contract
(``tests/integration/test_search_end_to_end.py`` re-scores in a subprocess
under a different ``PYTHONHASHSEED`` and asserts byte-equal signal
vectors).
"""

from __future__ import annotations

from repro.harness.scenario import ScenarioOutcome, run_scenario
from repro.search.genome import ScenarioGenome


def score_genome(genome: ScenarioGenome, trace=None) -> ScenarioOutcome:
    """Run one genome and return its signal/coverage/failure outcome.

    ``trace`` forwards to :func:`run_scenario` (replay's ``--trace`` path);
    scoring is unaffected — the trace recorder is passive, so signal and
    coverage stay byte-identical with tracing on or off.
    """
    genome.validate()
    return run_scenario(
        genome.protocol,
        genome.cluster_config(),
        genome.workload_config(),
        duration_us=genome.duration_us,
        drain_us=genome.drain_us,
        trace=trace,
    )


def finding_fingerprint(genome: ScenarioGenome, category: str) -> str:
    """Dedup key for a finding: the protocol and what went wrong.

    Deliberately coarse — "sss stalls" is one finding however many genomes
    trigger it — so nightly CI can fail only on *new* fingerprints while a
    known issue is being worked on (``known_findings.json``).
    """
    return f"{genome.protocol}:{category}"
