"""Coverage-guided scenario search over the fault x traffic product space.

The four protocol reproductions share one scenario language — a
:class:`~repro.common.config.ClusterConfig` with a declarative
:class:`~repro.common.config.FaultPlan` and
:class:`~repro.traffic.plan.TrafficPlan` — and the harness can already
judge any single run (contract checks, stall detection, quiescence
audits; :mod:`repro.harness.scenario`).  This package closes the loop: it
*searches* that scenario space the way a fuzzer searches an input space.

* :mod:`repro.search.genome` — :class:`ScenarioGenome`, the serializable
  unit of search: protocol + cluster knobs + fault/traffic plan strings.
* :mod:`repro.search.mutators` — structure-aware mutations that always
  produce genomes the real DSL parsers accept.
* :mod:`repro.search.scoring` — run a genome through the harness and keep
  its :class:`~repro.harness.scenario.ScenarioOutcome`.
* :mod:`repro.search.corpus` — retain genomes that add coverage atoms or
  raise the severity score for an atom they already cover.
* :mod:`repro.search.minimize` — ddmin over plan phases plus field-level
  shrinking, turning a failing genome into a minimal repro.
* :mod:`repro.search.driver` — the deterministic search loop and repro
  bundle writer behind ``python -m repro.search``.
* :mod:`repro.search.replay` — ``python -m repro.search.replay
  bundle.json`` re-runs a minimized bundle and verifies the finding.

Everything is deterministic given ``--search-seed``: genomes carry their
simulation seeds, the driver's randomness comes from one
``random.Random``, and scoring never consults wall-clock state.
"""

from repro.search.corpus import Corpus, CorpusEntry
from repro.search.genome import ScenarioGenome
from repro.search.minimize import minimize_genome
from repro.search.mutators import MUTATORS, mutate
from repro.search.scoring import score_genome

__all__ = [
    "Corpus",
    "CorpusEntry",
    "MUTATORS",
    "ScenarioGenome",
    "minimize_genome",
    "mutate",
    "score_genome",
]
