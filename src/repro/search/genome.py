"""The unit of scenario search: a serializable (protocol, config, plans) tuple.

A :class:`ScenarioGenome` is everything needed to reproduce one scenario
run bit-for-bit: the protocol under test, the cluster shape, the workload
mix, the simulation seed, the run window, and the fault/traffic plans *as
canonical DSL strings*.  Keeping the plans as strings (rather than parsed
objects) makes genomes trivially JSON-serializable, diffable in repro
bundles, and guarantees the searcher can only express scenarios the real
parsers accept — a genome that does not parse is rejected at construction,
not at run time.

Canonicalization matters for corpus dedup: ``normalize()`` round-trips
every plan spec through parse -> ``to_spec`` so that two genomes meaning
the same scenario compare equal regardless of how their specs were
spelled (``"crash node=1 at=3ms"`` vs ``"crash  at=3000 node=1"``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.common.config import ClusterConfig, FaultPlan, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.traffic.plan import TrafficPlan

PROTOCOL_NAMES = ("sss", "2pc", "rococo", "walter")

#: Workload knobs carried by a genome, in serialization order.
WORKLOAD_FIELDS = (
    "read_only_fraction",
    "update_txn_keys",
    "read_only_txn_keys",
    "key_distribution",
    "zipf_theta",
    "locality_fraction",
)


@dataclass(frozen=True)
class ScenarioGenome:
    """One point in scenario space, canonical and JSON-round-trippable."""

    protocol: str = "sss"
    n_nodes: int = 3
    n_keys: int = 120
    replication_degree: int = 2
    clients_per_node: int = 3
    seed: int = 1
    duration_us: float = 20_000.0
    drain_us: float = 25_000.0
    read_only_fraction: float = 0.5
    update_txn_keys: int = 2
    read_only_txn_keys: int = 2
    key_distribution: str = "uniform"
    zipf_theta: float = 0.7
    locality_fraction: float = 0.0
    fault_specs: Tuple[str, ...] = ()
    traffic_specs: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def cluster_config(self) -> ClusterConfig:
        """Materialize the genome's :class:`ClusterConfig` (validated)."""
        return ClusterConfig(
            n_nodes=self.n_nodes,
            n_keys=self.n_keys,
            replication_degree=self.replication_degree,
            clients_per_node=self.clients_per_node,
            seed=self.seed,
            faults=FaultPlan.parse(list(self.fault_specs)),
            traffic=TrafficPlan.parse(list(self.traffic_specs)),
        )

    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(
            read_only_fraction=self.read_only_fraction,
            update_txn_keys=self.update_txn_keys,
            read_only_txn_keys=self.read_only_txn_keys,
            key_distribution=self.key_distribution,
            zipf_theta=self.zipf_theta,
            locality_fraction=self.locality_fraction,
        )

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the genome is not runnable."""
        if self.protocol not in PROTOCOL_NAMES:
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.duration_us <= 0:
            raise ConfigurationError("duration_us must be > 0")
        if self.drain_us < 0:
            raise ConfigurationError("drain_us must be >= 0")
        if self.clients_per_node == 0 and not self.traffic_specs:
            raise ConfigurationError(
                "genome drives no load: clients_per_node=0 and no traffic plan"
            )
        config = self.cluster_config()
        config.validate()
        self.workload_config().validate()

    def normalize(self) -> "ScenarioGenome":
        """Canonical form: every plan spec re-serialized via ``to_spec``.

        Relies on the parse/serialize round-trip contract pinned by
        ``tests/property/test_plan_roundtrip.py`` — two genomes describing
        the same scenario normalize to equal objects, which is what corpus
        dedup keys on.
        """
        faults = FaultPlan.parse(list(self.fault_specs))
        traffic = TrafficPlan.parse(list(self.traffic_specs))
        return replace(
            self,
            duration_us=float(self.duration_us),
            drain_us=float(self.drain_us),
            fault_specs=tuple(faults.specs()),
            traffic_specs=tuple(traffic.specs()),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "n_keys": self.n_keys,
            "replication_degree": self.replication_degree,
            "clients_per_node": self.clients_per_node,
            "seed": self.seed,
            "duration_us": self.duration_us,
            "drain_us": self.drain_us,
            "workload": {name: getattr(self, name) for name in WORKLOAD_FIELDS},
            "faults": list(self.fault_specs),
            "traffic": list(self.traffic_specs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioGenome":
        workload = dict(data.get("workload", {}))
        fields: Dict[str, object] = {
            name: workload[name] for name in WORKLOAD_FIELDS if name in workload
        }
        for name in (
            "protocol",
            "n_nodes",
            "n_keys",
            "replication_degree",
            "clients_per_node",
            "seed",
            "duration_us",
            "drain_us",
        ):
            if name in data:
                fields[name] = data[name]
        fields["fault_specs"] = tuple(data.get("faults", ()))
        fields["traffic_specs"] = tuple(data.get("traffic", ()))
        return cls(**fields).normalize()

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioGenome":
        return cls.from_dict(json.loads(text))

    def key(self) -> str:
        """Stable dedup key (canonical JSON of the normalized genome)."""
        return json.dumps(self.normalize().to_dict(), sort_keys=True)

    def describe(self) -> str:
        parts = [
            f"{self.protocol} n={self.n_nodes} rf={self.replication_degree}",
            f"keys={self.n_keys} clients={self.clients_per_node} seed={self.seed}",
            f"dur={self.duration_us:g}us",
        ]
        if self.fault_specs:
            parts.append("faults=[" + "; ".join(self.fault_specs) + "]")
        if self.traffic_specs:
            parts.append("traffic=[" + "; ".join(self.traffic_specs) + "]")
        return " ".join(parts)
