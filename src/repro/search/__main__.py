"""Entry point for ``python -m repro.search``."""

import sys

from repro.search.cli import main

sys.exit(main())
