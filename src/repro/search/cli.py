"""Command-line front end: ``python -m repro.search``.

Examples::

    # PR smoke: tiny deterministic campaign, never fails the build
    python -m repro.search --budget-runs 12 --search-seed 7 --no-fail-on-new

    # Nightly: seed from the committed corpus, run for 20 minutes, fail
    # only on findings not listed in known_findings.json
    python -m repro.search --budget-minutes 20 --search-seed 1 \\
        --corpus benchmarks/search_corpus --corpus .github/search-corpus \\
        --known benchmarks/search_corpus/known_findings.json \\
        --out search-out --save-corpus .github/search-corpus

Exit codes: 0 — no new findings (known ones may still have produced
bundles); 1 — at least one NEW finding (suppress by triaging it into the
known-findings file); 2 — configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.search.driver import SearchSettings, run_search
from repro.search.genome import PROTOCOL_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.search",
        description="Coverage-guided scenario search over the fault x traffic space.",
    )
    parser.add_argument(
        "--protocols",
        default=",".join(PROTOCOL_NAMES),
        help="comma-separated protocols to search (default: all)",
    )
    parser.add_argument(
        "--budget-runs",
        type=int,
        default=None,
        help="stop after N mutation-loop runs (deterministic budget)",
    )
    parser.add_argument(
        "--budget-minutes",
        type=float,
        default=None,
        help="stop after N wall-clock minutes (CI time box)",
    )
    parser.add_argument(
        "--search-seed", type=int, default=0, help="RNG seed for the campaign"
    )
    parser.add_argument(
        "--corpus",
        action="append",
        type=Path,
        default=[],
        help="corpus directory of *.genome.json seeds (repeatable)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("search-out"),
        help="output directory for bundles and search-summary.json",
    )
    parser.add_argument(
        "--known",
        type=Path,
        default=None,
        help="JSON array of triaged finding fingerprints to tolerate",
    )
    parser.add_argument(
        "--minimize-budget",
        type=int,
        default=120,
        help="max scenario runs the minimizer may spend per finding",
    )
    parser.add_argument(
        "--save-corpus",
        type=Path,
        default=None,
        help="persist the evolved corpus to this directory at the end",
    )
    parser.add_argument(
        "--max-seed-evals",
        type=int,
        default=48,
        help="cap on corpus genomes evaluated during the seed phase",
    )
    parser.add_argument(
        "--no-fail-on-new",
        action="store_true",
        help="exit 0 even when new findings appear (PR smoke mode)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    settings = SearchSettings(
        protocols=tuple(
            name.strip() for name in arguments.protocols.split(",") if name.strip()
        ),
        budget_runs=arguments.budget_runs,
        budget_minutes=arguments.budget_minutes,
        search_seed=arguments.search_seed,
        corpus_dirs=tuple(arguments.corpus),
        out_dir=arguments.out,
        known_findings_path=arguments.known,
        minimize_budget=arguments.minimize_budget,
        max_seed_evals=arguments.max_seed_evals,
        save_corpus=arguments.save_corpus,
    )
    try:
        summary = run_search(settings, log=lambda line: print(line, flush=True))
    except ConfigurationError as exc:
        print(f"search: {exc}", file=sys.stderr)
        return 2
    if summary.new_findings and not arguments.no_fail_on_new:
        print(
            "search: NEW findings: "
            + ", ".join(finding.fingerprint for finding in summary.new_findings),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
