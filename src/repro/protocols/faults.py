"""Binding a declarative :class:`~repro.common.config.FaultPlan` to a cluster.

The plan lives in the configuration (so it is validated, pickled and
replayed like every other experiment knob); this module translates it into
scripted engine events at cluster-construction time:

* a :class:`~repro.common.config.CrashFault` becomes ``node.crash()`` /
  ``node.restart()`` calls on the targeted
  :class:`~repro.protocols.runtime.ProtocolRuntime`;
* a :class:`~repro.common.config.PartitionFault` becomes
  ``network.partition(...)`` / ``network.heal_partition()`` calls;
* a :class:`~repro.common.config.SlowLinkFault` becomes
  ``network.degrade_link(...)`` / ``network.restore_link(...)`` calls.

Installing a non-empty plan also arms *fault mode* on every node, which
activates the crash-epoch guard on handler processes.  An empty plan
installs nothing at all — fail-free runs take none of these code paths and
their histories stay byte-identical.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional

from repro.common.config import (
    CrashFault,
    FaultPlan,
    PartitionFault,
    SlowLinkFault,
)
from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.cluster import ProtocolCluster


def _as_unit(sim, unit: int, func):
    """Wrap ``func`` so its scheduling is charged to node ``unit``.

    Fault events execute under the engine's control unit; a crash/restart
    callback's effects (recovery processes, timers) belong to the target
    node, and charging them to its unit keeps the node's event keys
    identical whether the fault runs on the serial engine or on the shard
    owning the node.
    """

    def run():
        prev = sim.set_unit(unit)
        try:
            func()
        finally:
            sim.set_unit(prev)

    return run


def install_fault_plan(cluster: "ProtocolCluster", plan: Optional[FaultPlan]) -> None:
    """Schedule ``plan``'s events on ``cluster``'s engine (no-op when empty).

    On a shard owning a subset of the cluster, crash/restart events for
    non-owned nodes install *mirrors* that update only the shared network
    state (the crashed-set), so every shard agrees on message drops while
    the owning shard alone runs the node's real crash/restart logic.  All
    shards install the full plan, which keeps the engine's control-unit
    event keys and ``fault_log`` identical everywhere.
    """
    if plan is None or not plan.faults:
        return
    sim = cluster.sim
    network = cluster.network
    nodes = cluster.nodes
    for node in cluster.local_nodes:
        node.enable_fault_mode()
    for fault in plan.faults:
        if isinstance(fault, CrashFault):
            node = nodes[fault.node]
            if node is not None:
                crash_cb = _as_unit(sim, fault.node, node.crash)
                restart_cb = _as_unit(sim, fault.node, node.restart)
            else:
                crash_cb = partial(network.crash, fault.node)
                restart_cb = partial(network.recover, fault.node)
            sim.schedule_fault(fault.at_us, crash_cb, f"crash:{fault.node}")
            if fault.duration_us is not None:
                sim.schedule_fault(
                    fault.at_us + fault.duration_us,
                    restart_cb,
                    f"restart:{fault.node}",
                )
        elif isinstance(fault, PartitionFault):
            sim.schedule_fault(
                fault.at_us,
                partial(network.partition, fault.groups, mode=fault.mode),
                f"partition:{fault.mode}",
            )
            sim.schedule_fault(
                fault.at_us + fault.duration_us,
                network.heal_partition,
                "heal",
            )
        elif isinstance(fault, SlowLinkFault):
            pairs = [(fault.src, fault.dst)]
            if fault.bidirectional:
                pairs.append((fault.dst, fault.src))
            for src, dst in pairs:
                sim.schedule_fault(
                    fault.at_us,
                    partial(
                        network.degrade_link,
                        src,
                        dst,
                        factor=fault.factor,
                        extra_us=fault.extra_us,
                    ),
                    f"slowlink:{src}->{dst}",
                )
                sim.schedule_fault(
                    fault.at_us + fault.duration_us,
                    partial(network.restore_link, src, dst),
                    f"restorelink:{src}->{dst}",
                )
        else:  # pragma: no cover - parse() only builds the three kinds
            raise ConfigurationError(f"unknown fault spec {fault!r}")
