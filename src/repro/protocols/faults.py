"""Binding a declarative :class:`~repro.common.config.FaultPlan` to a cluster.

The plan lives in the configuration (so it is validated, pickled and
replayed like every other experiment knob); this module translates it into
scripted engine events at cluster-construction time:

* a :class:`~repro.common.config.CrashFault` becomes ``node.crash()`` /
  ``node.restart()`` calls on the targeted
  :class:`~repro.protocols.runtime.ProtocolRuntime`;
* a :class:`~repro.common.config.PartitionFault` becomes
  ``network.partition(...)`` / ``network.heal_partition()`` calls;
* a :class:`~repro.common.config.SlowLinkFault` becomes
  ``network.degrade_link(...)`` / ``network.restore_link(...)`` calls.

Installing a non-empty plan also arms *fault mode* on every node, which
activates the crash-epoch guard on handler processes.  An empty plan
installs nothing at all — fail-free runs take none of these code paths and
their histories stay byte-identical.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional

from repro.common.config import (
    CrashFault,
    FaultPlan,
    PartitionFault,
    SlowLinkFault,
)
from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.cluster import ProtocolCluster


def install_fault_plan(cluster: "ProtocolCluster", plan: Optional[FaultPlan]) -> None:
    """Schedule ``plan``'s events on ``cluster``'s engine (no-op when empty)."""
    if plan is None or not plan.faults:
        return
    sim = cluster.sim
    network = cluster.network
    nodes = cluster.nodes
    for node in nodes:
        node.enable_fault_mode()
    for fault in plan.faults:
        if isinstance(fault, CrashFault):
            node = nodes[fault.node]
            sim.schedule_fault(fault.at_us, node.crash, f"crash:{fault.node}")
            if fault.duration_us is not None:
                sim.schedule_fault(
                    fault.at_us + fault.duration_us,
                    node.restart,
                    f"restart:{fault.node}",
                )
        elif isinstance(fault, PartitionFault):
            sim.schedule_fault(
                fault.at_us,
                partial(network.partition, fault.groups, mode=fault.mode),
                f"partition:{fault.mode}",
            )
            sim.schedule_fault(
                fault.at_us + fault.duration_us,
                network.heal_partition,
                "heal",
            )
        elif isinstance(fault, SlowLinkFault):
            pairs = [(fault.src, fault.dst)]
            if fault.bidirectional:
                pairs.append((fault.dst, fault.src))
            for src, dst in pairs:
                sim.schedule_fault(
                    fault.at_us,
                    partial(
                        network.degrade_link,
                        src,
                        dst,
                        factor=fault.factor,
                        extra_us=fault.extra_us,
                    ),
                    f"slowlink:{src}->{dst}",
                )
                sim.schedule_fault(
                    fault.at_us + fault.duration_us,
                    partial(network.restore_link, src, dst),
                    f"restorelink:{src}->{dst}",
                )
        else:  # pragma: no cover - parse() only builds the three kinds
            raise ConfigurationError(f"unknown fault spec {fault!r}")
