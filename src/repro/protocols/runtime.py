"""The shared protocol-node runtime.

Before this layer existed, the node-lifecycle plumbing — message
registration/dispatch, the per-transaction state machine, replica fan-out
with fastest-answer selection, 2PC-style vote collection, crash-guard
timers, counters — was re-implemented four times across
:mod:`repro.core.node`, :mod:`repro.baselines.twopc`,
:mod:`repro.baselines.walter` and :mod:`repro.baselines.rococo`.
:class:`ProtocolRuntime` collapses that duplication into one base class that
every protocol node (SSS and the three competitors) extends:

* **Dispatch** — inherited from :class:`~repro.network.node.NetworkedNode`:
  the prioritized inbound queue, the dispatcher process, handler
  registration by message class, and request/response correlation.
* **Transaction state machine** — ``begin_transaction`` / ``txn_write`` /
  ``txn_abort`` plus the ``_finish_commit`` / ``_finish_abort`` outcome
  transitions shared by every coordinator, all operating on
  :class:`~repro.core.metadata.TransactionMeta` (the per-transaction state
  machine) and feeding the optional history recorder.
* **Replica fan-out** — :meth:`request_each` (one request per destination)
  and :meth:`fastest_of` (fastest-answer selection over a reply wave), the
  pattern behind every multi-replica read.
* **Vote collection** — :meth:`vote_round`: one 2PC-style prepare wave with
  a shared coarse crash-guard deadline and a :class:`VoteCollector` that
  fails fast on the first negative vote; :meth:`vote_round_retry` is its
  fault-mode counterpart, re-sending unanswered prepares on a cadence and
  declaring a participant dead after a bounded number of silent waves.
* **Fault plane** — :meth:`crash` / :meth:`restart`: a crashed node drops
  its volatile state (inbound queue, in-flight RPCs, whatever the protocol
  declares volatile via :meth:`on_crash`) and replays its durable state on
  restart via :meth:`on_restart`.  Fail-free runs never touch any of this.

Protocol subclasses implement ``txn_read`` / ``txn_commit`` / ``preload``
and register their message handlers in ``__init__``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClusterConfig
from repro.common.errors import NodeCrashedError, TransactionStateError
from repro.common.ids import NodeId, TransactionId, TxnIdGenerator
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.network.node import NetworkedNode
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.consistency.history import HistoryRecorder
    from repro.network.transport import Network
    from repro.replication.placement import KeyPlacement
    from repro.sim.engine import Simulation


class VoteCollector(Event):
    """Event firing once a 2PC-style vote round is decided.

    Replaces the wave-by-wave ``any_of(pending + [timeout])`` pattern, which
    rebuilt an :class:`AnyOf` over every still-pending vote each wave — at
    large participant counts (the cluster-size sweep) that is quadratic in
    callbacks and list scans.  The collector registers one callback per vote
    reply, fails fast on the first unsuccessful vote (any reply with a falsy
    ``success`` attribute) and fires with ``(outcome, votes)`` once the round
    is decided.  Shared by SSS and the 2PC-style baselines; SSS hands the
    collected votes' proposed commit clocks to one batched
    ``VectorClock.merge_many``.
    """

    __slots__ = ("_remaining", "_votes")

    def __init__(self, sim, vote_events):
        super().__init__(sim, name="votes")
        self._remaining = len(vote_events)
        self._votes = []
        if not vote_events:
            # An empty round is trivially successful; without this the
            # collector would never fire and the caller would idle until
            # its crash-guard deadline.
            self.succeed((True, self._votes))
            return
        for event in vote_events:
            event.add_callback(self._on_vote)

    def _on_vote(self, event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            # A failed vote reply (the coordinator node crashed mid-round):
            # propagate, so the waiting client is interrupted like any other
            # in-flight RPC of the crashed node.
            self.fail(event._exception)
            return
        vote = event._value
        if not vote.success:
            self.succeed((False, self._votes))
            return
        self._votes.append(vote)
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed((True, self._votes))


class ProtocolRuntime(NetworkedNode):
    """Common runtime of every protocol node (SSS, 2PC, Walter, ROCOCO)."""

    def __init__(
        self,
        sim: "Simulation",
        network: "Network",
        node_id: NodeId,
        placement: "KeyPlacement",
        config: ClusterConfig,
        history: Optional["HistoryRecorder"] = None,
    ):
        super().__init__(sim, network, node_id, service=config.service)
        self.placement = placement
        self.config = config
        self.history = history
        self._txn_ids = TxnIdGenerator(node_id)
        self.coordinated: Dict[TransactionId, TransactionMeta] = {}
        self.counters = defaultdict(int)

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def replicas(self, key: object) -> Tuple[NodeId, ...]:
        return self.placement.replicas(key)

    def primary(self, key: object) -> NodeId:
        return self.placement.primary(key)

    def is_replica_of(self, key: object) -> bool:
        return self.placement.is_replica(self.node_id, key)

    # ------------------------------------------------------------------
    # Session interface (the per-transaction state machine)
    # ------------------------------------------------------------------
    def begin_transaction(self, read_only: bool) -> TransactionMeta:
        """Create the metadata of a transaction coordinated by this node."""
        meta = TransactionMeta(
            txn_id=self._txn_ids.next_id(),
            coordinator=self.node_id,
            is_update=not read_only,
            n_nodes=self.config.n_nodes,
        )
        meta.begin_time = self.sim.now
        self.coordinated[meta.txn_id] = meta
        self.counters["begun"] += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.txn_begin(meta.txn_id, self.node_id)
        return meta

    def txn_write(self, meta: TransactionMeta, key: object, value: object) -> None:
        """Buffer a write (lazy update); visible only after commit."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"write after completion of {meta}")
        if meta.is_read_only:
            raise TransactionStateError(f"{meta.txn_id} was declared read-only but issued a write")
        meta.record_write(key, value)
        self.counters["client_writes"] += 1

    def txn_abort(self, meta: TransactionMeta) -> None:
        """Client-requested abort before commit (buffered writes dropped)."""
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"abort after completion of {meta}")
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = "client-abort"
        meta.abort_time = self.sim.now
        self.counters["client_aborts"] += 1

    def txn_read(self, meta: TransactionMeta, key: object):  # pragma: no cover
        raise NotImplementedError

    def txn_commit(self, meta: TransactionMeta):  # pragma: no cover
        raise NotImplementedError

    def preload(self, keys, initial_value=0) -> None:  # pragma: no cover
        """Install the initial key space; overridden by each protocol."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Outcome transitions shared by every coordinator
    # ------------------------------------------------------------------
    def _finish_commit(self, meta: TransactionMeta, counter: str) -> bool:
        meta.phase = TransactionPhase.EXTERNALLY_COMMITTED
        meta.external_commit_time = self.sim.now
        if meta.commit_vc is None:
            meta.commit_vc = meta.vc
        self.counters[counter] += 1
        if self.history is not None:
            self.history.record_commit(meta)
        if self.sim.tracer is not None:
            self._trace_txn_end(meta, "commit")
        return True

    def _finish_abort(self, meta: TransactionMeta, reason: str, counter: str = "aborts") -> bool:
        meta.phase = TransactionPhase.ABORTED
        meta.abort_reason = reason
        meta.abort_time = self.sim.now
        self.counters[counter] += 1
        if self.history is not None:
            self.history.record_abort(meta)
        if self.sim.tracer is not None:
            self._trace_txn_end(meta, f"abort:{reason}")
        return False

    def _trace_txn_end(self, meta: TransactionMeta, outcome: str) -> None:
        """Record the transaction's end plus its phase timeline (trace plane).

        Phases are derived post hoc from the metadata timestamps so no
        per-phase bookkeeping runs when tracing is off: execute =
        [begin, prepare), prepare = [prepare, internal commit), precommit =
        [internal commit, end].  Timestamps a protocol never sets (2PC has
        no separate internal-commit point, read-only transactions skip
        prepare) simply merge into the preceding phase.
        """
        tracer = self.sim.tracer
        if tracer is None or not tracer.wants(meta.txn_id):
            return
        begin = meta.begin_time
        end = self.sim.now
        cuts = [("phase.execute", begin)]
        prepare = meta.prepare_time
        if prepare is not None and prepare >= begin:
            cuts.append(("phase.prepare", prepare))
        internal = meta.internal_commit_time
        if internal is not None and internal >= cuts[-1][1]:
            cuts.append(("phase.precommit", internal))
        phases = []
        for index, (name, start) in enumerate(cuts):
            stop = cuts[index + 1][1] if index + 1 < len(cuts) else end
            if stop > start:
                phases.append((name, start, stop))
        tracer.txn_end(meta.txn_id, outcome, begin, phases)

    # ------------------------------------------------------------------
    # Replica fan-out and vote collection
    # ------------------------------------------------------------------
    def request_each(self, destinations, make_message) -> List[Event]:
        """Send ``make_message(destination)`` to each destination.

        Returns the reply events in destination order.  ``make_message`` must
        build a fresh message per call (the transport mutates the instance).
        """
        request = self.request
        return [
            request(destination, make_message(destination))
            for destination in destinations
        ]

    def fastest_of(self, events: Sequence[Event]):
        """Process generator: wait for the first reply among ``events``.

        Returns the winning reply message.  With a single event this is a
        plain await (no ``AnyOf`` allocation), which keeps the common
        replication-degree-1 path on the engine's fast path.
        """
        if len(events) == 1:
            reply = yield events[0]
            return reply
        yield self.sim.any_of(events)
        return next(event.value for event in events if event.triggered)

    def _traced_round(self, inner, tracer, txn_id: TransactionId, name: str):
        """Wrap an RPC-round generator with an ``rpc.<name>`` trace span.

        Only instantiated when tracing is on *and* the caller attributed the
        round to a transaction — the untraced path returns the inner
        generator directly, adding no delegation frame.
        """
        start = self.sim.now
        result = yield from inner
        tracer.span(name, start, txn=txn_id)
        return result

    def fastest_round(self, destinations, make_message, trace_txn=None, trace_name="read"):
        """RPC-round generator: fastest-answer fan-out with fault-mode retries.

        Sends ``make_message(destination)`` to every destination and returns
        ``(reply, events)`` — the fastest answer plus the reply events of the
        wave that produced it (callers inspect the losing events for
        cleanup).  Fail-free this is exactly ``request_each`` +
        :meth:`fastest_of`, allocation for allocation.  In fault mode a wave
        left unanswered for ``crash_resubscribe_us`` — every contacted
        replica crashed, the rf=1 read-wave stall — is re-sent until some
        replica answers after its restart; read handlers are naturally
        idempotent, and a crash of *this* node fails the wave's events and
        propagates to the waiting client like any in-flight RPC.

        ``trace_txn`` attributes the round to a transaction's trace as an
        ``rpc.<trace_name>`` span (no effect when tracing is off); the same
        pair works on every round helper below.
        """
        inner = self._fastest_round(destinations, make_message)
        tracer = self.sim.tracer
        if tracer is None or trace_txn is None:
            return inner
        return self._traced_round(inner, tracer, trace_txn, f"rpc.{trace_name}")

    def _fastest_round(self, destinations, make_message):
        destinations = list(destinations)
        if not self._fault_mode:
            events = self.request_each(destinations, make_message)
            reply = yield from self.fastest_of(events)
            return reply, events
        retry_us = self.config.timeouts.crash_resubscribe_us
        while True:
            messages = [make_message(destination) for destination in destinations]
            events = [
                self.request(destination, message)
                for destination, message in zip(destinations, messages)
            ]
            target = events[0] if len(events) == 1 else self.sim.any_of(events)
            yield self.sim.any_of([target, self.sim.timeout(retry_us)])
            for event in events:
                if event.triggered and event.ok:
                    return event.value, events
            # Unanswered wave: retire the stale correlation entries (late
            # replies are dropped as stale) and re-send.
            for message in messages:
                self._pending_replies.pop(message.msg_id, None)
            self.counters["read_wave_retries"] += 1

    def vote_round(self, participants, make_message, timeout_us: float, trace_txn=None):
        """RPC-round generator: one 2PC-style vote wave over ``participants``.

        Sends one request per participant, arms a shared coarse crash-guard
        deadline (see :meth:`Simulation.deadline` — a guard against crashed
        participants, not a precise timer) and collects the votes with a
        :class:`VoteCollector`.  Returns ``(outcome, votes)``; ``outcome`` is
        ``False`` when any participant voted no or the deadline expired.
        """
        inner = self._vote_round(participants, make_message, timeout_us, trace_txn)
        tracer = self.sim.tracer
        if tracer is None or trace_txn is None:
            return inner
        return self._traced_round(inner, tracer, trace_txn, "rpc.prepare")

    def _vote_round(self, participants, make_message, timeout_us: float, trace_txn=None):
        participants = list(participants)
        vote_events = self.request_each(participants, make_message)
        timeout = self.sim.deadline(timeout_us)
        votes = VoteCollector(self.sim, vote_events)
        tracer = self.sim.tracer
        start = self.sim.now if tracer is not None else 0.0
        yield self.sim.any_of([votes, timeout])
        if votes.triggered:
            return votes.value
        if tracer is not None and trace_txn is not None:
            # The round resolved by *waiting out the crash-guard deadline*,
            # not by votes: some participant's fate stayed ambiguous (its
            # prepare or vote was swallowed by a crash) for the whole guard
            # window.  Same span name as the reader-side external-status
            # guard rounds — both are the ROADMAP stall: ambiguity resolved
            # by a guard timer instead of being re-driven on restart.
            silent = [
                str(participant)
                for participant, event in zip(participants, vote_events)
                if not event.triggered
            ]
            tracer.span(
                "wait.ambiguous_guard",
                start,
                txn=trace_txn,
                node=self.node_id,
                args={"outcome": "guard-timeout", "round": "prepare", "silent": silent},
            )
        return False, []

    def vote_round_retry(
        self, participants, make_message, retry_us: float, max_resends: int, trace_txn=None
    ):
        """RPC-round generator: a vote round with fault-mode re-send cadence.

        The fault-mode counterpart of :meth:`vote_round`: prepares left
        unanswered for ``retry_us`` are re-sent (a briefly-crashed or
        partitioned participant answers the re-send after recovery — its
        prepare handler must be idempotent), and a participant still silent
        after ``max_resends`` re-send waves is declared dead and the round
        fails.  The abort therefore lands within the retry envelope,
        ``(max_resends + 1) * retry_us``, instead of idling out the full
        prepare timeout.  Negative votes still fail fast within a wave (the
        :class:`VoteCollector` semantics).  Returns ``(outcome, votes)``.
        """
        inner = self._vote_round_retry(participants, make_message, retry_us, max_resends)
        tracer = self.sim.tracer
        if tracer is None or trace_txn is None:
            return inner
        return self._traced_round(inner, tracer, trace_txn, "rpc.prepare")

    def _vote_round_retry(self, participants, make_message, retry_us: float, max_resends: int):
        remaining = list(participants)
        votes_collected: List[object] = []
        resends = 0
        while True:
            pairs = [(participant, make_message(participant)) for participant in remaining]
            events = [
                self.request(participant, message) for participant, message in pairs
            ]
            collector = VoteCollector(self.sim, events)
            yield self.sim.any_of([collector, self.sim.timeout(retry_us)])
            if collector.triggered:
                outcome, votes = collector.value
                votes_collected.extend(votes)
                return outcome, votes_collected
            # Cadence expired: bank the yes-votes that did arrive (a negative
            # vote would have fired the collector) and re-send to the silent
            # participants, retiring the stale correlation entries.
            silent = []
            for (participant, message), event in zip(pairs, events):
                if event.triggered and event.ok:
                    votes_collected.append(event.value)
                else:
                    self._pending_replies.pop(message.msg_id, None)
                    silent.append(participant)
            if not silent:
                return True, votes_collected
            resends += 1
            if resends > max_resends:
                self.counters["prepare_retry_aborts"] += 1
                return False, votes_collected
            self.counters["prepare_retries"] += 1
            remaining = silent

    def reliable_request(self, destination, make_message, trace_txn=None, trace_name="request"):
        """RPC generator: one request, re-sent in fault mode until answered.

        Fail-free this is exactly a plain ``yield self.request(...)``.  In
        fault mode the request is re-sent every ``crash_resubscribe_us``
        until a reply arrives — a crashed destination answers after its
        restart (the handler must be idempotent).  Returns the reply.
        """
        inner = self._reliable_request(destination, make_message)
        tracer = self.sim.tracer
        if tracer is None or trace_txn is None:
            return inner
        return self._traced_round(inner, tracer, trace_txn, f"rpc.{trace_name}")

    def _reliable_request(self, destination, make_message):
        if not self._fault_mode:
            reply = yield self.request(destination, make_message())
            return reply
        retry_us = self.config.timeouts.crash_resubscribe_us
        while True:
            message = make_message()
            event = self.request(destination, message)
            yield self.sim.any_of([event, self.sim.timeout(retry_us)])
            if event.triggered and event.ok:
                return event.value
            self._pending_replies.pop(message.msg_id, None)
            self.counters["round_retries"] += 1

    def request_round(
        self, items, destination_of, make_message, trace_txn=None, trace_name="round"
    ):
        """RPC-round generator: one request per item, all replies awaited.

        ``destination_of(item)`` routes each item (several items may share a
        destination — ROCOCO's per-key pieces do).  Fail-free this is
        exactly the historical ``all_of`` wave.  In fault mode, unanswered
        requests are re-sent every ``crash_resubscribe_us`` — a crashed
        destination answers after its restart, so handlers of messages sent
        through this helper must be idempotent.  Returns ``{item: reply}``.
        """
        inner = self._request_round(items, destination_of, make_message)
        tracer = self.sim.tracer
        if tracer is None or trace_txn is None:
            return inner
        return self._traced_round(inner, tracer, trace_txn, f"rpc.{trace_name}")

    def _request_round(self, items, destination_of, make_message):
        items = list(items)
        if not self._fault_mode:
            events = [
                self.request(destination_of(item), make_message(item))
                for item in items
            ]
            yield self.sim.all_of(events)
            return {item: event.value for item, event in zip(items, events)}
        retry_us = self.config.timeouts.crash_resubscribe_us
        replies: Dict[object, object] = {}
        pending = []
        for item in items:
            message = make_message(item)
            pending.append((item, message, self.request(destination_of(item), message)))
        while True:
            guard = self.sim.timeout(retry_us)
            yield self.sim.any_of([self.sim.all_of([event for _i, _m, event in pending]), guard])
            unanswered = []
            for item, message, event in pending:
                if event.triggered and event.ok:
                    replies[item] = event.value
                else:
                    # Retire the stale correlation entry and re-send.
                    self._pending_replies.pop(message.msg_id, None)
                    unanswered.append(item)
            if not unanswered:
                return replies
            self.counters["round_retries"] += 1
            pending = []
            for item in unanswered:
                message = make_message(item)
                pending.append((item, message, self.request(destination_of(item), message)))

    def request_all(self, destinations, make_message, trace_txn=None, trace_name="round"):
        """:meth:`request_round` specialized to one request per destination."""
        return self.request_round(
            destinations,
            lambda destination: destination,
            make_message,
            trace_txn=trace_txn,
            trace_name=trace_name,
        )

    # ------------------------------------------------------------------
    # Fault plane: crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop this node.

        The network drops all traffic to and from the node, the inbound
        queue and in-flight RPC correlation state are discarded, handler
        processes die at their next scheduling point (the epoch guard
        installed by fault mode), and the protocol's volatile state is
        dropped via :meth:`on_crash`.  Durable state — whatever the protocol
        treats as logged/persisted — survives untouched.
        """
        if self.crashed:
            return
        self.crashed = True
        self._epoch += 1
        self.counters["crashes"] += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("node.crash", node=self.node_id)
            self._trace_down_since = self.sim.now
        self.network.crash(self.node_id)
        self.counters["crash_dropped_inbound"] += self._inbound.clear()
        # Fail in-flight RPCs: waiting handler processes die through the
        # epoch guard, while co-located *client* processes receive
        # NodeCrashedError and reconnect with a back-off (see the closed-loop
        # client), which is what lets availability recover after a restart.
        pending = self._pending_replies
        self._pending_replies = {}
        for event in pending.values():
            if not event.triggered:
                event.fail(NodeCrashedError(f"node {self.node_id} crashed"))
        # Every transaction this node coordinates is torn down: the client
        # connection is gone, so the transaction can never be answered.  The
        # metadata records the crash so the restart recovery (on_restart
        # overrides) can release remote state the transaction pinned.
        for txn_id in sorted(self.coordinated):
            meta = self.coordinated[txn_id]
            if meta.phase in (
                TransactionPhase.EXTERNALLY_COMMITTED,
                TransactionPhase.ABORTED,
            ):
                continue
            meta.crash_phase = meta.phase
            meta.phase = TransactionPhase.ABORTED
            meta.abort_reason = "coordinator-crash"
            meta.abort_time = self.sim.now
            self.counters["coordinator_crash_aborts"] += 1
            if tracer is not None:
                # These teardowns bypass _finish_abort, so close their
                # traces here — a torn-down transaction would otherwise
                # look identical to a genuinely stuck one.
                self._trace_txn_end(meta, "torn-down")
        self.on_crash()

    def restart(self) -> None:
        """Recover a crashed node: rejoin the network, replay durable state."""
        if not self.crashed:
            return
        self.crashed = False
        self.counters["restarts"] += 1
        self.network.recover(self.node_id)
        tracer = self.sim.tracer
        if tracer is not None:
            down_since = getattr(self, "_trace_down_since", None)
            if down_since is not None:
                tracer.span("node.down", down_since, node=self.node_id)
                self._trace_down_since = None
            tracer.instant("node.restart", node=self.node_id)
        self.on_restart()
        if tracer is not None:
            # Durable-state replay runs synchronously inside on_restart, so
            # this marks its completion point on the node track.
            tracer.instant("node.recovered", node=self.node_id)

    def on_crash(self) -> None:
        """Protocol hook: drop volatile state (lock tables, prepare buffers)."""

    def on_restart(self) -> None:
        """Protocol hook: replay durable state after a restart."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        stats = dict(self.counters)
        stats["messages_handled"] = self.messages_handled
        return stats
