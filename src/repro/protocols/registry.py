"""The single protocol registry.

Every protocol in the repository registers its cluster facade here under
its experiment name (``"sss"``, ``"2pc"``, ``"walter"``, ``"rococo"``); the
harness, the benchmarks, and the examples all build clusters through
:func:`build_cluster`, so there is exactly one name -> factory mapping in
the codebase (this used to be split between ``baselines.PROTOCOL_CLUSTERS``
and a harness-side dict that special-cased ``"sss"``).

Registration happens at module-definition time: each protocol module calls
:func:`register` next to its cluster class.  :func:`ensure_registry`
imports the built-in protocol modules so the registry is populated no
matter which entry point the process started from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError

REGISTRY: Dict[str, type] = {}
"""Protocol name -> cluster facade class (one registry for the whole repo)."""


def register(name: str, cluster_class: type) -> type:
    """Register ``cluster_class`` under ``name``; returns the class.

    Re-registering the same class under the same name is a no-op (modules
    may be re-imported); registering a *different* class under a taken name
    is a configuration error.
    """
    existing = REGISTRY.get(name)
    if existing is not None and existing is not cluster_class:
        raise ConfigurationError(f"protocol {name!r} already registered to {existing.__name__}")
    REGISTRY[name] = cluster_class
    return cluster_class


def ensure_registry() -> Dict[str, type]:
    """Import the built-in protocol modules; returns the populated registry."""
    # Imported for their registration side effects.
    import repro.baselines  # noqa: F401
    import repro.core.cluster  # noqa: F401

    return REGISTRY


def protocol_names() -> List[str]:
    """Sorted names of every registered protocol."""
    return sorted(ensure_registry())


def build_cluster(
    protocol: str,
    config: Optional[ClusterConfig] = None,
    keys: Optional[Sequence[object]] = None,
    record_history: bool = False,
    **kwargs,
):
    """Instantiate the cluster facade for ``protocol``.

    History recording defaults to *off* for benchmark runs (it retains every
    committed transaction, which is useful for correctness checks but not for
    throughput measurements); tests and examples pass
    ``record_history=True``.
    """
    ensure_registry()
    try:
        cluster_class = REGISTRY[protocol]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; expected one of {sorted(REGISTRY)}"
        ) from None
    return cluster_class(config=config, keys=keys, record_history=record_history, **kwargs)
