"""The unified protocol layer.

This package is what the four protocol implementations (SSS and the three
competitors it is evaluated against) share:

* :mod:`repro.protocols.runtime` — :class:`ProtocolRuntime`, the node base
  class owning message dispatch, the per-transaction state machine, replica
  fan-out, vote collection and the crash/restart fault hooks, plus
  :class:`VoteCollector`.
* :mod:`repro.protocols.cluster` — :class:`ProtocolCluster`, the shared
  cluster facade (sessions, client processes, history, consistency checks,
  fault-plan installation).
* :mod:`repro.protocols.registry` — the single name -> cluster-factory
  :data:`REGISTRY` used by the harness, the benchmarks and the examples.
* :mod:`repro.protocols.faults` — binds a declarative
  :class:`~repro.common.config.FaultPlan` to a running cluster.
"""

from repro.protocols.cluster import ProtocolCluster
from repro.protocols.faults import install_fault_plan
from repro.protocols.registry import (
    REGISTRY,
    build_cluster,
    ensure_registry,
    protocol_names,
    register,
)
from repro.protocols.runtime import ProtocolRuntime, VoteCollector

__all__ = [
    "REGISTRY",
    "ProtocolCluster",
    "ProtocolRuntime",
    "VoteCollector",
    "build_cluster",
    "ensure_registry",
    "install_fault_plan",
    "protocol_names",
    "register",
]
