"""The shared cluster facade.

:class:`ProtocolCluster` assembles a complete simulated deployment of one
protocol — the simulation engine, the network, one node per cluster member,
the key placement, an optional history recorder, and the fault plane — and
exposes the operations example programs and the benchmark harness need:

* ``session(node)`` — obtain a client session co-located with a node;
* ``spawn(process)`` — run a client process inside the simulation;
* ``run(until)`` — advance simulated time;
* ``check_consistency()`` — run the external-consistency checker over the
  recorded history.

Every protocol in the repository (SSS and the three baselines) subclasses
this facade with only ``node_class`` and ``protocol_name``, which is what
lets the harness treat all protocols uniformly through one registry
(:mod:`repro.protocols.registry`).

When the cluster's :class:`~repro.common.config.ClusterConfig` carries a
non-empty :class:`~repro.common.config.FaultPlan`, the plan is installed at
construction time: fault mode is armed on every node and the scripted
crash/partition/slow-link events are scheduled on the engine (see
:mod:`repro.protocols.faults`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.consistency.checkers import CheckResult, check_external_consistency
from repro.consistency.history import HistoryRecorder
from repro.consistency.window import (
    WindowedConsistencyChecker,
    WindowedHistoryRecorder,
    default_retention_us,
)
from repro.core.session import Session
from repro.network.transport import Network
from repro.protocols.faults import install_fault_plan
from repro.replication.placement import KeyPlacement
from repro.sim.engine import Simulation


class ProtocolCluster:
    """Facade assembling a simulated cluster of one protocol.

    Subclasses set :attr:`node_class` and :attr:`protocol_name`; everything
    else (sessions, spawning client processes, running the simulation,
    history recording, fault-plan installation) is shared.
    """

    node_class = None
    protocol_name = "protocol"

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        keys: Optional[Sequence[object]] = None,
        record_history=True,
        initial_value=0,
        sim: Optional[Simulation] = None,
        network: Optional[Network] = None,
        owned_node_ids: Optional[Sequence[int]] = None,
        **node_kwargs,
    ):
        """``record_history`` selects the history plane: ``True`` records
        everything for post-hoc checking, ``False`` records nothing,
        ``"windowed"`` checks online with bounded memory (retention derived
        from the config's timeouts via
        :func:`~repro.consistency.window.default_retention_us`), and a
        recorder instance (:class:`HistoryRecorder` or
        :class:`WindowedHistoryRecorder`) is used as-is.

        ``sim`` / ``network`` inject a pre-built engine and transport (the
        parallel driver passes a :class:`~repro.sim.shard.ShardNetwork`);
        ``owned_node_ids`` restricts node construction to a subset of the
        cluster — the facade still describes the full cluster (placement,
        partitions, fault plan), but only the owned nodes exist locally and
        ``self.nodes`` holds ``None`` for the rest."""
        if self.node_class is None:  # pragma: no cover - abstract use
            raise ConfigurationError("ProtocolCluster must be subclassed")
        self.config = config or ClusterConfig()
        self.config.validate()
        self.keys: List[object] = (
            list(keys)
            if keys is not None
            else [f"key-{index}" for index in range(self.config.n_keys)]
        )
        self.sim = sim if sim is not None else Simulation(seed=self.config.seed)
        self.network = (
            network if network is not None else Network(self.sim, config=self.config.network)
        )
        self.sim.declare_units(self.config.n_nodes)
        self.network.declare_node_ids(range(self.config.n_nodes))
        self.placement = KeyPlacement(
            n_nodes=self.config.n_nodes,
            replication_degree=self.config.replication_degree,
            keys=self.keys,
        )
        if record_history == "windowed":
            self.history = WindowedHistoryRecorder(
                checker=WindowedConsistencyChecker(
                    retention_us=default_retention_us(self.config.timeouts)
                )
            )
        elif isinstance(record_history, (HistoryRecorder, WindowedHistoryRecorder)):
            self.history = record_history
        elif isinstance(record_history, str):
            raise ConfigurationError(
                f"unknown record_history mode {record_history!r}; "
                "expected True/False/'windowed' or a recorder instance"
            )
        else:
            self.history = HistoryRecorder() if record_history else None
        if owned_node_ids is None:
            self.owned_node_ids: List[int] = list(range(self.config.n_nodes))
        else:
            self.owned_node_ids = sorted(owned_node_ids)
        # Every node's construction-time scheduling (dispatcher processes,
        # timers, preload) is charged to its own unit, so the per-unit event
        # keys a shard assigns for its nodes match the serial engine's.
        self.nodes: List[object] = [None] * self.config.n_nodes
        for node_id in self.owned_node_ids:
            prev = self.sim.set_unit(node_id)
            try:
                self.nodes[node_id] = self.node_class(
                    self.sim,
                    self.network,
                    node_id,
                    placement=self.placement,
                    config=self.config,
                    history=self.history,
                    **node_kwargs,
                )
            finally:
                self.sim.set_unit(prev)
        for node_id in self.owned_node_ids:
            prev = self.sim.set_unit(node_id)
            try:
                self.nodes[node_id].preload(self.keys, initial_value=initial_value)
            finally:
                self.sim.set_unit(prev)
        self.local_nodes: List[object] = [self.nodes[node_id] for node_id in self.owned_node_ids]
        self._session_counter: Dict[int, int] = {}
        # Fault plane: schedule the declarative plan (no-op when empty).
        install_fault_plan(self, self.config.faults)
        self.sim.set_unit(0)

    # ------------------------------------------------------------------
    # Client-facing API
    # ------------------------------------------------------------------
    def session(self, node_id: int = 0) -> Session:
        """Create a client session co-located with ``node_id``."""
        if not 0 <= node_id < self.config.n_nodes:
            raise ConfigurationError(
                f"node_id {node_id} out of range (cluster has "
                f"{self.config.n_nodes} nodes)"
            )
        node = self.nodes[node_id]
        if node is None:
            raise ConfigurationError(f"node {node_id} is not owned by this shard")
        index = self._session_counter.get(node_id, 0)
        self._session_counter[node_id] = index + 1
        return Session(node, client_index=index)

    def spawn(self, generator, name: str = "", unit: Optional[int] = None):
        """Run a client process (a generator) inside the simulation.

        ``unit`` charges the process's scheduling to a node's execution unit
        (pass the node the client is co-located with); the harness always
        does, so client event keys are identical under the serial and the
        node-sharded engine.
        """
        if unit is None:
            return self.sim.process(generator, name=name or "client")
        prev = self.sim.set_unit(unit)
        try:
            return self.sim.process(generator, name=name or "client")
        finally:
            self.sim.set_unit(prev)

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (to ``until`` microseconds, or to quiescence)."""
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Trace plane
    # ------------------------------------------------------------------
    def attach_tracer(self, spec) -> "object":
        """Enable causal tracing on this cluster's engine.

        ``spec`` is a :class:`repro.trace.spec.TraceSpec` (or anything its
        ``coerce`` accepts).  Returns the installed
        :class:`~repro.trace.recorder.TraceRecorder`; must be called before
        the run starts.  The recorder is passive — attaching it never
        changes histories or metrics (see ``docs/OBSERVABILITY.md``).
        """
        from repro.trace.recorder import TraceRecorder
        from repro.trace.spec import TraceSpec

        resolved = TraceSpec.coerce(spec)
        if resolved is None:
            self.sim.tracer = None
            return None
        recorder = TraceRecorder(self.sim, resolved)
        self.sim.tracer = recorder
        return recorder

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def node(self, node_id: int):
        return self.nodes[node_id]

    def check_consistency(self) -> CheckResult:
        """Run the external-consistency check over the recorded history."""
        if self.history is None:
            raise ConfigurationError("history recording is disabled for this cluster")
        if isinstance(self.history, WindowedHistoryRecorder):
            return self.history.check_external_consistency()
        return check_external_consistency(self.history)

    def check_contract(self) -> List[CheckResult]:
        """Run the checks this protocol *promises* to pass, faults included.

        The default is the full external-consistency check — correct for SSS
        and the 2PC baseline.  Weaker protocols override it with their own
        contract (ROCOCO: serializability, Walter: PSI's dirty-read freedom
        and replica convergence) so the fault benches can assert "every
        protocol keeps its own guarantee under every fault kind" instead of
        holding all protocols to the strongest one.
        """
        return [self.check_consistency()]

    def total_counters(self) -> Dict[str, int]:
        """Aggregate protocol counters over every locally owned node."""
        totals: Dict[str, int] = {}
        for node in self.local_nodes:
            for name, value in node.stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} nodes={self.config.n_nodes} "
            f"keys={len(self.keys)} rf={self.config.replication_degree}>"
        )
