"""Identifier types for nodes, transactions and clients.

Identifiers are deliberately simple value objects (ints and small frozen
dataclasses) so that they hash quickly, sort deterministically and print in a
readable form in traces and test failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NodeId = int
"""Nodes are identified by their dense index ``0 .. n_nodes - 1``.

Using the dense index directly means a node identifier doubles as the index
of that node's entry inside every vector clock, which is how the paper's
pseudo-code (``T.VC[i]``, ``NodeVC[i]``) addresses vector entries.
"""


class TransactionId:
    """Globally unique transaction identifier.

    The identifier is a pair ``(node, seq)``: the node where the transaction
    was started (its coordinator) and a per-node monotonically increasing
    sequence number.  The pair is unique without any coordination between
    nodes, which mirrors how a real deployment would generate identifiers.

    Implemented as a slotted value class with a precomputed hash rather than
    a frozen dataclass: transaction ids key nearly every hot dictionary and
    set in the protocol (snapshot queues, lock tables, pending maps), and the
    dataclass-generated ``__hash__`` rebuilt a tuple on every lookup.
    """

    __slots__ = ("node", "seq", "_hash")

    def __init__(self, node: NodeId, seq: int):
        object.__setattr__(self, "node", node)
        object.__setattr__(self, "seq", seq)
        object.__setattr__(self, "_hash", hash((node, seq)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("TransactionId is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, TransactionId)
            and self.node == other.node
            and self.seq == other.seq
        )

    def __lt__(self, other: "TransactionId") -> bool:
        return (self.node, self.seq) < (other.node, other.seq)

    def __le__(self, other: "TransactionId") -> bool:
        return (self.node, self.seq) <= (other.node, other.seq)

    def __gt__(self, other: "TransactionId") -> bool:
        return (self.node, self.seq) > (other.node, other.seq)

    def __ge__(self, other: "TransactionId") -> bool:
        return (self.node, self.seq) >= (other.node, other.seq)

    def __reduce__(self):
        return (TransactionId, (self.node, self.seq))

    def __repr__(self) -> str:
        return f"TransactionId(node={self.node}, seq={self.seq})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.node}.{self.seq}"


@dataclass
class TxnIdGenerator:
    """Per-node factory of :class:`TransactionId` values."""

    node: NodeId
    _next_seq: int = field(default=0)

    def next_id(self) -> TransactionId:
        """Return a fresh identifier for a transaction coordinated by ``node``."""
        txn_id = TransactionId(self.node, self._next_seq)
        self._next_seq += 1
        return txn_id


@dataclass(frozen=True, order=True)
class ClientId:
    """Identifier of a closed-loop client, co-located with a node."""

    node: NodeId
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C{self.node}.{self.index}"
