"""Identifier types for nodes, transactions and clients.

Identifiers are deliberately simple value objects (ints and small frozen
dataclasses) so that they hash quickly, sort deterministically and print in a
readable form in traces and test failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NodeId = int
"""Nodes are identified by their dense index ``0 .. n_nodes - 1``.

Using the dense index directly means a node identifier doubles as the index
of that node's entry inside every vector clock, which is how the paper's
pseudo-code (``T.VC[i]``, ``NodeVC[i]``) addresses vector entries.
"""


@dataclass(frozen=True, order=True)
class TransactionId:
    """Globally unique transaction identifier.

    The identifier is a pair ``(node, seq)``: the node where the transaction
    was started (its coordinator) and a per-node monotonically increasing
    sequence number.  The pair is unique without any coordination between
    nodes, which mirrors how a real deployment would generate identifiers.
    """

    node: NodeId
    seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.node}.{self.seq}"


@dataclass
class TxnIdGenerator:
    """Per-node factory of :class:`TransactionId` values."""

    node: NodeId
    _next_seq: int = field(default=0)

    def next_id(self) -> TransactionId:
        """Return a fresh identifier for a transaction coordinated by ``node``."""
        txn_id = TransactionId(self.node, self._next_seq)
        self._next_seq += 1
        return txn_id


@dataclass(frozen=True, order=True)
class ClientId:
    """Identifier of a closed-loop client, co-located with a node."""

    node: NodeId
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C{self.node}.{self.index}"
