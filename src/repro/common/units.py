"""Unit literals and parsers shared by the declarative plan grammars.

Simulated time is expressed in microseconds throughout the library; offered
load is expressed in transactions per simulated second.  The compact string
grammars of :class:`~repro.common.config.FaultPlan` and
:class:`~repro.traffic.plan.TrafficPlan` both parse their time and rate
literals here, so ``"30ms"`` and ``"2000tps"`` mean the same thing on every
plane.
"""

from __future__ import annotations

from typing import Union

from repro.common.errors import ConfigurationError

MICROSECOND = 1.0
MILLISECOND = 1_000.0
SECOND = 1_000_000.0


def parse_time_us(text: Union[str, int, float]) -> float:
    """Parse a time literal into microseconds.

    Accepts plain numbers (microseconds) and strings with a ``us`` / ``ms``
    / ``s`` suffix: ``"30ms"`` -> 30000.0, ``"500us"`` -> 500.0, ``"1.5s"``
    -> 1500000.0, ``"250"`` -> 250.0.
    """
    if isinstance(text, (int, float)):
        return float(text)
    raw = text.strip().lower()
    for suffix, scale in (("us", MICROSECOND), ("ms", MILLISECOND), ("s", SECOND)):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)]
            break
    else:
        number, scale = raw, MICROSECOND
    try:
        return float(number) * scale
    except ValueError:
        raise ConfigurationError(f"cannot parse time literal {text!r}") from None


def format_number(value: Union[int, float]) -> str:
    """Canonical numeric literal for plan serialization.

    Integral values print without a decimal point; everything else uses
    Python's shortest round-tripping float repr, so
    ``parse_time_us(format_number(x)) == x`` (and the same for rates)
    holds exactly — the contract the plan ``to_spec`` serializers rely on.
    """
    number = float(value)
    if number.is_integer() and abs(number) < 1e16:
        return str(int(number))
    return repr(number)


def parse_rate_tps(text: Union[str, int, float]) -> float:
    """Parse an offered-load literal into transactions per simulated second.

    Accepts plain numbers (tps) and strings with a ``tps`` / ``ktps``
    suffix: ``"2000tps"`` -> 2000.0, ``"2ktps"`` -> 2000.0, ``"500"`` ->
    500.0.
    """
    if isinstance(text, (int, float)):
        return float(text)
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith("ktps"):
        raw, scale = raw[:-4], 1_000.0
    elif raw.endswith("tps"):
        raw = raw[:-3]
    try:
        return float(raw) * scale
    except ValueError:
        raise ConfigurationError(f"cannot parse rate literal {text!r}") from None
