"""Configuration dataclasses for clusters, networks and workloads.

All experiment knobs used by the paper's evaluation (Section V) appear here:
node count, replication degree, number of keys, percentage of read-only
transactions, read-set sizes, access locality and clients per node.  The
defaults match the paper's default configuration (replication degree 2,
10 clients per node, 2-key update transactions, 2-key read-only
transactions, uniform access).

Times are expressed in *microseconds of simulated time* throughout the
library; the paper reports a ~20 microsecond message delivery latency on its
Infiniband test-bed, which is the default here as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

MICROSECOND = 1.0
MILLISECOND = 1_000.0
SECOND = 1_000_000.0


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the simulated message-passing network.

    Attributes
    ----------
    base_latency_us:
        Mean one-way message latency in microseconds (paper: ~20 us).
    jitter_us:
        Half-width of the uniform jitter added to every message.
    bandwidth_msgs_per_us:
        Per-node outgoing message service rate used to model network
        congestion; ``0`` disables the congestion model.
    priority_levels:
        Number of distinct priority levels for per-message-type queues.
    """

    base_latency_us: float = 20.0
    jitter_us: float = 4.0
    bandwidth_msgs_per_us: float = 0.35
    priority_levels: int = 4

    def validate(self) -> None:
        if self.base_latency_us < 0:
            raise ConfigurationError("base_latency_us must be >= 0")
        if self.jitter_us < 0:
            raise ConfigurationError("jitter_us must be >= 0")
        if self.priority_levels < 1:
            raise ConfigurationError("priority_levels must be >= 1")


@dataclass(frozen=True)
class ServiceTimeConfig:
    """CPU service times charged by a node for local protocol steps.

    These model the per-operation processing cost of the Java implementation
    (version-chain traversal, lock table access, queue maintenance).  They are
    what makes a node saturate when too many clients inject requests, which is
    required to reproduce the saturation behaviour in Figures 4 and 5.
    """

    read_local_us: float = 4.0
    write_buffer_us: float = 1.0
    version_walk_us: float = 0.4
    lock_op_us: float = 1.0
    validate_key_us: float = 0.8
    queue_op_us: float = 0.8
    commit_apply_us: float = 2.0
    message_handling_us: float = 2.0

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass(frozen=True)
class TimeoutConfig:
    """Protocol timeouts (microseconds)."""

    lock_timeout_us: float = 1_000.0
    """Lock acquisition timeout; the paper sets 1 ms on its cluster."""

    prepare_timeout_us: float = 50_000.0
    """2PC coordinator wait for votes before declaring the round failed."""

    starvation_threshold_us: float = 20_000.0
    """Queued-writer age beyond which read-only reads apply back-off."""

    backoff_initial_us: float = 100.0
    backoff_max_us: float = 5_000.0

    external_done_wait_us: float = 400.0
    """Bounded wait of a read-only read on a writer in the "ambiguous zone"
    (internally committed locally, local pre-commit wait passed, external
    commit not yet announced).  A handful of message round-trips is enough
    for the ExternalDone notification to arrive in the common case; on
    expiry the reader falls back to excluding the writer from its snapshot."""

    def validate(self) -> None:
        if self.lock_timeout_us <= 0:
            raise ConfigurationError("lock_timeout_us must be > 0")
        if self.prepare_timeout_us <= 0:
            raise ConfigurationError("prepare_timeout_us must be > 0")
        if self.backoff_initial_us <= 0 or self.backoff_max_us < self.backoff_initial_us:
            raise ConfigurationError("invalid back-off window")


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of a simulated cluster.

    Attributes
    ----------
    n_nodes:
        Number of nodes (the paper evaluates 5, 10, 15 and 20).
    n_keys:
        Number of shared keys (paper: 5 000 or 10 000).
    replication_degree:
        Number of replicas per key (paper: 2; 1 for ROCOCO comparisons).
    clients_per_node:
        Closed-loop clients co-located with every node (paper: 10).
    seed:
        Root seed from which every random stream in the cluster is derived.
    """

    n_nodes: int = 5
    n_keys: int = 5_000
    replication_degree: int = 2
    clients_per_node: int = 10
    seed: int = 1
    network: NetworkConfig = field(default_factory=NetworkConfig)
    service: ServiceTimeConfig = field(default_factory=ServiceTimeConfig)
    timeouts: TimeoutConfig = field(default_factory=TimeoutConfig)

    def validate(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        if self.n_keys < 1:
            raise ConfigurationError("n_keys must be >= 1")
        if not 1 <= self.replication_degree <= self.n_nodes:
            raise ConfigurationError(
                "replication_degree must be between 1 and n_nodes "
                f"(got {self.replication_degree} with {self.n_nodes} nodes)"
            )
        if self.clients_per_node < 0:
            raise ConfigurationError("clients_per_node must be >= 0")
        self.network.validate()
        self.service.validate()
        self.timeouts.validate()


@dataclass(frozen=True)
class WorkloadConfig:
    """YCSB-style workload description (Section V of the paper).

    Attributes
    ----------
    read_only_fraction:
        Fraction of transactions that are read-only (paper: 0.2 / 0.5 / 0.8).
    update_txn_keys:
        Keys read *and* written by an update transaction (paper: 2).
    read_only_txn_keys:
        Keys read by a read-only transaction (paper: 2, up to 16 in Fig. 8).
    key_distribution:
        ``"uniform"`` or ``"zipfian"`` key popularity.
    zipf_theta:
        Skew of the zipfian distribution, ignored for uniform access.
    locality_fraction:
        Probability that an accessed key is chosen among keys replicated on
        the client's local node (paper Fig. 7 uses 0.5).
    think_time_us:
        Client think time between transactions; 0 reproduces the paper's
        closed loop with immediate re-issue.
    """

    read_only_fraction: float = 0.5
    update_txn_keys: int = 2
    read_only_txn_keys: int = 2
    key_distribution: str = "uniform"
    zipf_theta: float = 0.7
    locality_fraction: float = 0.0
    think_time_us: float = 0.0

    def validate(self) -> None:
        if not 0.0 <= self.read_only_fraction <= 1.0:
            raise ConfigurationError("read_only_fraction must be in [0, 1]")
        if self.update_txn_keys < 1:
            raise ConfigurationError("update_txn_keys must be >= 1")
        if self.read_only_txn_keys < 1:
            raise ConfigurationError("read_only_txn_keys must be >= 1")
        if self.key_distribution not in ("uniform", "zipfian"):
            raise ConfigurationError(
                f"unknown key_distribution {self.key_distribution!r}"
            )
        if not 0.0 <= self.locality_fraction <= 1.0:
            raise ConfigurationError("locality_fraction must be in [0, 1]")
        if self.think_time_us < 0:
            raise ConfigurationError("think_time_us must be >= 0")
