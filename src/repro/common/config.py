"""Configuration dataclasses for clusters, networks and workloads.

All experiment knobs used by the paper's evaluation (Section V) appear here:
node count, replication degree, number of keys, percentage of read-only
transactions, read-set sizes, access locality and clients per node.  The
defaults match the paper's default configuration (replication degree 2,
10 clients per node, 2-key update transactions, 2-key read-only
transactions, uniform access).

Times are expressed in *microseconds of simulated time* throughout the
library; the paper reports a ~20 microsecond message delivery latency on its
Infiniband test-bed, which is the default here as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.common.units import (  # noqa: F401  (re-exported, historical home)
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_number,
    parse_rate_tps,
    parse_time_us,
)
from repro.traffic.plan import TrafficPlan


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the simulated message-passing network.

    Attributes
    ----------
    base_latency_us:
        Mean one-way message latency in microseconds (paper: ~20 us).
    jitter_us:
        Half-width of the uniform jitter added to every message.
    bandwidth_msgs_per_us:
        Per-node outgoing message service rate used to model network
        congestion; ``0`` disables the congestion model.
    priority_levels:
        Number of distinct priority levels for per-message-type queues.
    """

    base_latency_us: float = 20.0
    jitter_us: float = 4.0
    bandwidth_msgs_per_us: float = 0.35
    priority_levels: int = 4

    def validate(self) -> None:
        if self.base_latency_us < 0:
            raise ConfigurationError("base_latency_us must be >= 0")
        if self.jitter_us < 0:
            raise ConfigurationError("jitter_us must be >= 0")
        if self.priority_levels < 1:
            raise ConfigurationError("priority_levels must be >= 1")


@dataclass(frozen=True)
class ServiceTimeConfig:
    """CPU service times charged by a node for local protocol steps.

    These model the per-operation processing cost of the Java implementation
    (version-chain traversal, lock table access, queue maintenance).  They are
    what makes a node saturate when too many clients inject requests, which is
    required to reproduce the saturation behaviour in Figures 4 and 5.
    """

    read_local_us: float = 4.0
    write_buffer_us: float = 1.0
    version_walk_us: float = 0.4
    lock_op_us: float = 1.0
    validate_key_us: float = 0.8
    queue_op_us: float = 0.8
    commit_apply_us: float = 2.0
    message_handling_us: float = 2.0

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass(frozen=True)
class TimeoutConfig:
    """Protocol timeouts (microseconds)."""

    lock_timeout_us: float = 1_000.0
    """Lock acquisition timeout; the paper sets 1 ms on its cluster."""

    prepare_timeout_us: float = 50_000.0
    """2PC coordinator wait for votes before declaring the round failed."""

    starvation_threshold_us: float = 20_000.0
    """Queued-writer age beyond which read-only reads apply back-off."""

    backoff_initial_us: float = 100.0
    backoff_max_us: float = 5_000.0

    external_done_wait_us: float = 400.0
    """Bounded wait of a read-only read on a writer in the "ambiguous zone"
    (internally committed locally, local pre-commit wait passed, external
    commit not yet announced).  A handful of message round-trips is enough
    for the ExternalDone notification to arrive in the common case; on
    expiry the reader resolves the remaining writers definitively at their
    coordinators (``ExternalStatusQuery``) and excludes only those confirmed
    still in flight — a blind timeout exclusion could serialize the reader
    before a writer whose client was already answered."""

    readonly_restart_wait_us: float = 8_000.0
    """How long a read-only transaction's external-commit dependency wait may
    sit on writers *confirmed still in flight* before the transaction is
    restarted internally (entries withdrawn, fresh snapshot, client never
    sees an abort).  This is the deterministic breaker for the 4-party wait
    cycle: two read-only transactions bridging two independent pre-committing
    writers can adopt contradictory serialization orders, and one of the
    readers must move since the writers' versions are already installed.
    Legitimate dependency waits resolve in a few round-trips, so the default
    is far above the fail-free common case and far below the drain window."""

    crash_resubscribe_us: float = 5_000.0
    """Fault-mode only: how often an external-commit dependency wait re-sends
    its SubscribeExternal before trying again.  A crash can swallow both the
    original subscription and the notification; periodic re-subscription is
    what lets gated readers resolve once the writer's coordinator restarts.
    Fail-free runs never take this path."""

    prepare_retry_limit: int = 3
    """Fault-mode only: how many unanswered ``crash_resubscribe_us`` re-send
    waves a retrying prepare fan-out (``vote_round_retry``) tolerates before
    declaring the silent participant dead and failing the round.  Bounds the
    dead-participant abort at ``(limit + 1) * crash_resubscribe_us`` —
    20 ms at the defaults — instead of the full ``prepare_timeout_us``,
    while a participant that restarts within the envelope still answers a
    re-send and the round completes honestly."""

    def validate(self) -> None:
        if self.lock_timeout_us <= 0:
            raise ConfigurationError("lock_timeout_us must be > 0")
        if self.prepare_timeout_us <= 0:
            raise ConfigurationError("prepare_timeout_us must be > 0")
        if self.prepare_retry_limit < 1:
            raise ConfigurationError("prepare_retry_limit must be >= 1")
        if self.backoff_initial_us <= 0 or self.backoff_max_us < self.backoff_initial_us:
            raise ConfigurationError("invalid back-off window")
        if self.readonly_restart_wait_us <= 0:
            raise ConfigurationError("readonly_restart_wait_us must be > 0")


# ----------------------------------------------------------------------
# Fault plane: declarative fault plans
# (time/rate literal parsing lives in repro.common.units and is
# re-exported above for the historical import path.)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashFault:
    """Crash-stop ``node`` at ``at_us``; restart after ``duration_us``.

    ``duration_us=None`` means the node never restarts.  A crashed node
    loses its volatile state (see ``ProtocolRuntime.on_crash``) and replays
    its durable state on restart.
    """

    node: int
    at_us: float
    duration_us: Optional[float] = None

    kind = "crash"

    def end_us(self, horizon: float) -> float:
        if self.duration_us is None:
            return horizon
        return self.at_us + self.duration_us

    def to_spec(self) -> str:
        """Canonical compact string; re-parses to an equal fault."""
        spec = f"crash node={self.node} at={format_number(self.at_us)}"
        if self.duration_us is not None:
            spec += f" for={format_number(self.duration_us)}"
        return spec

    def validate(self, n_nodes: int) -> None:
        if not 0 <= self.node < n_nodes:
            raise ConfigurationError(f"crash fault targets node {self.node}, cluster has {n_nodes}")
        if self.at_us < 0:
            raise ConfigurationError("crash at_us must be >= 0")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ConfigurationError("crash duration_us must be > 0 (or None)")


@dataclass(frozen=True)
class PartitionFault:
    """Split the cluster into ``groups`` during ``[at_us, at_us+duration_us)``.

    ``mode="buffer"`` (default) holds cross-partition messages in the
    network and releases them at heal time — the paper's "messages are
    guaranteed to be eventually delivered unless a crash happens" model.
    ``mode="drop"`` loses them instead (a partition that behaves like a
    crash of the far side).  Nodes not named in any group form one implicit
    extra group together.
    """

    groups: Tuple[Tuple[int, ...], ...]
    at_us: float
    duration_us: float
    mode: str = "buffer"

    kind = "partition"

    def end_us(self, horizon: float) -> float:
        return self.at_us + self.duration_us

    def to_spec(self) -> str:
        """Canonical compact string; re-parses to an equal fault."""
        groups = "|".join(",".join(str(node) for node in group) for group in self.groups)
        spec = (
            f"partition groups={groups} "
            f"at={format_number(self.at_us)} for={format_number(self.duration_us)}"
        )
        if self.mode != "buffer":
            spec += f" mode={self.mode}"
        return spec

    def validate(self, n_nodes: int) -> None:
        if len(self.groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("empty partition group")
            for node in group:
                if not 0 <= node < n_nodes:
                    raise ConfigurationError(f"partition names node {node}, cluster has {n_nodes}")
                if node in seen:
                    raise ConfigurationError(f"node {node} appears in two partition groups")
                seen.add(node)
        if self.at_us < 0 or self.duration_us <= 0:
            raise ConfigurationError("partition window must be positive")
        if self.mode not in ("buffer", "drop"):
            raise ConfigurationError(f"unknown partition mode {self.mode!r}")


@dataclass(frozen=True)
class SlowLinkFault:
    """Degrade the ``src -> dst`` link during ``[at_us, at_us+duration_us)``.

    Every message on the link has its propagation latency multiplied by
    ``factor`` and increased by ``extra_us``.  ``bidirectional`` (default)
    degrades both directions.
    """

    src: int
    dst: int
    at_us: float
    duration_us: float
    factor: float = 1.0
    extra_us: float = 0.0
    bidirectional: bool = True

    kind = "slowlink"

    def end_us(self, horizon: float) -> float:
        return self.at_us + self.duration_us

    def to_spec(self) -> str:
        """Canonical compact string; re-parses to an equal fault."""
        spec = (
            f"slowlink src={self.src} dst={self.dst} "
            f"at={format_number(self.at_us)} for={format_number(self.duration_us)}"
        )
        if self.factor != 1.0:
            spec += f" factor={format_number(self.factor)}"
        if self.extra_us != 0.0:
            spec += f" extra={format_number(self.extra_us)}"
        if not self.bidirectional:
            spec += " bidirectional=false"
        return spec

    def validate(self, n_nodes: int) -> None:
        for node in (self.src, self.dst):
            if not 0 <= node < n_nodes:
                raise ConfigurationError(f"slowlink names node {node}, cluster has {n_nodes}")
        if self.src == self.dst:
            raise ConfigurationError("slowlink src and dst must differ")
        if self.at_us < 0 or self.duration_us <= 0:
            raise ConfigurationError("slowlink window must be positive")
        if self.factor < 1.0 or self.extra_us < 0:
            raise ConfigurationError("slowlink must degrade (factor >= 1, extra_us >= 0)")


FaultSpec = Union[CrashFault, PartitionFault, SlowLinkFault]

_TRUE_LITERALS = ("1", "true", "yes", "on")


def _parse_fault(spec: Union[str, Dict, FaultSpec]) -> FaultSpec:
    """Parse one fault spec: a fault object, a dict, or a compact string.

    String grammar (whitespace-separated ``key=value`` fields after the
    kind)::

        "crash node=2 at=30ms for=20ms"          # "for" optional: no restart
        "partition groups=0,1|2,3 at=10ms for=20ms mode=drop"
        "slowlink src=0 dst=1 at=5ms for=10ms factor=8 extra=200us"
    """
    if isinstance(spec, (CrashFault, PartitionFault, SlowLinkFault)):
        return spec
    if isinstance(spec, str):
        tokens = spec.split()
        if not tokens:
            raise ConfigurationError("empty fault spec")
        kind, fields = tokens[0].lower(), {}
        for token in tokens[1:]:
            if "=" not in token:
                raise ConfigurationError(f"malformed fault field {token!r} in {spec!r}")
            key, value = token.split("=", 1)
            fields[key] = value
        spec = {"kind": kind, **fields}
    if not isinstance(spec, dict):
        raise ConfigurationError(f"cannot parse fault spec {spec!r}")
    fields = dict(spec)
    kind = str(fields.pop("kind", "")).lower()
    at_us = parse_time_us(fields.pop("at", fields.pop("at_us", 0)))
    raw_for = fields.pop("for", fields.pop("duration_us", None))
    duration_us = None if raw_for is None else parse_time_us(raw_for)
    if kind == "crash":
        node = _parse_node(fields.pop("node"), kind)
        _reject_unknown(kind, fields)
        return CrashFault(node=node, at_us=at_us, duration_us=duration_us)
    if kind == "partition":
        raw_groups = fields.pop("groups")
        if isinstance(raw_groups, str):
            groups = tuple(
                tuple(_parse_node(part, kind) for part in group.split(",") if part != "")
                for group in raw_groups.split("|")
            )
        else:
            groups = tuple(
                tuple(_parse_node(node, kind) for node in group) for group in raw_groups
            )
        mode = str(fields.pop("mode", "buffer"))
        _reject_unknown(kind, fields)
        if duration_us is None:
            raise ConfigurationError("partition requires a 'for' window")
        return PartitionFault(groups=groups, at_us=at_us, duration_us=duration_us, mode=mode)
    if kind == "slowlink":
        src = _parse_node(fields.pop("src"), kind)
        dst = _parse_node(fields.pop("dst"), kind)
        factor = float(fields.pop("factor", 1.0))
        extra_us = parse_time_us(fields.pop("extra", fields.pop("extra_us", 0.0)))
        raw_bidi = fields.pop("bidirectional", True)
        if isinstance(raw_bidi, str):
            bidirectional = raw_bidi.lower() in _TRUE_LITERALS
        else:
            bidirectional = bool(raw_bidi)
        _reject_unknown(kind, fields)
        if duration_us is None:
            raise ConfigurationError("slowlink requires a 'for' window")
        return SlowLinkFault(
            src=src,
            dst=dst,
            at_us=at_us,
            duration_us=duration_us,
            factor=factor,
            extra_us=extra_us,
            bidirectional=bidirectional,
        )
    raise ConfigurationError(f"unknown fault kind {kind!r}")


def _parse_node(value, kind: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{kind!r} fault: node id {value!r} is not an integer") from None


def _reject_unknown(kind: str, leftover: Dict) -> None:
    if leftover:
        raise ConfigurationError(f"unknown field(s) {sorted(leftover)} for {kind!r} fault")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, deterministic schedule of fault-plane events.

    The plan is part of the cluster configuration, so a faulty experiment is
    exactly as reproducible (and as picklable for the parallel sweep runner)
    as a fail-free one.  An empty plan is the default everywhere and changes
    nothing: fail-free histories stay byte-identical.
    """

    faults: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, specs: Sequence[Union[str, Dict, FaultSpec]]) -> "FaultPlan":
        """Build a plan from compact strings / dicts / fault objects."""
        return cls(faults=tuple(_parse_fault(spec) for spec in specs))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def specs(self) -> List[str]:
        """Canonical compact strings: ``FaultPlan.parse(plan.specs()) == plan``.

        Parsing used to be one-way; the scenario searcher's mutators parse,
        perturb and re-serialize plans, so every fault knows how to print
        itself back (pinned by the hypothesis round-trip test in
        ``tests/property/test_plan_roundtrip.py``).
        """
        return [fault.to_spec() for fault in self.faults]

    def validate(self, n_nodes: int) -> None:
        for fault in self.faults:
            fault.validate(n_nodes)
        # The transport supports one active partition at a time.
        partitions = sorted(
            (fault.at_us, fault.at_us + fault.duration_us)
            for fault in self.faults
            if isinstance(fault, PartitionFault)
        )
        for (_, prev_end), (next_start, _) in zip(partitions, partitions[1:]):
            if next_start < prev_end:
                raise ConfigurationError("overlapping partition windows are not supported")

    def phases(self, duration_us: float) -> List[Tuple[str, float, float]]:
        """Split ``[0, duration_us)`` at fault boundaries.

        Returns ``(label, start_us, end_us)`` tuples; the label names the
        fault kinds active in the window (``"fail-free"`` when none are).
        The harness uses these windows for the per-phase availability
        metrics.
        """
        if not self.faults:
            return []
        cuts = {0.0, duration_us}
        for fault in self.faults:
            cuts.add(min(fault.at_us, duration_us))
            cuts.add(min(fault.end_us(duration_us), duration_us))
        ordered = sorted(cuts)
        phases: List[Tuple[str, float, float]] = []
        for index, (start, end) in enumerate(zip(ordered, ordered[1:])):
            if end - start <= 0:
                continue
            active = sorted(
                {
                    fault.kind
                    for fault in self.faults
                    if fault.at_us < end and fault.end_us(duration_us) > start
                }
            )
            label = "+".join(active) if active else "fail-free"
            phases.append((f"p{index}:{label}", start, end))
        return phases


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of a simulated cluster.

    Attributes
    ----------
    n_nodes:
        Number of nodes (the paper evaluates 5, 10, 15 and 20).
    n_keys:
        Number of shared keys (paper: 5 000 or 10 000).
    replication_degree:
        Number of replicas per key (paper: 2; 1 for ROCOCO comparisons).
    clients_per_node:
        Closed-loop clients co-located with every node (paper: 10);
        ignored when a traffic plan switches the run to open loop.
    seed:
        Root seed from which every random stream in the cluster is derived.
    """

    n_nodes: int = 5
    n_keys: int = 5_000
    replication_degree: int = 2
    clients_per_node: int = 10
    seed: int = 1
    network: NetworkConfig = field(default_factory=NetworkConfig)
    service: ServiceTimeConfig = field(default_factory=ServiceTimeConfig)
    timeouts: TimeoutConfig = field(default_factory=TimeoutConfig)
    faults: FaultPlan = field(default_factory=FaultPlan)
    """Declarative fault schedule; empty (the default) means fail-free."""

    traffic: TrafficPlan = field(default_factory=TrafficPlan)
    """Declarative open-loop traffic scenario; empty (the default) keeps the
    historical closed-loop clients and changes nothing — see
    :mod:`repro.traffic`."""

    def validate(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        if self.n_keys < 1:
            raise ConfigurationError("n_keys must be >= 1")
        if not 1 <= self.replication_degree <= self.n_nodes:
            raise ConfigurationError(
                "replication_degree must be between 1 and n_nodes "
                f"(got {self.replication_degree} with {self.n_nodes} nodes)"
            )
        if self.clients_per_node < 0:
            raise ConfigurationError("clients_per_node must be >= 0")
        self.network.validate()
        self.service.validate()
        self.timeouts.validate()
        self.faults.validate(self.n_nodes)
        self.traffic.validate()


@dataclass(frozen=True)
class WorkloadConfig:
    """YCSB-style workload description (Section V of the paper).

    Attributes
    ----------
    read_only_fraction:
        Fraction of transactions that are read-only (paper: 0.2 / 0.5 / 0.8).
    update_txn_keys:
        Keys read *and* written by an update transaction (paper: 2).
    read_only_txn_keys:
        Keys read by a read-only transaction (paper: 2, up to 16 in Fig. 8).
    key_distribution:
        ``"uniform"`` or ``"zipfian"`` key popularity.
    zipf_theta:
        Skew of the zipfian distribution, ignored for uniform access.
    locality_fraction:
        Probability that an accessed key is chosen among keys replicated on
        the client's local node (paper Fig. 7 uses 0.5).
    think_time_us:
        Client think time between transactions; 0 reproduces the paper's
        closed loop with immediate re-issue.
    """

    read_only_fraction: float = 0.5
    update_txn_keys: int = 2
    read_only_txn_keys: int = 2
    key_distribution: str = "uniform"
    zipf_theta: float = 0.7
    locality_fraction: float = 0.0
    think_time_us: float = 0.0

    def validate(self) -> None:
        if not 0.0 <= self.read_only_fraction <= 1.0:
            raise ConfigurationError("read_only_fraction must be in [0, 1]")
        if self.update_txn_keys < 1:
            raise ConfigurationError("update_txn_keys must be >= 1")
        if self.read_only_txn_keys < 1:
            raise ConfigurationError("read_only_txn_keys must be >= 1")
        if self.key_distribution not in ("uniform", "zipfian"):
            raise ConfigurationError(f"unknown key_distribution {self.key_distribution!r}")
        if not 0.0 <= self.locality_fraction <= 1.0:
            raise ConfigurationError("locality_fraction must be in [0, 1]")
        if self.think_time_us < 0:
            raise ConfigurationError("think_time_us must be >= 0")
