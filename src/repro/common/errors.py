"""Exception hierarchy for the SSS reproduction.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause.  Aborts of
transactions are modelled with :class:`AbortError` and its subclasses; they
are part of normal protocol operation (an aborted transaction is a valid
outcome, not a bug) and carry enough information for the harness to classify
abort causes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class TransactionStateError(ReproError):
    """Raised when a transaction handle is used in an illegal state.

    Examples: issuing a read after :meth:`commit`, writing inside a
    transaction declared read-only, or committing twice.
    """


class NodeCrashedError(ReproError):
    """An operation was interrupted because the serving node crash-stopped.

    Raised into client processes co-located with a crashing node (their
    in-flight RPCs fail) and returned immediately for requests issued while
    the node is down.  The closed-loop clients treat it like an abort and
    reconnect with a back-off, which is what lets availability recover once
    the node restarts.
    """


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class SnapshotRestartError(ReproError):
    """A read-only transaction must restart under a fresh snapshot.

    Raised into the client process when a read is refused as stale (the
    frozen visibility bound hides a version whose writer's client was
    *already answered* — serving would create an exclusion edge with no
    answer-order behind it, the ungated half of a Figure-2 fracture cycle)
    or when the commit-time dependency wait sat too long on writers
    confirmed still in flight (the 4-party wait-cycle breaker).  The
    installed versions cannot move, so the reader is the party that
    restarts.  This is an internal retry signal, not an abort: the workload
    layer re-executes the transaction under a fresh id and snapshot, the
    attempt is not recorded in the history, and the client is answered
    exactly once.
    """

    def __init__(self, txn_id: object | None = None):
        super().__init__(f"read-only transaction {txn_id} restarts with a fresh snapshot")
        self.txn_id = txn_id


class AbortError(ReproError):
    """A transaction aborted.

    Attributes
    ----------
    txn_id:
        Identifier of the aborted transaction (may be ``None`` when raised
        before an identifier was assigned).
    reason:
        Short machine-readable cause, e.g. ``"validation"``, ``"lock-timeout"``
        or ``"deadlock-avoidance"``.  The harness aggregates abort reasons.
    """

    def __init__(self, reason: str = "abort", txn_id: object | None = None):
        super().__init__(f"transaction aborted: {reason}")
        self.reason = reason
        self.txn_id = txn_id


class ValidationFailure(AbortError):
    """Commit-time validation found an overwritten read key."""

    def __init__(self, txn_id: object | None = None, key: object | None = None):
        super().__init__(reason="validation", txn_id=txn_id)
        self.key = key


class LockTimeoutError(AbortError):
    """Lock acquisition did not succeed within the configured timeout."""

    def __init__(self, txn_id: object | None = None, key: object | None = None):
        super().__init__(reason="lock-timeout", txn_id=txn_id)
        self.key = key
