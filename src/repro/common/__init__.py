"""Shared utilities: errors, configuration, identifiers and seeding.

The :mod:`repro.common` package contains small building blocks used by every
other subsystem of the reproduction: the exception hierarchy, configuration
dataclasses describing a cluster and a workload, and identifier helpers.
"""

from repro.common.config import (
    ClusterConfig,
    NetworkConfig,
    ServiceTimeConfig,
    TimeoutConfig,
    WorkloadConfig,
)
from repro.common.errors import (
    AbortError,
    ConfigurationError,
    LockTimeoutError,
    ReproError,
    TransactionStateError,
    ValidationFailure,
)
from repro.common.ids import NodeId, TransactionId, TxnIdGenerator

__all__ = [
    "AbortError",
    "ClusterConfig",
    "ConfigurationError",
    "LockTimeoutError",
    "NetworkConfig",
    "NodeId",
    "ReproError",
    "ServiceTimeConfig",
    "TimeoutConfig",
    "TransactionId",
    "TransactionStateError",
    "TxnIdGenerator",
    "ValidationFailure",
    "WorkloadConfig",
]
