"""The 2PC-baseline competitor.

From the paper's evaluation section: "all transactions execute as SSS's
update transactions; read-only transactions validate their execution,
therefore they can abort; and no multi-version data repository is deployed.
As SSS, 2PC-baseline guarantees external consistency."

Concretely:

* Each node keeps a *single-version* store: one value and one monotonically
  increasing version number per key.
* Reads contact every replica of the key, use the fastest reply and remember
  the version number observed.
* Commit — for **every** transaction, read-only included — runs two-phase
  commit over the replicas of the read and write sets: prepare acquires
  shared locks on reads and exclusive locks on writes and validates that the
  read version numbers are still current; decide applies the writes (bumping
  the per-key version) and releases locks; the client is informed after every
  participant acknowledged the decision (which is what makes the protocol
  externally consistent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.common.errors import TransactionStateError
from repro.common.ids import TransactionId
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.network.message import Message, MessagePriority
from repro.protocols.cluster import ProtocolCluster
from repro.protocols.registry import register
from repro.protocols.runtime import ProtocolRuntime
from repro.storage.locks import LockTable


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class ReadRequest2PC(Message):
    __slots__ = ("txn_id", "key")
    priority = MessagePriority.READ
    base_size = 40

    def __init__(self, txn_id: TransactionId = None, key: object = None):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class ReadReturn2PC(Message):
    __slots__ = ("txn_id", "key", "value", "version", "writer")
    priority = MessagePriority.READ
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        version: int = 0,
        writer: Optional[TransactionId] = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.version = version
        self.writer = writer

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


class Prepare2PC(Message):
    __slots__ = ("txn_id", "read_versions", "write_items")
    priority = MessagePriority.COMMIT
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        read_versions: Tuple[Tuple[object, int], ...] = (),
        write_items: Tuple[Tuple[object, object], ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.read_versions = read_versions
        self.write_items = write_items

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48 + 24 * len(self.read_versions) + 32 * len(self.write_items)


class Vote2PC(Message):
    __slots__ = ("txn_id", "success")
    priority = MessagePriority.COMMIT
    base_size = 40

    def __init__(self, txn_id: TransactionId = None, success: bool = False):
        Message.__init__(self)
        self.txn_id = txn_id
        self.success = success

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class Decide2PC(Message):
    __slots__ = ("txn_id", "outcome")
    priority = MessagePriority.CONTROL
    base_size = 40

    def __init__(self, txn_id: TransactionId = None, outcome: bool = False):
        Message.__init__(self)
        self.txn_id = txn_id
        self.outcome = outcome

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class DecideAck2PC(Message):
    """Decide acknowledgement, carrying the installed per-key version numbers.

    The version numbers are the participant's post-apply counters: the true
    per-key installation order.  The coordinator records them as version
    hints so the consistency checker does not have to fall back to response
    order, which can disagree with the lock order when transactions with
    different participant sets complete their decide rounds at different
    speeds.
    """

    __slots__ = ("txn_id", "versions")
    priority = MessagePriority.CONTROL
    base_size = 32

    def __init__(
        self,
        txn_id: TransactionId = None,
        versions: Tuple[Tuple[object, int], ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.versions = versions

    def size_estimate(self, codec=None, peer=None) -> int:
        return 32 + 24 * len(self.versions)


@dataclass
class _KeyState:
    """Single-version record of one key."""

    value: object = 0
    version: int = 0
    writer: Optional[TransactionId] = None


class TwoPCNode(ProtocolRuntime):
    """One node of the 2PC-baseline store."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._data: Dict[object, _KeyState] = {}
        self.locks = LockTable(self.sim, name=f"2pc-locks@{self.node_id}", owner=self.node_id)
        # Participant state for in-flight rounds.
        self._prepared: Dict[TransactionId, Prepare2PC] = {}
        self.register_handler(ReadRequest2PC, self.on_read_request)
        self.register_handler(Prepare2PC, self.on_prepare)
        self.register_handler(Decide2PC, self.on_decide)

    # ------------------------------------------------------------------
    def preload(self, keys, initial_value=0) -> None:
        for key in keys:
            if self.is_replica_of(key):
                self._data[key] = _KeyState(value=initial_value)

    # ------------------------------------------------------------------
    # Fault plane
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Textbook participant crash: only *prepared* state is durable.

        A participant force-writes the prepare record before voting yes, so
        ``_prepared`` and the prepared transactions' locks survive the crash
        (and keep blocking — 2PC's in-doubt window, resolved when the
        coordinator re-sends the decision).  Everything else — lock waiters
        and holders of transactions that never reached the vote — dies with
        the process.  The single-version store is the node's recovered data.
        """
        self.locks.reset_except(set(self._prepared))

    def on_restart(self) -> None:
        """Resolve in-doubt 2PC rounds pinned by transactions that died with us.

        A coordinated transaction that crashed mid-round left durable
        prepared entries and locks at its participants (this node included —
        it is its own participant, and ``on_crash`` deliberately preserved
        its prepared state).  The *recorded decision* is re-fanned to every
        participant: abort when the crash hit before the commit decision was
        taken (``internal_commit_time`` unset — the decide fan-out, when it
        happened at all, carried the same abort), commit when the decision
        was already taken and sent — a participant the original Decide never
        reached (crash, drop-mode partition) must apply, not abort, or the
        round's outcome would split across replicas.  ``on_decide`` is
        idempotent, so participants that already applied simply re-ack into
        the void.
        """
        for txn_id in sorted(self.coordinated):
            meta = self.coordinated[txn_id]
            crash_phase = meta.crash_phase
            if crash_phase is None:
                continue
            meta.crash_phase = None
            if crash_phase is not TransactionPhase.PREPARING:
                continue
            self.counters["crash_recoveries"] += 1
            outcome = meta.internal_commit_time is not None
            participants = set(
                self.placement.replicas_of(list(meta.read_set) + list(meta.write_set))
            )
            participants.add(self.node_id)
            for participant in sorted(participants):
                self.send(participant, Decide2PC(txn_id=txn_id, outcome=outcome))

    # ------------------------------------------------------------------
    # Server-side handlers
    # ------------------------------------------------------------------
    def on_read_request(self, message: ReadRequest2PC):
        yield self.cpu(self.service.read_local_us)
        state = self._data.get(message.key, _KeyState())
        self.respond(
            message,
            ReadReturn2PC(
                txn_id=message.txn_id,
                key=message.key,
                value=state.value,
                version=state.version,
                writer=state.writer,
            ),
        )

    def on_prepare(self, message: Prepare2PC):
        txn_id = message.txn_id
        local_reads = tuple(
            (key, version)
            for key, version in message.read_versions
            if self.is_replica_of(key)
        )
        local_writes = tuple(
            (key, value)
            for key, value in message.write_items
            if self.is_replica_of(key)
        )
        write_keys = tuple(key for key, _value in local_writes)
        read_keys = tuple(key for key, _version in local_reads)

        yield self.cpu(self.service.lock_op_us * max(1, len(read_keys) + len(write_keys)))
        locked = yield from self.locks.acquire_all(
            txn_id,
            exclusive_keys=write_keys,
            shared_keys=read_keys,
            timeout_us=self.config.timeouts.lock_timeout_us,
        )
        success = locked
        if locked:
            yield self.cpu(self.service.validate_key_us * max(1, len(read_keys)))
            for key, version in local_reads:
                current = self._data.get(key, _KeyState())
                if current.version != version:
                    success = False
                    break
        if not success and locked:
            self.locks.release(txn_id, list(write_keys) + list(read_keys))
        if success:
            self._prepared[txn_id] = Prepare2PC(
                txn_id=txn_id, read_versions=local_reads, write_items=local_writes
            )
        self.counters["prepares"] += 1
        self.respond(message, Vote2PC(txn_id=txn_id, success=success))

    def on_decide(self, message: Decide2PC):
        txn_id = message.txn_id
        prepared = self._prepared.pop(txn_id, None)
        installed = []
        if prepared is not None:
            read_keys = [key for key, _version in prepared.read_versions]
            write_keys = [key for key, _value in prepared.write_items]
            if message.outcome:
                yield self.cpu(self.service.commit_apply_us * max(1, len(write_keys)))
                for key, value in prepared.write_items:
                    state = self._data.setdefault(key, _KeyState())
                    state.value = value
                    state.version += 1
                    state.writer = txn_id
                    installed.append((key, state.version))
                self.counters["applies"] += 1
            self.locks.release(txn_id, read_keys + write_keys)
        self.respond(message, DecideAck2PC(txn_id=txn_id, versions=tuple(installed)))

    # ------------------------------------------------------------------
    # Coordinator side (Session interface)
    # ------------------------------------------------------------------
    def txn_read(self, meta: TransactionMeta, key: object):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after completion of {meta}")
        if key in meta.write_set:
            return meta.write_set[key]

        reply, _events = yield from self.fastest_round(
            self.replicas(key),
            lambda _replica: ReadRequest2PC(txn_id=meta.txn_id, key=key),
            trace_txn=meta.txn_id,
        )
        meta.record_read(
            key=key,
            value=reply.value,
            version_vc=meta.vc.with_entry(0, 0),
            writer=reply.writer,
            served_by=reply.sender,
        )
        # The scalar version number is what validation uses; stash it in the
        # read record via the metadata's generic container.
        meta.read_set[key].version_number = reply.version  # type: ignore[attr-defined]
        self.counters["client_reads"] += 1
        return reply.value

    def txn_commit(self, meta: TransactionMeta):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")
        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id

        read_versions = tuple(
            (key, getattr(record, "version_number", 0))
            for key, record in meta.read_set.items()
        )
        write_items = tuple(meta.write_set.items())
        participants: Set[int] = set(
            self.placement.replicas_of(list(meta.read_set) + list(meta.write_set))
        )
        participants.add(self.node_id)

        # Prepare phase: one shared vote round (crash-guard deadline included).
        outcome, _votes = yield from self.vote_round(
            sorted(participants),
            lambda _participant: Prepare2PC(
                txn_id=txn_id,
                read_versions=read_versions,
                write_items=write_items,
            ),
            self.config.timeouts.prepare_timeout_us,
            trace_txn=txn_id,
        )

        # Decide phase; wait for every participant's acknowledgement so the
        # client response order matches the data-store state (external
        # consistency).  In fault mode the decision is re-sent until every
        # participant answers — a crashed participant recovers its durable
        # prepared state and applies on the re-send (on_decide is
        # idempotent), which is what closes the in-doubt window.
        if outcome:
            meta.internal_commit_time = self.sim.now
        ordered_participants = sorted(participants)
        acks = yield from self.request_all(
            ordered_participants,
            lambda _participant: Decide2PC(txn_id=txn_id, outcome=outcome),
            trace_txn=txn_id,
            trace_name="decide",
        )

        if not outcome:
            return self._finish_abort(meta, reason="validation-or-lock")
        for participant in ordered_participants:
            ack: DecideAck2PC = acks[participant]
            for key, version in ack.versions:
                meta.version_hints[key] = float(version)
        counter = "update_commits" if meta.is_update else "read_only_commits"
        return self._finish_commit(meta, counter)


class TwoPCCluster(ProtocolCluster):
    """Cluster facade for the 2PC-baseline."""

    node_class = TwoPCNode
    protocol_name = "2pc"


register("2pc", TwoPCCluster)
