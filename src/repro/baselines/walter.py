"""Walter — Parallel Snapshot Isolation with vector timestamps.

Walter (Sovran et al., SOSP 2011) is the paper's "upper bound" competitor: it
synchronizes nodes with vector clocks like SSS but provides PSI, a weaker
isolation level, and therefore pays far less coordination:

* every key has a *preferred site* (its primary replica);
* a transaction reads from the snapshot defined by its start vector timestamp
  and never validates reads — read-only transactions never abort, never wait
  for writers and involve no commit-time communication;
* an update transaction whose written keys are all preferred-local commits on
  the **fast path**: a local write-write conflict check, a local sequence
  number, and asynchronous propagation of the new versions to the other
  replicas;
* otherwise the **slow path** runs a 2PC-like round over the written keys'
  preferred sites (lock, conflict check, vote, decide) and then propagates
  asynchronously.  The client is informed as soon as the decision is taken —
  without waiting for propagation — which is the principal reason Walter's
  transaction latency is lower than SSS's.

Only write-write conflicts abort transactions, so Walter's abort rate is far
below the 2PC-baseline's.  The reproduction keeps these performance-relevant
properties; PSI's long-fork anomaly is observable in the recorded histories
(the external-consistency checker is expected to fail on adversarial
interleavings, which is demonstrated in the test suite).

Under the fault plane (and only then) the node is crash-consistent: the
slow-path prepare buffers are durable 2PC-style (locks of prepared
transactions survive a crash, decides are delivered reliably from a durable
:class:`~repro.storage.durable_log.DecisionLog`), and the propagation stream
is genuinely durable — every outbound batch is force-written to a
:class:`~repro.storage.durable_log.PropagationLog` (which also owns the
site's commit sequence counter), receivers apply per-sender streams
gap-checked and idempotent behind a durable watermark, and everything above
the acked watermark is retransmitted on restart and on the fault-mode
cadence until acknowledged.  Fail-free runs never touch any of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.errors import TransactionStateError
from repro.common.ids import TransactionId
from repro.consistency.checkers import CheckResult, check_committed_reads
from repro.core.messages import vc_wire_size
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.network.message import Message, MessagePriority
from repro.protocols.cluster import ProtocolCluster
from repro.protocols.registry import register
from repro.protocols.runtime import ProtocolRuntime
from repro.storage.durable_log import DecisionLog, PropagationLog
from repro.storage.locks import LockTable


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class WalterRead(Message):
    __slots__ = ("txn_id", "key", "start_vts")
    priority = MessagePriority.READ
    base_size = 40

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        start_vts: VectorClock = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.start_vts = start_vts

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40 + vc_wire_size(self.start_vts, codec, peer)


class WalterReadReturn(Message):
    __slots__ = ("txn_id", "key", "value", "site", "seqno", "writer")
    priority = MessagePriority.READ
    base_size = 64

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        site: int = 0,
        seqno: int = 0,
        writer: Optional[TransactionId] = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.site = site
        self.seqno = seqno
        self.writer = writer

    def size_estimate(self, codec=None, peer=None) -> int:
        return 64


class WalterPrepare(Message):
    """Slow-path prepare sent to the preferred sites of written keys."""

    __slots__ = ("txn_id", "start_vts", "write_items")
    priority = MessagePriority.COMMIT
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        start_vts: VectorClock = None,
        write_items: Tuple[Tuple[object, object], ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.start_vts = start_vts
        self.write_items = write_items

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48 + 32 * len(self.write_items)


class WalterVote(Message):
    __slots__ = ("txn_id", "success")
    priority = MessagePriority.COMMIT
    base_size = 40

    def __init__(self, txn_id: TransactionId = None, success: bool = False):
        Message.__init__(self)
        self.txn_id = txn_id
        self.success = success

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class WalterDecide(Message):
    __slots__ = ("txn_id", "outcome", "site", "seqno")
    priority = MessagePriority.CONTROL
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        outcome: bool = False,
        site: int = 0,
        seqno: int = 0,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.outcome = outcome
        self.site = site
        self.seqno = seqno

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48


class WalterPropagate(Message):
    """Asynchronous replication of committed versions to the other replicas.

    In fault mode each batch additionally carries ``stream_seq``, its
    1-based position in the sender's per-destination durable propagation
    stream, so the receiver can detect gaps and apply idempotently;
    fail-free batches leave it 0 (and pay no wire cost for it).
    """

    __slots__ = ("txn_id", "site", "seqno", "write_items", "stream_seq")
    priority = MessagePriority.BULK
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        site: int = 0,
        seqno: int = 0,
        write_items: Tuple[Tuple[object, object], ...] = (),
        stream_seq: int = 0,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.site = site
        self.seqno = seqno
        self.write_items = write_items
        self.stream_seq = stream_seq

    def size_estimate(self, codec=None, peer=None) -> int:
        size = 48 + 32 * len(self.write_items)
        if self.stream_seq:
            size += 8
        return size


class WalterPropagateAck(Message):
    """Fault mode: cumulative per-sender propagation watermark."""

    __slots__ = ("watermark",)
    priority = MessagePriority.CONTROL
    base_size = 40

    def __init__(self, watermark: int = 0):
        Message.__init__(self)
        self.watermark = watermark

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class WalterDecideAck(Message):
    """Fault mode: acknowledges a reliably-delivered slow-path decide."""

    __slots__ = ("txn_id",)
    priority = MessagePriority.CONTROL
    base_size = 40

    def __init__(self, txn_id: TransactionId = None):
        Message.__init__(self)
        self.txn_id = txn_id

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


@dataclass
class _WalterVersion:
    value: object
    site: int
    seqno: int
    writer: Optional[TransactionId]


class WalterNode(ProtocolRuntime):
    """One node of the Walter (PSI) store."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        n_nodes = self.config.n_nodes
        # Per-key version chains (oldest first, newest last).
        self._chains: Dict[object, List[_WalterVersion]] = {}
        # Committed vector timestamp: highest sequence number applied per site.
        self.committed_vts = VectorClock.zeros(n_nodes)
        # Durable outbound propagation streams; also owns the site commit
        # sequence counter (the historical ``_local_seq``), so a restarted
        # preferred site never reuses a seqno it already handed out.
        self.plog = PropagationLog()
        self.locks = LockTable(self.sim, name=f"walter-locks@{self.node_id}", owner=self.node_id)
        self._prepared: Dict[TransactionId, Tuple[Tuple[object, object], ...]] = {}
        # Fault mode only — durable slow-path state: coordinator decisions
        # awaiting reliable delivery, recorded votes (for idempotent prepare
        # re-sends), delivered decides, and the per-sender propagation
        # watermark.  All grow with the faulted transactions of a run, like
        # the other fault-recovery indexes; fail-free runs never write them.
        self.decisions = DecisionLog()
        self._vote_log: Dict[TransactionId, bool] = {}
        self._decide_done: set = set()
        self._prop_applied: Dict[int, int] = {}
        # Fault mode only — volatile: prepares in flight (dedupes re-sends
        # racing their original), out-of-order propagation batches awaiting
        # their gap, and the retransmit-loop guard.
        self._preparing: set = set()
        self._prop_buffer: Dict[int, Dict[int, tuple]] = {}
        self._retx_running = False
        self._prep_progress = self.sim.signal(name=f"walter-prepare@{self.node_id}")
        self.register_handler(WalterRead, self.on_read)
        self.register_handler(WalterPrepare, self.on_prepare)
        self.register_handler(WalterDecide, self.on_decide)
        self.register_handler(WalterPropagate, self.on_propagate)
        self.register_handler(WalterPropagateAck, self.on_propagate_ack)

    @property
    def _local_seq(self) -> int:
        return self.plog.seqno

    # ------------------------------------------------------------------
    def preload(self, keys, initial_value=0) -> None:
        for key in keys:
            if self.is_replica_of(key):
                self._chains[key] = [
                    _WalterVersion(value=initial_value, site=0, seqno=0, writer=None)
                ]

    # ------------------------------------------------------------------
    # Fault plane
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Volatile state: non-prepared locks, in-flight prepares, gap buffers.

        The version chains, the committed vector timestamp, the propagation
        log (with the site sequence counter), the slow-path prepare buffers
        with their recorded votes, the decision log and the propagation
        watermark are all durable.  Prepared transactions keep their locks
        across the crash — 2PC-style — so a decide arriving after the
        restart still finds the write-set it covers.
        """
        self.locks.reset_except(set(self._prepared))
        self._preparing.clear()
        self._prop_buffer.clear()

    def on_restart(self) -> None:
        """Re-deliver decisions and retransmit unacked propagation.

        Transactions this node was coordinating that died mid-vote-round
        never decided — record a durable abort decision for them (their
        prepared sites hold locks that would otherwise leak).  Then re-fan
        every undelivered decision — including this node's own prepared
        entry — and retransmit everything above the acked propagation
        watermarks.
        """
        for txn_id in sorted(self.coordinated):
            meta = self.coordinated[txn_id]
            crash_phase = meta.crash_phase
            if crash_phase is None:
                continue
            meta.crash_phase = None
            if crash_phase is not TransactionPhase.PREPARING:
                continue
            self.counters["crash_recoveries"] += 1
            if txn_id in self.decisions:
                continue
            preferred_sites = tuple(sorted({self.primary(key) for key in meta.write_set}))
            self.decisions.record(txn_id, False, 0, preferred_sites)
        for txn_id in self.decisions.txn_ids():
            self.spawn_process(
                self._decide_fanout(txn_id), name=f"walter-decide:{txn_id}"
            )
        # The pre-crash retransmit loop died with the node's epoch.
        self._retx_running = False
        self._retransmit_unacked()
        self._ensure_retransmit_loop()

    # ------------------------------------------------------------------
    # Storage helpers
    # ------------------------------------------------------------------
    def _install(
        self,
        key: object,
        value: object,
        site: int,
        seqno: int,
        writer: Optional[TransactionId],
    ) -> None:
        chain = self._chains.setdefault(key, [])
        chain.append(_WalterVersion(value=value, site=site, seqno=seqno, writer=writer))
        if self.committed_vts[site] < seqno:
            self.committed_vts = self.committed_vts.with_entry(site, seqno)

    def _visible_version(self, key: object, start_vts: VectorClock) -> _WalterVersion:
        chain = self._chains.get(key, [])
        for version in reversed(chain):
            if version.writer is None or version.seqno <= start_vts[version.site]:
                return version
        # A key always has its preloaded version.
        return _WalterVersion(value=0, site=0, seqno=0, writer=None)

    def _newer_version_exists(self, key: object, start_vts: VectorClock) -> bool:
        """Write-write conflict check against the transaction's snapshot."""
        chain = self._chains.get(key, [])
        for version in reversed(chain):
            if version.writer is None:
                return False
            if version.seqno > start_vts[version.site]:
                return True
            return False
        return False

    # ------------------------------------------------------------------
    # Server-side handlers
    # ------------------------------------------------------------------
    def on_read(self, message: WalterRead):
        yield self.cpu(self.service.read_local_us)
        version = self._visible_version(message.key, message.start_vts)
        self.respond(
            message,
            WalterReadReturn(
                txn_id=message.txn_id,
                key=message.key,
                value=version.value,
                site=version.site,
                seqno=version.seqno,
                writer=version.writer,
            ),
        )

    def on_prepare(self, message: WalterPrepare):
        txn_id = message.txn_id
        if self._fault_mode:
            # Idempotency against the coordinator's re-send cadence: a vote
            # already recorded is simply repeated; a re-send racing its own
            # original (still mid-prepare on this node) waits for it.
            recorded = self._vote_log.get(txn_id)
            if recorded is not None:
                self.respond(message, WalterVote(txn_id=txn_id, success=recorded))
                return
            if txn_id in self._preparing:
                yield self.sim.condition(
                    lambda: txn_id not in self._preparing,
                    self._prep_progress,
                    name=f"prepare-dup:{txn_id}",
                )
                self.respond(
                    message,
                    WalterVote(txn_id=txn_id, success=self._vote_log.get(txn_id, False)),
                )
                return
            self._preparing.add(txn_id)
        local_items = tuple(
            (key, value)
            for key, value in message.write_items
            if self.primary(key) == self.node_id
        )
        keys = tuple(key for key, _value in local_items)
        yield self.cpu(self.service.lock_op_us * max(1, len(keys)))
        locked = yield from self.locks.acquire_all(
            txn_id,
            exclusive_keys=keys,
            timeout_us=self.config.timeouts.lock_timeout_us,
        )
        success = locked
        if locked:
            for key in keys:
                if self._newer_version_exists(key, message.start_vts):
                    success = False
                    break
        if not success and locked:
            self.locks.release(txn_id, keys)
        if self._fault_mode:
            if success and txn_id in self._decide_done:
                # A stale re-sent prepare delivered after the decision was
                # already applied: re-preparing would leak the locks forever
                # (no second decide is coming).
                self.locks.release(txn_id, keys)
                success = False
            if success:
                self._prepared[txn_id] = local_items
            self._vote_log[txn_id] = success
            self._preparing.discard(txn_id)
            self._prep_progress.notify()
            self.respond(message, WalterVote(txn_id=txn_id, success=success))
            return
        if success:
            self._prepared[txn_id] = local_items
        self.respond(message, WalterVote(txn_id=txn_id, success=success))

    def on_decide(self, message: WalterDecide):
        txn_id = message.txn_id
        if self._fault_mode:
            # Reliable delivery: decides arrive through the coordinator's
            # re-sending fan-out, so apply exactly once (keeping the prepared
            # entry until the installation lands — a crash mid-apply redoes
            # it from the re-send) and always acknowledge.
            if txn_id not in self._decide_done:
                items = self._prepared.get(txn_id, ())
                if message.outcome and items:
                    yield self.cpu(self.service.commit_apply_us * max(1, len(items)))
                if txn_id not in self._decide_done:
                    # Re-checked after the yield: a duplicate decide may have
                    # completed the installation while we held the CPU.
                    if message.outcome and items:
                        for key, value in items:
                            self._install(key, value, message.site, message.seqno, txn_id)
                        self._async_propagate(txn_id, message.site, message.seqno, items)
                    self._decide_done.add(txn_id)
                    items = self._prepared.pop(txn_id, ())
                    self._vote_log.pop(txn_id, None)
                    keys = [key for key, _value in items]
                    if keys:
                        self.locks.release(txn_id, keys)
            self.respond(message, WalterDecideAck(txn_id=txn_id))
            return
        items = self._prepared.pop(txn_id, ())
        keys = [key for key, _value in items]
        if message.outcome and items:
            yield self.cpu(self.service.commit_apply_us * max(1, len(items)))
            for key, value in items:
                self._install(key, value, message.site, message.seqno, txn_id)
            # Propagate asynchronously to the remaining replicas of the keys.
            self._async_propagate(txn_id, message.site, message.seqno, items)
        if keys:
            self.locks.release(txn_id, keys)

    def on_propagate(self, message: WalterPropagate) -> None:
        if self._fault_mode and message.stream_seq:
            sender = message.sender
            applied = self._prop_applied.get(sender, 0)
            if message.stream_seq <= applied:
                # Retransmission of a batch we already applied.
                self.counters["propagation_duplicates"] += 1
            elif message.stream_seq > applied + 1:
                # Gap: an earlier batch of this sender's stream is missing
                # (lost while we were crashed or partitioned).  Buffer this
                # one and keep acking the old watermark so the sender's
                # cadence retransmits the gap.
                self._prop_buffer.setdefault(sender, {})[message.stream_seq] = (
                    message.txn_id,
                    message.site,
                    message.seqno,
                    message.write_items,
                )
                self.counters["propagation_gaps_buffered"] += 1
            else:
                self._apply_propagation(
                    message.site, message.seqno, message.txn_id, message.write_items
                )
                applied += 1
                buffered = self._prop_buffer.get(sender)
                while buffered:
                    successor = buffered.pop(applied + 1, None)
                    if successor is None:
                        break
                    txn_id, site, seqno, write_items = successor
                    self._apply_propagation(site, seqno, txn_id, write_items)
                    applied += 1
                # Same step as the installs: the watermark is force-written.
                self._prop_applied[sender] = applied
            self.send(sender, WalterPropagateAck(watermark=self._prop_applied.get(sender, 0)))
            return
        self._apply_propagation(
            message.site, message.seqno, message.txn_id, message.write_items
        )

    def _apply_propagation(self, site, seqno, txn_id, write_items) -> None:
        for key, value in write_items:
            if self.is_replica_of(key):
                self._install(key, value, site, seqno, txn_id)
        self.counters["propagations_applied"] += 1

    def on_propagate_ack(self, message: WalterPropagateAck) -> None:
        self.plog.ack(message.sender, message.watermark)

    def _async_propagate(
        self,
        txn_id: TransactionId,
        site: int,
        seqno: int,
        items: Tuple[Tuple[object, object], ...],
    ) -> None:
        destinations: Set[int] = set()
        for key, _value in items:
            destinations.update(self.replicas(key))
        destinations.discard(self.node_id)
        for destination in destinations:
            payload = tuple(
                (key, value)
                for key, value in items
                if destination in self.replicas(key)
            )
            if payload:
                if self._fault_mode:
                    # Force-write the batch to the durable stream before the
                    # send; the cadence retransmits it until acknowledged.
                    record = self.plog.append(destination, txn_id, site, seqno, payload)
                    self.send(
                        destination,
                        WalterPropagate(
                            txn_id=txn_id,
                            site=site,
                            seqno=seqno,
                            write_items=payload,
                            stream_seq=record.stream_seq,
                        ),
                    )
                else:
                    self.send(
                        destination,
                        WalterPropagate(txn_id=txn_id, site=site, seqno=seqno, write_items=payload),
                    )
        if self._fault_mode:
            self._ensure_retransmit_loop()

    # ------------------------------------------------------------------
    # Fault mode: reliable propagation and decide delivery
    # ------------------------------------------------------------------
    def _ensure_retransmit_loop(self) -> None:
        if self._retx_running or not self.plog.has_unacked():
            return
        self._retx_running = True
        self.spawn_process(self._retransmit_loop(), name=f"walter-retx@{self.node_id}")

    def _retransmit_loop(self):
        """Re-send unacked propagation batches on the fault-mode cadence."""
        try:
            while self.plog.has_unacked():
                yield self.sim.timeout(self.config.timeouts.crash_resubscribe_us)
                self._retransmit_unacked()
        finally:
            self._retx_running = False

    def _retransmit_unacked(self) -> None:
        for destination in self.plog.destinations_with_unacked():
            for record in self.plog.unacked(destination):
                self.counters["propagation_retransmits"] += 1
                self.send(
                    destination,
                    WalterPropagate(
                        txn_id=record.txn_id,
                        site=record.origin_site,
                        seqno=record.seqno,
                        write_items=record.write_items,
                        stream_seq=record.stream_seq,
                    ),
                )

    def _decide_fanout(self, txn_id: TransactionId):
        """Reliably deliver one durable decision to its prepared sites.

        ``request_all`` re-sends on the fault-mode cadence until every site
        (this node included — its own prepared entry and locks need the
        decide too) acknowledged; the decide handler is idempotent, so
        re-sends and restart re-fans are harmless.  The record is dropped
        only once every site acked.
        """
        decision = self.decisions.find(txn_id)
        if decision is None:
            return
        yield from self.request_all(
            list(decision.sites),
            lambda _site: WalterDecide(
                txn_id=txn_id,
                outcome=decision.outcome,
                site=self.node_id,
                seqno=decision.seqno,
            ),
            trace_txn=txn_id,
            trace_name="decide",
        )
        self.decisions.discard(txn_id)

    # ------------------------------------------------------------------
    # Coordinator side (Session interface)
    # ------------------------------------------------------------------
    def txn_read(self, meta: TransactionMeta, key: object):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after completion of {meta}")
        if key in meta.write_set:
            return meta.write_set[key]
        if not meta.first_read_done:
            meta.vc = self.committed_vts
            meta.first_read_done = True

        replicas = self.replicas(key)
        # Prefer the local replica (Walter reads are local whenever possible).
        if self.node_id in replicas:
            yield self.cpu(self.service.read_local_us)
            version = self._visible_version(key, meta.vc)
            reply_value, writer, served_by = version.value, version.writer, self.node_id
            version_seq = version.seqno
        else:
            reply, _events = yield from self.fastest_round(
                replicas,
                lambda _replica: WalterRead(txn_id=meta.txn_id, key=key, start_vts=meta.vc),
                trace_txn=meta.txn_id,
            )
            reply_value, writer, served_by = reply.value, reply.writer, reply.sender
            version_seq = reply.seqno

        meta.mark_has_read(served_by)
        meta.record_read(
            key=key,
            value=reply_value,
            version_vc=VectorClock.zeros(self.config.n_nodes).with_entry(served_by, version_seq),
            writer=writer,
            served_by=served_by,
        )
        self.counters["client_reads"] += 1
        return reply_value

    def txn_commit(self, meta: TransactionMeta):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")

        if not meta.write_set:
            # Read-only: nothing to do beyond informing the client.
            return self._finish_commit(meta, "read_only_commits")

        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id
        write_items = tuple(meta.write_set.items())
        preferred_sites: Set[int] = {self.primary(key) for key in meta.write_set}

        if preferred_sites == {self.node_id}:
            committed = yield from self._fast_commit(meta, write_items)
        else:
            committed = yield from self._slow_commit(meta, write_items, preferred_sites)
        if not committed:
            return self._finish_abort(meta, reason="ww-conflict")
        meta.internal_commit_time = self.sim.now
        return self._finish_commit(meta, "update_commits")

    def _fast_commit(self, meta: TransactionMeta, write_items):
        """All written keys are preferred-local: commit without coordination."""
        txn_id = meta.txn_id
        keys = tuple(key for key, _value in write_items)
        locked = yield from self.locks.acquire_all(
            txn_id,
            exclusive_keys=keys,
            timeout_us=self.config.timeouts.lock_timeout_us,
        )
        if not locked:
            return False
        conflict = any(self._newer_version_exists(key, meta.vc) for key in keys)
        if conflict:
            self.locks.release(txn_id, keys)
            return False
        yield self.cpu(self.service.commit_apply_us * max(1, len(keys)))
        seqno = self.plog.next_seqno()
        for key, value in write_items:
            self._install(key, value, self.node_id, seqno, txn_id)
        self.locks.release(txn_id, keys)
        self._async_propagate(txn_id, self.node_id, seqno, write_items)
        self.counters["fast_commits"] += 1
        return True

    def _slow_commit(self, meta: TransactionMeta, write_items, preferred_sites):
        """2PC-like round over the written keys' preferred sites."""
        txn_id = meta.txn_id
        sites = sorted(preferred_sites)

        def make_prepare(_site):
            return WalterPrepare(txn_id=txn_id, start_vts=meta.vc, write_items=write_items)

        if self._fault_mode:
            # Bounded prepare: the re-send cadence detects a dead participant
            # within the retry envelope instead of idling out the full
            # prepare timeout; the decision is force-written and delivered
            # reliably by a background fan-out — the client is answered now,
            # as on the fail-free path.
            outcome, _votes = yield from self.vote_round_retry(
                sites,
                make_prepare,
                retry_us=self.config.timeouts.crash_resubscribe_us,
                max_resends=self.config.timeouts.prepare_retry_limit,
                trace_txn=txn_id,
            )
            seqno = self.plog.next_seqno()
            self.decisions.record(txn_id, outcome, seqno, tuple(sites))
            self.spawn_process(
                self._decide_fanout(txn_id), name=f"walter-decide:{txn_id}"
            )
            self.counters["slow_commits"] += 1
            return outcome
        outcome, _votes = yield from self.vote_round(
            sites,
            make_prepare,
            self.config.timeouts.prepare_timeout_us,
            trace_txn=txn_id,
        )

        seqno = self.plog.next_seqno()
        for site in sites:
            self.send(
                site,
                WalterDecide(
                    txn_id=txn_id,
                    outcome=outcome,
                    site=self.node_id,
                    seqno=seqno,
                ),
            )
        self.counters["slow_commits"] += 1
        return outcome


class WalterCluster(ProtocolCluster):
    """Cluster facade for the Walter (PSI) baseline."""

    node_class = WalterNode
    protocol_name = "walter"

    def check_contract(self) -> List[CheckResult]:
        """Walter's PSI contract under faults.

        PSI permits long forks and torn cross-site snapshot cuts, so the
        external-consistency and consistent-cut checks legitimately fail on
        adversarial interleavings; what Walter *does* promise — and what the
        durable propagation plane restores under crashes — is dirty-read
        freedom (every read from a committed writer) and convergence of
        every key's replicas once propagation drains.
        """
        return [
            check_committed_reads(self.history),
            self.check_replica_convergence(),
        ]

    def check_replica_convergence(self) -> CheckResult:
        """Every replica of a key holds the same committed version set.

        A propagation batch lost to a crash or partition (and never
        retransmitted) surfaces here as a replica missing a ``(site,
        seqno)`` version that its peers hold.  Meaningful at quiescence —
        after the run's drain, when the durable streams have been acked.
        """
        violations: List[str] = []
        checked = 0
        for key in self.keys:
            replicas = self.placement.replicas(key)
            if len(replicas) < 2:
                continue
            checked += 1
            held: Dict[int, set] = {}
            for node_id in replicas:
                chain = self.nodes[node_id]._chains.get(key, [])
                held[node_id] = {
                    (version.site, version.seqno)
                    for version in chain
                    if version.writer is not None
                }
            union = set().union(*held.values())
            for node_id in sorted(held):
                missing = union - held[node_id]
                if missing:
                    violations.append(
                        f"replica {node_id} of {key!r} is missing committed "
                        f"versions {sorted(missing)}"
                    )
        return CheckResult(
            ok=not violations,
            name="walter-replica-convergence",
            violations=violations,
            checked_transactions=checked,
        )


register("walter", WalterCluster)
