"""Walter — Parallel Snapshot Isolation with vector timestamps.

Walter (Sovran et al., SOSP 2011) is the paper's "upper bound" competitor: it
synchronizes nodes with vector clocks like SSS but provides PSI, a weaker
isolation level, and therefore pays far less coordination:

* every key has a *preferred site* (its primary replica);
* a transaction reads from the snapshot defined by its start vector timestamp
  and never validates reads — read-only transactions never abort, never wait
  for writers and involve no commit-time communication;
* an update transaction whose written keys are all preferred-local commits on
  the **fast path**: a local write-write conflict check, a local sequence
  number, and asynchronous propagation of the new versions to the other
  replicas;
* otherwise the **slow path** runs a 2PC-like round over the written keys'
  preferred sites (lock, conflict check, vote, decide) and then propagates
  asynchronously.  The client is informed as soon as the decision is taken —
  without waiting for propagation — which is the principal reason Walter's
  transaction latency is lower than SSS's.

Only write-write conflicts abort transactions, so Walter's abort rate is far
below the 2PC-baseline's.  The reproduction keeps these performance-relevant
properties; PSI's long-fork anomaly is observable in the recorded histories
(the external-consistency checker is expected to fail on adversarial
interleavings, which is demonstrated in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.common.errors import TransactionStateError
from repro.common.ids import TransactionId
from repro.core.messages import vc_wire_size
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.network.message import Message, MessagePriority
from repro.protocols.cluster import ProtocolCluster
from repro.protocols.registry import register
from repro.protocols.runtime import ProtocolRuntime
from repro.storage.locks import LockTable


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class WalterRead(Message):
    __slots__ = ("txn_id", "key", "start_vts")
    priority = MessagePriority.READ
    base_size = 40

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        start_vts: VectorClock = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.start_vts = start_vts

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40 + vc_wire_size(self.start_vts, codec, peer)


class WalterReadReturn(Message):
    __slots__ = ("txn_id", "key", "value", "site", "seqno", "writer")
    priority = MessagePriority.READ
    base_size = 64

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        site: int = 0,
        seqno: int = 0,
        writer: Optional[TransactionId] = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.site = site
        self.seqno = seqno
        self.writer = writer

    def size_estimate(self, codec=None, peer=None) -> int:
        return 64


class WalterPrepare(Message):
    """Slow-path prepare sent to the preferred sites of written keys."""

    __slots__ = ("txn_id", "start_vts", "write_items")
    priority = MessagePriority.COMMIT
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        start_vts: VectorClock = None,
        write_items: Tuple[Tuple[object, object], ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.start_vts = start_vts
        self.write_items = write_items

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48 + 32 * len(self.write_items)


class WalterVote(Message):
    __slots__ = ("txn_id", "success")
    priority = MessagePriority.COMMIT
    base_size = 40

    def __init__(self, txn_id: TransactionId = None, success: bool = False):
        Message.__init__(self)
        self.txn_id = txn_id
        self.success = success

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class WalterDecide(Message):
    __slots__ = ("txn_id", "outcome", "site", "seqno")
    priority = MessagePriority.CONTROL
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        outcome: bool = False,
        site: int = 0,
        seqno: int = 0,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.outcome = outcome
        self.site = site
        self.seqno = seqno

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48


class WalterPropagate(Message):
    """Asynchronous replication of committed versions to the other replicas."""

    __slots__ = ("txn_id", "site", "seqno", "write_items")
    priority = MessagePriority.BULK
    base_size = 48

    def __init__(
        self,
        txn_id: TransactionId = None,
        site: int = 0,
        seqno: int = 0,
        write_items: Tuple[Tuple[object, object], ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.site = site
        self.seqno = seqno
        self.write_items = write_items

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48 + 32 * len(self.write_items)


@dataclass
class _WalterVersion:
    value: object
    site: int
    seqno: int
    writer: Optional[TransactionId]


class WalterNode(ProtocolRuntime):
    """One node of the Walter (PSI) store."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        n_nodes = self.config.n_nodes
        # Per-key version chains (oldest first, newest last).
        self._chains: Dict[object, List[_WalterVersion]] = {}
        # Committed vector timestamp: highest sequence number applied per site.
        self.committed_vts = VectorClock.zeros(n_nodes)
        self._local_seq = 0
        self.locks = LockTable(self.sim, name=f"walter-locks@{self.node_id}")
        self._prepared: Dict[TransactionId, Tuple[Tuple[object, object], ...]] = {}
        self.register_handler(WalterRead, self.on_read)
        self.register_handler(WalterPrepare, self.on_prepare)
        self.register_handler(WalterDecide, self.on_decide)
        self.register_handler(WalterPropagate, self.on_propagate)

    # ------------------------------------------------------------------
    def preload(self, keys, initial_value=0) -> None:
        for key in keys:
            if self.is_replica_of(key):
                self._chains[key] = [
                    _WalterVersion(value=initial_value, site=0, seqno=0, writer=None)
                ]

    # ------------------------------------------------------------------
    # Fault plane
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Volatile state: the lock table and the slow-path prepare buffers.

        The version chains, the committed vector timestamp and the local
        sequence counter are durable — ``_local_seq`` in particular must
        survive so a restarted preferred site never reuses a sequence number
        it already handed out.
        """
        self._prepared.clear()
        self.locks.reset()

    def on_restart(self) -> None:
        """Abort slow-path rounds that were in flight when we crashed.

        Preferred sites holding prepared write-sets (and their locks) for a
        transaction whose coordinator died release them on this decided
        abort; without it the locks leak until the end of the run.
        """
        for txn_id in sorted(self.coordinated):
            meta = self.coordinated[txn_id]
            crash_phase = meta.crash_phase
            if crash_phase is None:
                continue
            meta.crash_phase = None
            if crash_phase is not TransactionPhase.PREPARING:
                continue
            self.counters["crash_recoveries"] += 1
            preferred_sites = {self.primary(key) for key in meta.write_set}
            preferred_sites.discard(self.node_id)
            for site in sorted(preferred_sites):
                self.send(
                    site,
                    WalterDecide(txn_id=txn_id, outcome=False, site=self.node_id, seqno=0),
                )

    # ------------------------------------------------------------------
    # Storage helpers
    # ------------------------------------------------------------------
    def _install(
        self,
        key: object,
        value: object,
        site: int,
        seqno: int,
        writer: Optional[TransactionId],
    ) -> None:
        chain = self._chains.setdefault(key, [])
        chain.append(_WalterVersion(value=value, site=site, seqno=seqno, writer=writer))
        if self.committed_vts[site] < seqno:
            self.committed_vts = self.committed_vts.with_entry(site, seqno)

    def _visible_version(self, key: object, start_vts: VectorClock) -> _WalterVersion:
        chain = self._chains.get(key, [])
        for version in reversed(chain):
            if version.writer is None or version.seqno <= start_vts[version.site]:
                return version
        # A key always has its preloaded version.
        return _WalterVersion(value=0, site=0, seqno=0, writer=None)

    def _newer_version_exists(self, key: object, start_vts: VectorClock) -> bool:
        """Write-write conflict check against the transaction's snapshot."""
        chain = self._chains.get(key, [])
        for version in reversed(chain):
            if version.writer is None:
                return False
            if version.seqno > start_vts[version.site]:
                return True
            return False
        return False

    # ------------------------------------------------------------------
    # Server-side handlers
    # ------------------------------------------------------------------
    def on_read(self, message: WalterRead):
        yield self.cpu(self.service.read_local_us)
        version = self._visible_version(message.key, message.start_vts)
        self.respond(
            message,
            WalterReadReturn(
                txn_id=message.txn_id,
                key=message.key,
                value=version.value,
                site=version.site,
                seqno=version.seqno,
                writer=version.writer,
            ),
        )

    def on_prepare(self, message: WalterPrepare):
        txn_id = message.txn_id
        local_items = tuple(
            (key, value)
            for key, value in message.write_items
            if self.primary(key) == self.node_id
        )
        keys = tuple(key for key, _value in local_items)
        yield self.cpu(self.service.lock_op_us * max(1, len(keys)))
        locked = yield from self.locks.acquire_all(
            txn_id,
            exclusive_keys=keys,
            timeout_us=self.config.timeouts.lock_timeout_us,
        )
        success = locked
        if locked:
            for key in keys:
                if self._newer_version_exists(key, message.start_vts):
                    success = False
                    break
        if not success and locked:
            self.locks.release(txn_id, keys)
        if success:
            self._prepared[txn_id] = local_items
        self.respond(message, WalterVote(txn_id=txn_id, success=success))

    def on_decide(self, message: WalterDecide):
        txn_id = message.txn_id
        items = self._prepared.pop(txn_id, ())
        keys = [key for key, _value in items]
        if message.outcome and items:
            yield self.cpu(self.service.commit_apply_us * max(1, len(items)))
            for key, value in items:
                self._install(key, value, message.site, message.seqno, txn_id)
            # Propagate asynchronously to the remaining replicas of the keys.
            self._async_propagate(txn_id, message.site, message.seqno, items)
        if keys:
            self.locks.release(txn_id, keys)

    def on_propagate(self, message: WalterPropagate) -> None:
        for key, value in message.write_items:
            if self.is_replica_of(key):
                self._install(key, value, message.site, message.seqno, message.txn_id)
        self.counters["propagations_applied"] += 1

    def _async_propagate(
        self,
        txn_id: TransactionId,
        site: int,
        seqno: int,
        items: Tuple[Tuple[object, object], ...],
    ) -> None:
        destinations: Set[int] = set()
        for key, _value in items:
            destinations.update(self.replicas(key))
        destinations.discard(self.node_id)
        for destination in destinations:
            payload = tuple(
                (key, value)
                for key, value in items
                if destination in self.replicas(key)
            )
            if payload:
                self.send(
                    destination,
                    WalterPropagate(txn_id=txn_id, site=site, seqno=seqno, write_items=payload),
                )

    # ------------------------------------------------------------------
    # Coordinator side (Session interface)
    # ------------------------------------------------------------------
    def txn_read(self, meta: TransactionMeta, key: object):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after completion of {meta}")
        if key in meta.write_set:
            return meta.write_set[key]
        if not meta.first_read_done:
            meta.vc = self.committed_vts
            meta.first_read_done = True

        replicas = self.replicas(key)
        # Prefer the local replica (Walter reads are local whenever possible).
        if self.node_id in replicas:
            yield self.cpu(self.service.read_local_us)
            version = self._visible_version(key, meta.vc)
            reply_value, writer, served_by = version.value, version.writer, self.node_id
            version_seq = version.seqno
        else:
            reply, _events = yield from self.fastest_round(
                replicas,
                lambda _replica: WalterRead(txn_id=meta.txn_id, key=key, start_vts=meta.vc),
            )
            reply_value, writer, served_by = reply.value, reply.writer, reply.sender
            version_seq = reply.seqno

        meta.mark_has_read(served_by)
        meta.record_read(
            key=key,
            value=reply_value,
            version_vc=VectorClock.zeros(self.config.n_nodes).with_entry(served_by, version_seq),
            writer=writer,
            served_by=served_by,
        )
        self.counters["client_reads"] += 1
        return reply_value

    def txn_commit(self, meta: TransactionMeta):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")

        if not meta.write_set:
            # Read-only: nothing to do beyond informing the client.
            return self._finish_commit(meta, "read_only_commits")

        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id
        write_items = tuple(meta.write_set.items())
        preferred_sites: Set[int] = {self.primary(key) for key in meta.write_set}

        if preferred_sites == {self.node_id}:
            committed = yield from self._fast_commit(meta, write_items)
        else:
            committed = yield from self._slow_commit(meta, write_items, preferred_sites)
        if not committed:
            return self._finish_abort(meta, reason="ww-conflict")
        meta.internal_commit_time = self.sim.now
        return self._finish_commit(meta, "update_commits")

    def _fast_commit(self, meta: TransactionMeta, write_items):
        """All written keys are preferred-local: commit without coordination."""
        txn_id = meta.txn_id
        keys = tuple(key for key, _value in write_items)
        locked = yield from self.locks.acquire_all(
            txn_id,
            exclusive_keys=keys,
            timeout_us=self.config.timeouts.lock_timeout_us,
        )
        if not locked:
            return False
        conflict = any(self._newer_version_exists(key, meta.vc) for key in keys)
        if conflict:
            self.locks.release(txn_id, keys)
            return False
        yield self.cpu(self.service.commit_apply_us * max(1, len(keys)))
        self._local_seq += 1
        seqno = self._local_seq
        for key, value in write_items:
            self._install(key, value, self.node_id, seqno, txn_id)
        self.locks.release(txn_id, keys)
        self._async_propagate(txn_id, self.node_id, seqno, write_items)
        self.counters["fast_commits"] += 1
        return True

    def _slow_commit(self, meta: TransactionMeta, write_items, preferred_sites):
        """2PC-like round over the written keys' preferred sites."""
        txn_id = meta.txn_id
        outcome, _votes = yield from self.vote_round(
            sorted(preferred_sites),
            lambda _site: WalterPrepare(txn_id=txn_id, start_vts=meta.vc, write_items=write_items),
            self.config.timeouts.prepare_timeout_us,
        )

        self._local_seq += 1
        seqno = self._local_seq
        for site in sorted(preferred_sites):
            self.send(
                site,
                WalterDecide(
                    txn_id=txn_id,
                    outcome=outcome,
                    site=self.node_id,
                    seqno=seqno,
                ),
            )
        self.counters["slow_commits"] += 1
        return outcome


class WalterCluster(ProtocolCluster):
    """Cluster facade for the Walter (PSI) baseline."""

    node_class = WalterNode
    protocol_name = "walter"


register("walter", WalterCluster)
