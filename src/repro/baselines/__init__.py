"""Competitor protocols re-implemented on the same substrate as SSS.

The paper compares SSS against three systems, all re-implemented on the same
software infrastructure for fairness; this package does the same on top of
the simulated substrate:

* :mod:`repro.baselines.twopc` — the 2PC-baseline: every transaction
  (read-only included) validates its reads and commits through two-phase
  commit over a single-version store.  Externally consistent, but read-only
  transactions can abort.
* :mod:`repro.baselines.walter` — Walter: Parallel Snapshot Isolation with
  per-node sequence numbers forming vector timestamps, preferred sites, a
  fast local commit path and asynchronous propagation.  Weaker than
  serializability; read-only transactions never abort and never wait.
* :mod:`repro.baselines.rococo` — ROCOCO: a two-round dependency-collecting
  protocol with deferrable pieces; update transactions never abort, read-only
  transactions use an optimistic two-round snapshot read that retries when a
  concurrent update slips in between the rounds.

Every baseline extends the unified protocol layer — the nodes subclass
:class:`repro.protocols.runtime.ProtocolRuntime`, the clusters subclass
:class:`repro.protocols.cluster.ProtocolCluster`, and each registers itself
in :data:`repro.protocols.REGISTRY` — so the benchmark harness treats all
four protocols uniformly through one registry.
"""

from repro.baselines.base import BaselineCluster, BaseProtocolNode
from repro.baselines.rococo import RococoCluster, RococoNode
from repro.baselines.twopc import TwoPCCluster, TwoPCNode
from repro.baselines.walter import WalterCluster, WalterNode

__all__ = [
    "BaseProtocolNode",
    "BaselineCluster",
    "RococoCluster",
    "RococoNode",
    "TwoPCCluster",
    "TwoPCNode",
    "WalterCluster",
    "WalterNode",
]
