"""ROCOCO — a two-round, dependency-collecting external-consistent protocol.

ROCOCO (Mu et al., OSDI 2014) splits each transaction into *pieces*, one per
accessed key, and runs two rounds:

1. **Dispatch round** — the coordinator ships every piece to the server
   owning its key.  The server buffers the piece, records the transaction in
   the key's pending list and replies with the set of transactions currently
   pending on that key (the observed dependencies).
2. **Commit round** — the coordinator aggregates the dependency information,
   assigns the transaction its position in the execution order and asks every
   involved server to execute.  A server executes the buffered piece only
   after every pending transaction ordered before it has executed on that key
   (deferrable pieces are thereby reordered instead of aborted), then replies
   with the read value.  Update transactions therefore never abort.

Read-only transactions are *not* abort-free in ROCOCO: the reproduction
implements them, following the paper's description ("its read-only are not
abort-free and they need to wait for all conflicting update transactions in
order to execute"), as an optimistic two-round snapshot read — each key is
read once per round, a read waits while update pieces are pending on the key,
and the transaction aborts (and is retried by the client) whenever a key's
version changed between the two rounds.  The abort probability therefore
grows with the number of keys read, which is what produces the Figure 8
trend.

The paper disables replication when comparing against ROCOCO; this
implementation accordingly routes every piece to the key's primary replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import TransactionStateError
from repro.common.ids import TransactionId
from repro.core.metadata import TransactionMeta, TransactionPhase
from repro.network.message import Message, MessagePriority
from repro.protocols.cluster import ProtocolCluster
from repro.protocols.registry import register
from repro.protocols.runtime import ProtocolRuntime


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class PieceDispatch(Message):
    """Round 1: buffer a piece and collect dependencies."""

    __slots__ = ("txn_id", "key", "is_write", "write_value")
    priority = MessagePriority.COMMIT
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        is_write: bool = False,
        write_value: object = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.is_write = is_write
        self.write_value = write_value

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


class PieceDispatchReply(Message):
    __slots__ = ("txn_id", "key", "deps")
    priority = MessagePriority.COMMIT
    base_size = 40

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        deps: Tuple[TransactionId, ...] = (),
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.deps = deps

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40 + 16 * len(self.deps)


class PieceCommit(Message):
    """Round 2: execute the buffered piece in dependency order.

    The piece payload (``is_write`` / ``write_value``) rides along so a
    primary that crashed between the rounds — losing its piece buffer — can
    faithfully recreate the piece from a fault-mode re-send instead of
    degrading the write to a read.
    """

    __slots__ = ("txn_id", "key", "order", "is_write", "write_value")
    priority = MessagePriority.COMMIT
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        order: float = 0.0,
        is_write: bool = False,
        write_value: object = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.order = order
        self.is_write = is_write
        self.write_value = write_value

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


class PieceExecuted(Message):
    __slots__ = ("txn_id", "key", "value", "version", "writer")
    priority = MessagePriority.CONTROL
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        version: int = 0,
        writer: Optional[TransactionId] = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.version = version
        self.writer = writer

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


class PieceAbort(Message):
    """Fault-plane recovery: withdraw a dispatched-but-uncommitted piece.

    Sent by a restarted coordinator for transactions that crashed between
    their dispatch and commit rounds.  Only pieces that never received an
    execution order are withdrawn — an ordered piece will execute and clean
    itself up (its writes were decided atomically across all keys).
    """

    __slots__ = ("txn_id", "key")
    priority = MessagePriority.CONTROL
    base_size = 48

    def __init__(self, txn_id: TransactionId = None, key: object = None):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key

    def size_estimate(self, codec=None, peer=None) -> int:
        return 48


class SnapshotRead(Message):
    """Read-only transactions: one round of key reads."""

    __slots__ = ("txn_id", "key", "wait_for_pending")
    priority = MessagePriority.READ
    base_size = 40

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        wait_for_pending: bool = True,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.wait_for_pending = wait_for_pending

    def size_estimate(self, codec=None, peer=None) -> int:
        return 40


class SnapshotReadReturn(Message):
    __slots__ = ("txn_id", "key", "value", "version", "writer")
    priority = MessagePriority.READ
    base_size = 56

    def __init__(
        self,
        txn_id: TransactionId = None,
        key: object = None,
        value: object = None,
        version: int = 0,
        writer: Optional[TransactionId] = None,
    ):
        Message.__init__(self)
        self.txn_id = txn_id
        self.key = key
        self.value = value
        self.version = version
        self.writer = writer

    def size_estimate(self, codec=None, peer=None) -> int:
        return 56


@dataclass
class _RococoKey:
    """Server-side state of one key."""

    value: object = 0
    version: int = 0
    writer: Optional[TransactionId] = None


@dataclass
class _PendingPiece:
    txn_id: TransactionId
    is_write: bool
    write_value: object
    order: Optional[float] = None  # assigned by the commit round
    executed: bool = False


class RococoNode(ProtocolRuntime):
    """One node of the ROCOCO store."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._data: Dict[object, _RococoKey] = {}
        # Per-key pending pieces of dispatched-but-not-executed transactions.
        self._pending: Dict[object, Dict[TransactionId, _PendingPiece]] = {}
        # Fault mode only: per-key executed-piece tombstones, so a re-sent
        # PieceCommit whose original raced it can never double-apply (the
        # pending entry — and with it the ``executed`` flag — is popped at
        # execution).  Grows with the committed transactions of a run, like
        # the other fault-recovery indexes; fail-free runs never write it.
        self._executed_pieces: Dict[object, set] = {}
        self.register_handler(PieceDispatch, self.on_dispatch)
        self.register_handler(PieceCommit, self.on_commit)
        self.register_handler(PieceAbort, self.on_piece_abort)
        self.register_handler(SnapshotRead, self.on_snapshot_read)
        # Signal notified whenever a pending set or a key version changes.
        self._progress = self.sim.signal(name=f"rococo-progress@{self.node_id}")

    # ------------------------------------------------------------------
    def preload(self, keys, initial_value=0) -> None:
        for key in keys:
            if self.primary(key) == self.node_id:
                self._data[key] = _RococoKey(value=initial_value)

    # ------------------------------------------------------------------
    # Fault plane
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Volatile state: the buffered-but-unexecuted piece lists.

        The executed key states (value/version/writer) are the node's
        durable data.  Dropped pieces stall their coordinators' commit
        rounds — ROCOCO transactions block rather than abort on a crashed
        participant.
        """
        self._pending.clear()

    def on_restart(self) -> None:
        """Withdraw pieces left pending by transactions that died with us.

        An unordered piece buffered at an alive server blocks every later
        piece on its key (``ready()`` waits for it to receive an order that
        will never come); the restarted coordinator aborts them explicitly.
        """
        for txn_id in sorted(self.coordinated):
            meta = self.coordinated[txn_id]
            crash_phase = meta.crash_phase
            if crash_phase is None:
                continue
            meta.crash_phase = None
            if crash_phase is not TransactionPhase.PREPARING or meta.is_read_only:
                continue  # read-only rounds buffer no pieces
            self.counters["crash_recoveries"] += 1
            for key in sorted(set(meta.read_set) | set(meta.write_set), key=repr):
                primary = self.primary(key)
                if primary != self.node_id:
                    self.send(primary, PieceAbort(txn_id=txn_id, key=key))

    # ------------------------------------------------------------------
    # Server-side handlers
    # ------------------------------------------------------------------
    def on_dispatch(self, message: PieceDispatch):
        yield self.cpu(self.service.queue_op_us)
        pending = self._pending.setdefault(message.key, {})
        existing = pending.get(message.txn_id)
        if existing is not None:
            # Fault-mode re-send: the piece is already buffered (and may
            # even be ordered) — answer with the dependencies it would have
            # observed, without resetting its state.
            deps = tuple(t for t in pending if t != message.txn_id)
        else:
            deps = tuple(pending.keys())
            pending[message.txn_id] = _PendingPiece(
                txn_id=message.txn_id,
                is_write=message.is_write,
                write_value=message.write_value,
            )
        self._progress.notify()
        self.counters["pieces_dispatched"] += 1
        self.respond(
            message,
            PieceDispatchReply(txn_id=message.txn_id, key=message.key, deps=deps),
        )

    def on_commit(self, message: PieceCommit):
        key = message.key
        pending = self._pending.setdefault(key, {})
        piece = pending.get(message.txn_id)
        if piece is None:
            executed_here = self._executed_pieces.get(key)
            if executed_here is not None and message.txn_id in executed_here:
                # Fault-mode re-send racing its own original: the piece
                # already executed (and its pending entry was popped).
                # Answer from the current state without applying twice.
                state = self._data.setdefault(key, _RococoKey())
                self.respond(
                    message,
                    PieceExecuted(
                        txn_id=message.txn_id,
                        key=key,
                        value=state.value,
                        version=state.version,
                        writer=state.writer,
                    ),
                )
                return
            # The buffered piece is gone — a crash wiped the pending map (or
            # the dispatch itself was lost).  Recreate it from the commit
            # message's payload; fail-free runs never take this branch.
            piece = _PendingPiece(
                message.txn_id,
                is_write=message.is_write,
                write_value=message.write_value,
            )
            pending[message.txn_id] = piece
        piece.order = message.order
        self._progress.notify()

        # Deferrable execution: wait until no pending piece on this key is
        # ordered before us.  Pieces that are still in their dispatch round
        # (order not assigned yet) are also waited for — their commit round
        # will assign an order shortly and executing ahead of them could
        # order the two transactions differently on different keys, which is
        # exactly what ROCOCO's dependency tracking prevents.
        def ready() -> bool:
            for other in pending.values():
                if other.txn_id == message.txn_id or other.executed:
                    continue
                if other.order is None or other.order < message.order:
                    return False
            return True

        if not ready():
            self.counters["piece_waits"] += 1
            yield self.sim.condition(ready, self._progress, name=f"piece:{message.txn_id}")

        yield self.cpu(self.service.commit_apply_us)
        state = self._data.setdefault(key, _RococoKey())
        if piece.executed:
            # Fault-mode re-sent commit raced the original execution: answer
            # from the current state without applying twice.
            self.respond(
                message,
                PieceExecuted(
                    txn_id=message.txn_id,
                    key=key,
                    value=state.value,
                    version=state.version,
                    writer=state.writer,
                ),
            )
            return
        read_value = state.value
        read_version = state.version
        read_writer = state.writer
        if piece.is_write:
            state.value = piece.write_value
            state.version += 1
            state.writer = message.txn_id
        piece.executed = True
        if self._fault_mode:
            self._executed_pieces.setdefault(key, set()).add(message.txn_id)
        # pop, not del: a fault-plane PieceAbort (or a crash clearing the
        # pending map) may already have withdrawn the entry.
        pending.pop(message.txn_id, None)
        self._progress.notify()
        self.counters["pieces_executed"] += 1
        self.respond(
            message,
            PieceExecuted(
                txn_id=message.txn_id,
                key=key,
                value=read_value,
                version=read_version,
                writer=read_writer,
            ),
        )

    def on_piece_abort(self, message: PieceAbort) -> None:
        """Withdraw a dispatched piece that never received an order."""
        pending = self._pending.get(message.key)
        if pending is None:
            return
        piece = pending.get(message.txn_id)
        if piece is None or piece.order is not None:
            # Ordered pieces execute and clean themselves up.
            return
        del pending[message.txn_id]
        self.counters["pieces_aborted"] += 1
        self._progress.notify()

    def on_snapshot_read(self, message: SnapshotRead):
        key = message.key
        if message.wait_for_pending:
            pending = self._pending.setdefault(key, {})

            def no_pending_writers() -> bool:
                return not any(piece.is_write for piece in pending.values())

            if not no_pending_writers():
                self.counters["read_only_waits"] += 1
                yield self.sim.condition(
                    no_pending_writers, self._progress, name=f"ro-wait:{message.txn_id}"
                )
        yield self.cpu(self.service.read_local_us)
        state = self._data.setdefault(key, _RococoKey())
        self.respond(
            message,
            SnapshotReadReturn(
                txn_id=message.txn_id,
                key=key,
                value=state.value,
                version=state.version,
                writer=state.writer,
            ),
        )

    # ------------------------------------------------------------------
    # Coordinator side (Session interface)
    # ------------------------------------------------------------------
    def txn_read(self, meta: TransactionMeta, key: object):
        """Reads are collected lazily.

        ROCOCO executes a transaction's pieces during the commit round, so an
        update transaction's "read" simply registers interest in the key; the
        actual value is produced when the piece executes.  To keep the
        Session API uniform the registered read returns the key's current
        value from the primary (a dispatch-round observation); update
        transactions in the paper's workload do not branch on read values.

        Read-only transactions perform their first-round snapshot read here.
        """
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"read after completion of {meta}")
        if key in meta.write_set:
            return meta.write_set[key]
        reply = yield from self.reliable_request(
            self.primary(key),
            lambda: SnapshotRead(txn_id=meta.txn_id, key=key, wait_for_pending=meta.is_read_only),
        )
        meta.record_read(
            key=key,
            value=reply.value,
            version_vc=meta.vc,
            writer=reply.writer,
            served_by=reply.sender,
        )
        meta.read_set[key].version_number = reply.version  # type: ignore[attr-defined]
        self.counters["client_reads"] += 1
        return reply.value

    def txn_commit(self, meta: TransactionMeta):
        if meta.phase is not TransactionPhase.EXECUTING:
            raise TransactionStateError(f"double commit of {meta}")
        if meta.is_read_only:
            return (yield from self._commit_read_only(meta))
        return (yield from self._commit_update(meta))

    # ------------------------------------------------------------------
    def _commit_read_only(self, meta: TransactionMeta):
        """Second-round validation of the snapshot read."""
        meta.phase = TransactionPhase.PREPARING
        if self._fault_mode:
            replies = yield from self._piece_round(
                list(meta.read_set),
                lambda key: SnapshotRead(txn_id=meta.txn_id, key=key, wait_for_pending=True),
            )
            for key in meta.read_set:
                first_version = getattr(meta.read_set[key], "version_number", 0)
                if replies[key].version != first_version:
                    self.counters["read_only_validation_failures"] += 1
                    return self._finish_abort(meta, reason="read-only-validation")
            return self._finish_commit(meta, "read_only_commits")
        events = {}
        for key, record in meta.read_set.items():
            events[key] = self.request(
                self.primary(key),
                SnapshotRead(txn_id=meta.txn_id, key=key, wait_for_pending=True),
            )
        for key, event in events.items():
            reply: SnapshotReadReturn = yield event
            first_version = getattr(meta.read_set[key], "version_number", 0)
            if reply.version != first_version:
                self.counters["read_only_validation_failures"] += 1
                return self._finish_abort(meta, reason="read-only-validation")
        return self._finish_commit(meta, "read_only_commits")

    def _piece_round(self, keys, make_message):
        """One per-key piece round routed to each key's primary.

        The shared :meth:`ProtocolRuntime.request_round` provides the wave
        (and, in fault mode, the idempotent re-send) semantics; the dispatch
        and commit handlers are idempotent so a primary that crashed and
        restarted simply answers the re-send.  Returns ``{key: reply}``.
        """
        replies = yield from self.request_round(list(keys), self.primary, make_message)
        return replies

    def _commit_update(self, meta: TransactionMeta):
        meta.phase = TransactionPhase.PREPARING
        meta.prepare_time = self.sim.now
        txn_id = meta.txn_id

        # Every accessed key becomes one piece routed to the key's primary.
        pieces: Dict[object, bool] = {}
        for key in meta.read_set:
            pieces[key] = False
        for key in meta.write_set:
            pieces[key] = True

        # Round 1: dispatch.
        yield from self._piece_round(
            pieces,
            lambda key: PieceDispatch(
                txn_id=txn_id,
                key=key,
                is_write=pieces[key],
                write_value=meta.write_set.get(key),
            ),
        )

        # Order position: the dispatch-round completion instant is unique per
        # coordinator (simulated time plus a per-transaction tie-breaker) and
        # consistent across every key of the transaction.
        order = self.sim.now + (txn_id.seq % 997) * 1e-6
        meta.internal_commit_time = self.sim.now
        # Pieces execute in ``order`` on every involved server, so the order
        # value doubles as the per-key version-order hint for the checker.
        meta.version_hints = {key: order for key in meta.write_set}

        # Round 2: commit / execute.
        executed_replies = yield from self._piece_round(
            pieces,
            lambda key: PieceCommit(
                txn_id=txn_id,
                key=key,
                order=order,
                is_write=pieces[key],
                write_value=meta.write_set.get(key),
            ),
        )
        for executed in executed_replies.values():
            if executed.key in meta.read_set:
                record = meta.read_set[executed.key]
                record.value = executed.value
                record.writer = executed.writer
        self.counters["two_round_commits"] += 1
        return self._finish_commit(meta, "update_commits")


class RococoCluster(ProtocolCluster):
    """Cluster facade for the ROCOCO baseline."""

    node_class = RococoNode
    protocol_name = "rococo"


register("rococo", RococoCluster)
